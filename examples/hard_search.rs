//! §4.5 (scaled): searching for a hard permutation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example hard_search -- [seconds] [k] [seed]
//! ```
//!
//! The paper ran a 12-hour search (extending 13/14-gate optimal circuits
//! by boundary gates) for a permutation needing ≥ 15 gates, and found
//! none. This example runs the same extension strategy inside a small
//! time budget, in two acts:
//!
//! 1. **Exact analogue on 3 wires** — L(3) is computed exhaustively (all
//!    40,320 functions), then the search must saturate it.
//! 2. **Scaled 4-wire run** — with k = 6 tables (searchable size ≤ 12) the
//!    search hunts for functions at the edge of reach; candidates beyond
//!    the bound are reported, mirroring how the paper's search would have
//!    flagged a > 14-gate permutation.

use std::time::Duration;

use revsynth::analysis::HardSearch;
use revsynth::bfs::reference;
use revsynth::circuit::GateLib;
use revsynth::core::Synthesizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let seconds: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(10);
    let k: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(6);
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(45);

    // Act 1: the exact analogue on 3 wires.
    println!("[1/2] exact analogue on n = 3");
    let counts = reference::full_space_counts(&GateLib::nct(3));
    let l3 = counts.len() - 1;
    println!(
        "  exhaustive census: L(3) = {l3} ({} functions need it)",
        counts[l3]
    );
    let synth3 = Synthesizer::from_scratch(3, l3.div_ceil(2));
    let outcome = HardSearch {
        budget: Duration::from_secs(2),
        seed,
        pool: 8,
        restart_percent: 30,
    }
    .run(&synth3);
    println!(
        "  search found max size {} after {} measurements — {}",
        outcome.max_size,
        outcome.examined,
        if outcome.max_size == l3 {
            "saturates L(3) ✓"
        } else {
            "below L(3)!"
        }
    );

    // Act 2: the scaled 4-wire search.
    println!("\n[2/2] scaled search on n = 4 (k = {k}, budget {seconds}s)");
    let synth4 = Synthesizer::from_scratch(4, k);
    println!(
        "  tables ready; sizes ≤ {} searchable — hunting for the hardest reachable function",
        synth4.max_size()
    );
    let outcome = HardSearch {
        budget: Duration::from_secs(seconds),
        seed,
        pool: 16,
        restart_percent: 20,
    }
    .run(&synth4);
    println!(
        "  hardest found: size {} (witness {})",
        outcome.max_size, outcome.witness
    );
    println!(
        "  measured {} candidates; {} exceeded the size-{} search bound",
        outcome.examined,
        outcome.unresolved,
        synth4.max_size()
    );
    println!(
        "  (the paper's full-scale run with k = 9 found nothing above 14 gates in 12 hours,\n   \
         supporting the conjecture that no 4-bit function needs 15+ gates)"
    );
    Ok(())
}
