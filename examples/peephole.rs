//! Peephole optimization of long circuits with the optimal synthesizer.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example peephole -- [gates] [k] [seed]
//! ```
//!
//! The paper's §1: "The algorithm could easily be integrated as part of
//! peephole optimization, such as the one presented in [13]." This
//! example generates a long random circuit, slides an optimal-synthesis
//! window over it, and reports the compression — every window replacement
//! is provably locally optimal.

use revsynth::analysis::{Rng, SplitMix64};
use revsynth::circuit::{Circuit, CostModel, GateLib};
use revsynth::core::{PeepholeOptimizer, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let gates: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(120);
    let k: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4);
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(7);

    println!("Building k = {k} tables ...");
    let synth = Synthesizer::from_scratch(4, k);
    let optimizer = PeepholeOptimizer::new(&synth);
    println!("  window = {} gates\n", optimizer.window());

    let lib = GateLib::nct(4);
    let mut rng = SplitMix64::new(seed);
    let circuit = Circuit::from_gates((0..gates).map(|_| lib.gate(rng.gen_range(0..lib.len()))));

    let start = std::time::Instant::now();
    let (optimized, before, after) = optimizer.optimize_with_stats(&circuit)?;
    let elapsed = start.elapsed();
    assert_eq!(optimized.perm(4), circuit.perm(4), "function preserved");

    let qc = CostModel::quantum();
    println!(
        "random circuit : {before} gates, depth {}, quantum cost {}",
        circuit.depth(),
        circuit.cost(&qc)
    );
    println!(
        "peephole output: {after} gates, depth {}, quantum cost {}",
        optimized.depth(),
        optimized.cost(&qc)
    );
    println!(
        "saved {} gates ({:.1}%) in {elapsed:.2?}; function preserved (verified)",
        before - after,
        100.0 * (before - after) as f64 / before as f64
    );

    // The window guarantee: a second pass finds nothing more.
    let (again, b2, a2) = optimizer.optimize_with_stats(&optimized)?;
    assert_eq!(b2, a2);
    assert_eq!(again, optimized);
    println!("fixpoint confirmed: a second pass finds no further improvement");
    Ok(())
}
