//! Figure 2: suboptimal vs optimal 1-bit full adder.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example full_adder
//! ```
//!
//! The paper's motivating example (§2.1): adders dominate Shor's integer
//! factoring, so every gate shaved off the 1-bit full adder matters. We
//! take a natural redundant adder implementation (majority vote with three
//! Toffolis plus two CNOTs for the sum), synthesize the function it
//! computes optimally, and recover a circuit of the paper's optimal size —
//! alongside the `rd32` adder of Table 6, proved optimal at 4 gates.

use revsynth::circuit::CostModel;
use revsynth::core::Synthesizer;
use revsynth::specs::adder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Building k = 3 tables (enough for sizes ≤ 6) ...\n");
    let synth = Synthesizer::from_scratch(4, 3);

    let sub = adder::suboptimal();
    let sub_fn = sub.perm(4);
    println!(
        "redundant adder ({} gates, depth {}):",
        sub.len(),
        sub.depth()
    );
    println!("  {sub}");

    let optimized = synth.synthesize(sub_fn)?;
    assert_eq!(optimized.perm(4), sub_fn);
    println!(
        "optimal circuit for the same function ({} gates, depth {}):",
        optimized.len(),
        optimized.depth()
    );
    println!("  {optimized}\n");

    let rd32 = adder::rd32_spec();
    let opt = synth.synthesize(rd32)?;
    assert_eq!(opt.perm(4), rd32);
    println!(
        "paper's Figure 2(b) adder (rd32, proved optimal at {} gates):",
        opt.len()
    );
    println!("  {opt}");

    let qc = CostModel::quantum();
    println!(
        "\nquantum-cost comparison: redundant = {}, optimized = {}, rd32 = {}",
        sub.cost(&qc),
        optimized.cost(&qc),
        opt.cost(&qc)
    );
    println!(
        "gate-count saving over the redundant implementation: {} → {}",
        sub.len(),
        optimized.len()
    );
    Ok(())
}
