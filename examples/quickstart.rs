//! Quickstart: build the search tables and synthesize optimal circuits.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates the breadth-first tables for k = 5 (every equivalence class of
//! optimal size ≤ 5; about 109k classes) and synthesizes a handful of
//! benchmark functions from the paper's Table 6, printing the optimal
//! circuits in the paper's own notation.

use std::time::Instant;

use revsynth::core::Synthesizer;
use revsynth::specs::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 5;
    println!("Generating breadth-first tables (n = 4, k = {k}) ...");
    let start = Instant::now();
    let synth = Synthesizer::from_scratch(4, k);
    println!(
        "  {} equivalence classes in {:.2?}; functions of size ≤ {} are now synthesizable.\n",
        synth.tables().num_representatives(),
        start.elapsed(),
        synth.max_size()
    );

    println!(
        "{:<10} {:>4} {:>5} {:>10}  circuit",
        "benchmark", "SOC", "ours", "time"
    );
    for b in benchmarks() {
        if b.optimal_size > synth.max_size() {
            println!(
                "{:<10} {:>4} {:>5} {:>10}  (needs k ≥ {}, see examples/benchmark_suite.rs)",
                b.name,
                b.optimal_size,
                "-",
                "-",
                b.optimal_size.div_ceil(2)
            );
            continue;
        }
        let start = Instant::now();
        let circuit = synth.synthesize(b.perm())?;
        let elapsed = start.elapsed();
        assert_eq!(
            circuit.perm(4),
            b.perm(),
            "synthesized circuit must implement the spec"
        );
        println!(
            "{:<10} {:>4} {:>5} {:>9.1?}  {}",
            b.name,
            b.optimal_size,
            circuit.len(),
            elapsed,
            circuit
        );
    }

    println!("\nEvery size matches the paper's proved optimum (SOC column).");
    Ok(())
}
