//! Grading a heuristic synthesizer against known optima.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example heuristic_grading -- [per_size] [k] [seed]
//! ```
//!
//! The paper (§1 and future work) proposes using the optimal 4-bit
//! synthesizer to build "a representative set of functions that could be
//! used to test heuristic synthesis algorithms against" — replacing the
//! too-easy 3-bit exam where good heuristics already score near-perfect.
//!
//! This example builds such a suite with known optimal sizes, then grades
//! a classic *transformation-based greedy* heuristic (pick the gate that
//! most reduces the output's Hamming distance from the identity, in the
//! spirit of Miller–Maslov–Dueck) against the optimum.

use revsynth::analysis::TestSet;
use revsynth::circuit::{Circuit, GateLib};
use revsynth::core::Synthesizer;
use revsynth::perm::Perm;

/// Total Hamming distance of `f` from the identity over all 16 points.
fn badness(f: Perm) -> u32 {
    (0..16u8).map(|x| (f.apply(x) ^ x).count_ones()).sum()
}

/// Greedy transformation-based synthesis: repeatedly append the gate that
/// minimizes [`badness`]; give up after a gate budget.
fn greedy(f: Perm, lib: &GateLib, budget: usize) -> Circuit {
    let mut gates = Vec::new();
    let mut cur = f;
    while !cur.is_identity() && gates.len() < budget {
        let (best_gate, best_perm, best_score) = lib
            .iter()
            .map(|(_, g, p)| (g, p, badness(cur.then(p))))
            .min_by_key(|&(_, _, s)| s)
            .expect("library is non-empty");
        if best_score >= badness(cur) {
            break; // local minimum: greedy is stuck
        }
        // The gate is applied at the output side of the remaining
        // function, i.e. it comes *after* what is already fixed — build
        // the circuit back-to-front.
        gates.push(best_gate);
        cur = cur.then(best_perm);
    }
    if !cur.is_identity() {
        return Circuit::new(); // wrong answer; the score sheet counts it
    }
    gates.reverse();
    Circuit::from_gates(gates)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let per_size: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(8);
    let k: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4);
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(2010);

    println!("Building k = {k} tables and a graded test suite ...");
    let synth = Synthesizer::from_scratch(4, k);
    let suite = TestSet::generate(&synth, synth.max_size(), per_size, seed);
    println!(
        "  {} problems with known optima across sizes 0..={}\n",
        suite.len(),
        synth.max_size()
    );

    let lib = GateLib::nct(4);
    let score = suite.score(4, |f| greedy(f, &lib, 40));

    println!("greedy transformation-based heuristic:");
    println!(
        "  solved optimally : {:>4} / {}",
        score.optimal, score.total
    );
    println!("  wrong answers    : {:>4}", score.incorrect);
    println!("  excess gates     : {:>4}", score.excess_gates);
    println!(
        "  mean overhead    : {:.3}× the optimum",
        score.mean_overhead
    );

    // The optimal synthesizer itself must ace the exam.
    let perfect = suite.score(4, |f| synth.synthesize(f).expect("within reach"));
    assert_eq!(perfect.optimal, perfect.total);
    assert_eq!(perfect.incorrect, 0);
    println!(
        "\n(control: the optimal synthesizer scores {}/{} optimal — the exam works)",
        perfect.optimal, perfect.total
    );
    Ok(())
}
