//! Table 6: optimal synthesis of the benchmark suite.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example benchmark_suite -- [k]
//! ```
//!
//! `k` defaults to 6, which covers every Table 6 benchmark except `oc7`
//! (SOC 13 > 2·6); pass 7 to synthesize all thirteen (the k = 7 table
//! generation takes a few minutes on one core and holds ~21M classes).

use std::time::Instant;

use revsynth::core::Synthesizer;
use revsynth::specs::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(6);

    println!("Generating tables (n = 4, k = {k}) ...");
    let start = Instant::now();
    let synth = Synthesizer::from_scratch(4, k);
    println!(
        "  {} classes, {:.2?}, searchable size ≤ {}\n",
        synth.tables().num_representatives(),
        start.elapsed(),
        synth.max_size()
    );

    println!(
        "{:<10} {:>5} {:>4} {:>5} {:>12}  circuit",
        "name", "SBKC", "SOC", "ours", "time"
    );
    let mut all_match = true;
    for b in benchmarks() {
        let sbkc = b
            .best_known_size
            .map_or("N/A".to_owned(), |s| s.to_string());
        if b.optimal_size > synth.max_size() {
            println!(
                "{:<10} {:>5} {:>4} {:>5} {:>12}  (out of reach at k = {k}; rerun with k ≥ {})",
                b.name,
                sbkc,
                b.optimal_size,
                "-",
                "-",
                b.optimal_size.div_ceil(2)
            );
            continue;
        }
        let start = Instant::now();
        let circuit = synth.synthesize(b.perm())?;
        let elapsed = start.elapsed();
        let ok = circuit.len() == b.optimal_size && circuit.perm(4) == b.perm();
        all_match &= ok;
        println!(
            "{:<10} {:>5} {:>4} {:>5} {:>11.1?}{} {}",
            b.name,
            sbkc,
            b.optimal_size,
            circuit.len(),
            elapsed,
            if ok { " " } else { "!" },
            circuit
        );
    }
    println!(
        "\n{}",
        if all_match {
            "All synthesized sizes equal the paper's SOC column."
        } else {
            "MISMATCH against the paper's SOC column!"
        }
    );
    Ok(())
}
