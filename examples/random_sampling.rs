//! Table 3 (scaled): size distribution of random 4-bit permutations.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example random_sampling -- [samples] [k] [seed]
//! ```
//!
//! The paper synthesized 10,000,000 uniform random permutations with k = 9
//! tables (29 hours on a 16-core server) and found sizes 5..14 with a
//! weighted average of 11.94 gates. This example runs the identical
//! experiment at laptop scale: `samples` defaults to 10 and `k` to 6
//! (searchable size ≤ 12, so the ~24% of permutations needing 13–14 gates
//! are reported as "beyond reach" — rerun with k = 7 to resolve them all).

use std::time::Instant;

use revsynth::analysis::{sample_distribution, TOTAL_4BIT_FUNCTIONS};
use revsynth::core::Synthesizer;

/// Paper Table 3 for comparison: counts per size out of 10M samples.
const PAPER_TABLE3: [(usize, u64); 10] = [
    (5, 3),
    (6, 24),
    (7, 455),
    (8, 5_269),
    (9, 50_861),
    (10, 392_108),
    (11, 2_051_507),
    (12, 5_110_943),
    (13, 2_371_039),
    (14, 17_191),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let samples: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(10);
    let k: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(6);
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(2010);

    println!("Generating tables (n = 4, k = {k}) ...");
    let start = Instant::now();
    let synth = Synthesizer::from_scratch(4, k);
    println!("  done in {:.2?}\n", start.elapsed());

    println!("Synthesizing {samples} uniform random permutations (seed {seed}) ...");
    let start = Instant::now();
    let dist = sample_distribution(&synth, samples, seed)?;
    println!("  done in {:.2?}\n", start.elapsed());

    println!(
        "{:>4} {:>8} {:>9} {:>12} {:>12}",
        "size", "count", "fraction", "paper count", "paper frac"
    );
    for (size, count) in dist.iter() {
        let paper = PAPER_TABLE3
            .iter()
            .find(|&&(s, _)| s == size)
            .map_or(0, |&(_, c)| c);
        println!(
            "{size:>4} {count:>8} {:>9.4} {paper:>12} {:>12.4}",
            dist.fraction(size),
            paper as f64 / 10_000_000.0
        );
    }
    if dist.unresolved() > 0 {
        println!(
            "beyond reach (size > {}): {} samples — rerun with larger k",
            synth.max_size(),
            dist.unresolved()
        );
    }
    println!(
        "\nweighted average over resolved samples: {:.2} gates (paper: 11.94)",
        dist.weighted_average()
    );
    println!(
        "implied total functions: {TOTAL_4BIT_FUNCTIONS} = 16! (sanity: the sample estimates \
         fraction × 16! per size; see the table4 bench binary)"
    );
    Ok(())
}
