//! Table 5: optimal circuits for all 322,560 linear reversible functions.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example linear_circuits
//! ```
//!
//! Reproduces §4.3 of the paper: the distribution of optimal circuit sizes
//! over all 4-bit linear (affine) reversible functions, computed by
//! breadth-first search of the affine group under NOT/CNOT circuits — the
//! same "under two seconds on CS2" computation the paper reports — and
//! compared row-by-row against the published Table 5. Also prints the
//! paper's example of one of the 138 hardest linear functions.

use std::time::Instant;

use revsynth::linear::{linear_only_distribution, PAPER_TABLE5};
use revsynth::specs::linear_example;

fn main() {
    println!("BFS over the affine group (322,560 functions, NOT/CNOT gates) ...");
    let start = Instant::now();
    let hist = linear_only_distribution();
    let elapsed = start.elapsed();
    println!("  done in {elapsed:.2?}\n");

    println!("{:>4} {:>10} {:>10}  match", "size", "ours", "paper");
    let mut all = true;
    for (s, &count) in hist.iter().enumerate() {
        let paper = PAPER_TABLE5.get(s).copied().unwrap_or(0);
        let ok = count == paper;
        all &= ok;
        println!(
            "{s:>4} {count:>10} {paper:>10}  {}",
            if ok { "yes" } else { "NO" }
        );
    }
    let total: u64 = hist.iter().sum();
    println!("\ntotal: {total} (expected 322,560); all rows match: {all}");

    println!("\n§4.3 example — one of the 138 hardest linear functions:");
    println!(
        "  spec: a,b,c,d ↦ b⊕1, a⊕c⊕1, d⊕1, a  =  {}",
        linear_example::spec()
    );
    let c = linear_example::circuit();
    println!("  paper's optimal 10-gate circuit: {c}");
    assert_eq!(c.perm(4), linear_example::spec());
    println!("  (verified by simulation)");
}
