//! 4×4 matrices over GF(2).

use std::fmt;

/// A 4×4 matrix over GF(2), stored row-major: bit `4·r + c` is the entry
/// in row `r`, column `c`.
///
/// # Example
///
/// ```
/// use revsynth_linear::Gf2Matrix;
///
/// let id = Gf2Matrix::identity();
/// assert!(id.is_invertible());
/// assert_eq!(id.mul(id), id);
/// assert_eq!(id.apply(0b1011), 0b1011);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gf2Matrix(u16);

impl Gf2Matrix {
    /// The identity matrix.
    #[must_use]
    pub const fn identity() -> Self {
        Gf2Matrix(0b1000_0100_0010_0001)
    }

    /// Builds a matrix from its raw row-major bits.
    #[must_use]
    pub const fn from_bits(bits: u16) -> Self {
        Gf2Matrix(bits)
    }

    /// The raw row-major bits.
    #[must_use]
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Row `r` as a 4-bit mask.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 4`.
    #[must_use]
    pub fn row(self, r: usize) -> u8 {
        assert!(r < 4);
        ((self.0 >> (4 * r)) & 0xF) as u8
    }

    /// Column `c` as a 4-bit mask.
    ///
    /// # Panics
    ///
    /// Panics if `c >= 4`.
    #[must_use]
    pub fn column(self, c: usize) -> u8 {
        assert!(c < 4);
        let mut col = 0u8;
        for r in 0..4 {
            col |= (((self.0 >> (4 * r + c)) & 1) as u8) << r;
        }
        col
    }

    /// Matrix–vector product `M·x` (vectors are 4-bit masks, bit `i` =
    /// coordinate `i`).
    #[must_use]
    pub fn apply(self, x: u8) -> u8 {
        let mut y = 0u8;
        for r in 0..4 {
            let dot = (self.row(r) & x).count_ones() & 1;
            y |= (dot as u8) << r;
        }
        y
    }

    /// Matrix product `self · other`.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // GF(2) product; std::ops::Mul is deliberately not implemented (no Output inference pitfalls in hot code)
    pub fn mul(self, other: Gf2Matrix) -> Gf2Matrix {
        let mut out = 0u16;
        for r in 0..4 {
            let mut row = 0u8;
            let a_row = self.row(r);
            for k in 0..4 {
                if a_row & (1 << k) != 0 {
                    row ^= other.row(k);
                }
            }
            out |= u16::from(row) << (4 * r);
        }
        Gf2Matrix(out)
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(self) -> Gf2Matrix {
        let mut out = 0u16;
        for r in 0..4 {
            out |= u16::from(self.column(r)) << (4 * r);
        }
        Gf2Matrix(out)
    }

    /// Rank over GF(2) (0..=4), by Gaussian elimination.
    #[must_use]
    pub fn rank(self) -> usize {
        let mut rows = [self.row(0), self.row(1), self.row(2), self.row(3)];
        let mut rank = 0;
        for col in 0..4u8 {
            let Some(pivot) = (rank..4).find(|&r| rows[r] & (1 << col) != 0) else {
                continue;
            };
            rows.swap(rank, pivot);
            for r in 0..4 {
                if r != rank && rows[r] & (1 << col) != 0 {
                    rows[r] ^= rows[rank];
                }
            }
            rank += 1;
        }
        rank
    }

    /// Whether the matrix is invertible (rank 4).
    #[must_use]
    pub fn is_invertible(self) -> bool {
        self.rank() == 4
    }

    /// The inverse matrix, if invertible (Gauss–Jordan on `[M | I]`).
    #[must_use]
    pub fn inverse(self) -> Option<Gf2Matrix> {
        let mut rows = [self.row(0), self.row(1), self.row(2), self.row(3)];
        let mut aug = [1u8, 2, 4, 8]; // identity rows
        for col in 0..4usize {
            let pivot = (col..4).find(|&r| rows[r] & (1 << col) != 0)?;
            rows.swap(col, pivot);
            aug.swap(col, pivot);
            for r in 0..4 {
                if r != col && rows[r] & (1 << col) != 0 {
                    rows[r] ^= rows[col];
                    aug[r] ^= aug[col];
                }
            }
        }
        let mut out = 0u16;
        for (r, &bits) in aug.iter().enumerate() {
            out |= u16::from(bits) << (4 * r);
        }
        Some(Gf2Matrix(out))
    }
}

/// All 20,160 invertible 4×4 matrices over GF(2)
/// (`|GL(4,2)| = 15·14·12·8`), by filtering all 2¹⁶ candidates.
#[must_use]
pub fn all_invertible_matrices() -> Vec<Gf2Matrix> {
    (0..=u16::MAX)
        .map(Gf2Matrix::from_bits)
        .filter(|m| m.is_invertible())
        .collect()
}

impl fmt::Debug for Gf2Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2Matrix({:#06x})", self.0)
    }
}

impl fmt::Display for Gf2Matrix {
    /// Rows as bit strings, e.g. `[1000; 0100; 0010; 0001]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for r in 0..4 {
            if r > 0 {
                write!(f, "; ")?;
            }
            let row = self.row(r);
            for c in 0..4 {
                write!(f, "{}", (row >> c) & 1)?;
            }
        }
        write!(f, "]")
    }
}

impl Default for Gf2Matrix {
    fn default() -> Self {
        Gf2Matrix::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gl42_has_20160_elements() {
        assert_eq!(all_invertible_matrices().len(), 20_160);
    }

    #[test]
    fn identity_laws() {
        let id = Gf2Matrix::identity();
        for bits in [0x1234u16, 0x8421, 0xFFFF, 0x0001] {
            let m = Gf2Matrix::from_bits(bits);
            assert_eq!(m.mul(id), m);
            assert_eq!(id.mul(m), m);
        }
    }

    #[test]
    fn inverse_roundtrip_sampled() {
        for (i, m) in all_invertible_matrices().into_iter().enumerate() {
            if i % 97 != 0 {
                continue;
            }
            let inv = m.inverse().expect("invertible");
            assert_eq!(m.mul(inv), Gf2Matrix::identity(), "{m}");
            assert_eq!(inv.mul(m), Gf2Matrix::identity(), "{m}");
        }
    }

    #[test]
    fn singular_matrices_have_no_inverse() {
        assert_eq!(Gf2Matrix::from_bits(0).inverse(), None);
        assert_eq!(Gf2Matrix::from_bits(0).rank(), 0);
        // Two equal rows.
        let m = Gf2Matrix::from_bits(0b0001_0010_0001_0001);
        assert!(!m.is_invertible());
    }

    #[test]
    fn apply_matches_mul() {
        let a = Gf2Matrix::from_bits(0b1010_0110_0011_1001);
        let b = Gf2Matrix::from_bits(0b0100_1000_0001_0010);
        for x in 0..16u8 {
            assert_eq!(a.mul(b).apply(x), a.apply(b.apply(x)));
        }
    }

    #[test]
    fn transpose_involution_and_column() {
        let m = Gf2Matrix::from_bits(0b1010_0110_0011_1001);
        assert_eq!(m.transpose().transpose(), m);
        for c in 0..4 {
            assert_eq!(m.column(c), m.transpose().row(c));
        }
    }
}
