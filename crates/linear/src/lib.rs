//! Linear (affine) reversible functions over GF(2) — the paper's §4.3.
//!
//! "Linear reversible functions are those computable by circuits with NOT
//! and CNOT gates" — equivalently, the maps `x ↦ Mx ⊕ c` with
//! `M ∈ GL(4, GF(2))` and `c ∈ GF(2)⁴`. There are
//! `|GL(4,2)| · 2⁴ = 20,160 · 16 = 322,560` of them. They are "the most
//! complex part of error correcting circuits", and the paper synthesizes
//! optimal circuits for **all** of them (Table 5: the distribution of
//! optimal sizes 0..10, with 138 functions requiring the maximum of 10
//! gates).
//!
//! This crate provides:
//!
//! * [`Gf2Matrix`] — 4×4 GF(2) matrix algebra (multiply, invert, rank),
//! * [`AffineFn`] — the affine map, conversion to/from permutations,
//! * enumeration of `GL(4,2)` and of all 322,560 affine functions,
//! * [`linear_only_distribution`] — exact optimal sizes over NOT/CNOT
//!   circuits by breadth-first search of the affine group, and
//! * [`optimal_distribution`] — optimal sizes over the **full** gate
//!   library via the synthesizer, deduplicated by equivalence class.
//!
//! The two distributions coincide (verified in the integration tests):
//! Toffoli gates never shorten an optimal circuit for a linear function —
//! which is how the paper can report Table 5 as "optimal" without
//! qualification.
//!
//! # Example
//!
//! ```
//! use revsynth_linear::{all_invertible_matrices, AffineFn, Gf2Matrix};
//!
//! assert_eq!(all_invertible_matrices().len(), 20_160); // |GL(4,2)|
//! let f = AffineFn::new(Gf2Matrix::identity(), 0b1010);
//! assert_eq!(f.to_perm().apply(0), 0b1010);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affine;
mod distribution;
mod gf2;

pub use affine::{all_affine_perms, is_linear_reversible, AffineFn};
pub use distribution::{linear_only_distribution, optimal_distribution, PAPER_TABLE5};
pub use gf2::{all_invertible_matrices, Gf2Matrix};
