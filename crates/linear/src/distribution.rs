//! The Table 5 distributions.

use std::collections::HashMap;

use revsynth_canon::Symmetries;
use revsynth_circuit::GateLib;
use revsynth_core::{SynthesisError, Synthesizer};
use revsynth_perm::Perm;

use crate::affine::all_affine_perms;

/// Paper Table 5: number of 4-bit linear reversible functions requiring
/// 0..=10 gates in an optimal implementation.
pub const PAPER_TABLE5: [u64; 11] = [
    1, 16, 162, 1_206, 6_589, 26_182, 72_062, 118_424, 84_225, 13_555, 138,
];

/// Exact optimal sizes of all 322,560 linear reversible functions over
/// NOT/CNOT circuits **only**, by breadth-first search of the affine group
/// (this is how the full distribution is computable "in under two seconds
/// on CS2", paper §4.3).
///
/// Returns `hist[s]` = number of functions of optimal linear-circuit size
/// `s`.
#[must_use]
pub fn linear_only_distribution() -> Vec<u64> {
    let lib = GateLib::linear(4);
    let mut sizes: HashMap<Perm, usize> = HashMap::with_capacity(322_560);
    sizes.insert(Perm::identity(), 0);
    let mut frontier = vec![Perm::identity()];
    let mut depth = 0usize;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &f in &frontier {
            for (_, _, gate_perm) in lib.iter() {
                let h = f.then(gate_perm);
                if let std::collections::hash_map::Entry::Vacant(e) = sizes.entry(h) {
                    e.insert(depth);
                    next.push(h);
                }
            }
        }
        frontier = next;
    }
    let max = sizes.values().copied().max().unwrap_or(0);
    let mut hist = vec![0u64; max + 1];
    for &s in sizes.values() {
        hist[s] += 1;
    }
    hist
}

/// Optimal sizes of all 322,560 linear reversible functions over the
/// **full** NOT/CNOT/TOF/TOF4 library, via the synthesizer.
///
/// Work is deduplicated by equivalence class: conjugation by wire
/// relabelings and inversion preserve affinity, so each class is entirely
/// linear or entirely nonlinear, and one synthesis per class suffices
/// (~6,900 syntheses instead of 322,560).
///
/// # Errors
///
/// Returns [`SynthesisError`] if the synthesizer's tables are too shallow
/// (Table 5 tops out at 10 gates, so `k ≥ 5` suffices) or built for a
/// different wire count.
pub fn optimal_distribution(synth: &Synthesizer) -> Result<Vec<u64>, SynthesisError> {
    let sym: &Symmetries = synth.tables().sym();
    let mut hist = vec![0u64; 11];
    let mut seen: std::collections::HashSet<Perm> = std::collections::HashSet::new();
    for p in all_affine_perms() {
        let rep = sym.canonical(p);
        if !seen.insert(rep) {
            continue;
        }
        let size = synth.size(rep)?;
        if size >= hist.len() {
            hist.resize(size + 1, 0);
        }
        hist[size] += sym.class_size(rep) as u64;
    }
    Ok(hist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_only_distribution_reproduces_table5() {
        // This alone reproduces the paper's Table 5 row-for-row, under the
        // (paper-validated) fact that optimal circuits for linear functions
        // need no Toffoli gates; the integration suite cross-checks that
        // fact against the full-library synthesizer.
        let hist = linear_only_distribution();
        assert_eq!(hist.len(), PAPER_TABLE5.len());
        assert_eq!(hist, PAPER_TABLE5, "Table 5 mismatch");
        assert_eq!(hist.iter().sum::<u64>(), 322_560);
    }

    #[test]
    fn optimal_distribution_matches_linear_only_at_small_sizes() {
        // A shallow synthesizer (k = 3, max size 6) cannot finish all of
        // Table 5, but sizes ≤ 4 can be verified cheaply by clamping:
        // synthesize only class representatives whose linear-only size is
        // small. Full verification lives in the integration tests.
        let synth = Synthesizer::from_scratch(4, 3);
        let sym = synth.tables().sym();
        let mut seen = std::collections::HashSet::new();
        let mut hist = [0u64; 7];
        for p in all_affine_perms() {
            let rep = sym.canonical(p);
            if !seen.insert(rep) {
                continue;
            }
            if let Ok(size) = synth.size(rep) {
                hist[size] += sym.class_size(rep) as u64;
            }
        }
        // Everything of size ≤ 6 is within reach of k = 3 tables.
        for s in 0..=6usize {
            assert_eq!(hist[s], PAPER_TABLE5[s], "size {s}");
        }
    }
}
