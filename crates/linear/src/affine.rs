//! Affine reversible functions `x ↦ Mx ⊕ c`.

use std::fmt;

use revsynth_perm::Perm;

use crate::gf2::{all_invertible_matrices, Gf2Matrix};

/// An affine reversible function on 4 wires: `x ↦ Mx ⊕ c` with
/// `M ∈ GL(4, 2)`.
///
/// These are exactly the functions computable by NOT/CNOT circuits — the
/// paper's "linear reversible functions" (§4.3), the workhorses of
/// stabilizer/error-correction circuits.
///
/// # Example
///
/// ```
/// use revsynth_linear::{AffineFn, Gf2Matrix};
/// use revsynth_perm::Perm;
///
/// let f = AffineFn::new(Gf2Matrix::identity(), 0b0001); // NOT(a)
/// let p = f.to_perm();
/// assert_eq!(p.apply(0), 1);
/// assert_eq!(AffineFn::from_perm(p), Some(f));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AffineFn {
    matrix: Gf2Matrix,
    offset: u8,
}

impl AffineFn {
    /// Builds `x ↦ matrix·x ⊕ offset`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is singular (the map would not be reversible)
    /// or the offset has bits above the 4-wire domain.
    #[must_use]
    pub fn new(matrix: Gf2Matrix, offset: u8) -> Self {
        assert!(
            matrix.is_invertible(),
            "affine reversible needs M ∈ GL(4,2)"
        );
        assert!(offset < 16, "offset {offset} has bits outside 4 wires");
        AffineFn { matrix, offset }
    }

    /// The linear part `M`.
    #[must_use]
    pub const fn matrix(self) -> Gf2Matrix {
        self.matrix
    }

    /// The translation part `c`.
    #[must_use]
    pub const fn offset(self) -> u8 {
        self.offset
    }

    /// Evaluates the map at one point.
    #[must_use]
    pub fn apply(self, x: u8) -> u8 {
        self.matrix.apply(x) ^ self.offset
    }

    /// The map as a packed permutation.
    #[must_use]
    pub fn to_perm(self) -> Perm {
        let mut vals = [0u8; 16];
        for (x, v) in vals.iter_mut().enumerate() {
            *v = self.apply(x as u8);
        }
        Perm::from_values(&vals).expect("an affine bijection is a permutation")
    }

    /// Recovers the affine form of a permutation, or `None` if the
    /// permutation is not affine.
    #[must_use]
    pub fn from_perm(p: Perm) -> Option<Self> {
        let c = p.apply(0);
        let mut bits = 0u16;
        for j in 0..4u8 {
            let col = p.apply(1 << j) ^ c; // image of basis vector e_j
            for r in 0..4u8 {
                if col & (1 << r) != 0 {
                    bits |= 1 << (4 * r + j);
                }
            }
        }
        let m = Gf2Matrix::from_bits(bits);
        if !m.is_invertible() {
            return None;
        }
        let f = AffineFn {
            matrix: m,
            offset: c,
        };
        (0..16u8).all(|x| f.apply(x) == p.apply(x)).then_some(f)
    }

    /// The inverse map `x ↦ M⁻¹(x ⊕ c)`.
    #[must_use]
    pub fn inverse(self) -> AffineFn {
        let m_inv = self.matrix.inverse().expect("matrix is invertible");
        AffineFn {
            matrix: m_inv,
            offset: m_inv.apply(self.offset),
        }
    }

    /// Composition applying `self` first: `x ↦ other(self(x))`.
    #[must_use]
    pub fn then(self, other: AffineFn) -> AffineFn {
        AffineFn {
            matrix: other.matrix.mul(self.matrix),
            offset: other.matrix.apply(self.offset) ^ other.offset,
        }
    }
}

impl fmt::Display for AffineFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x ↦ {}·x ⊕ {:#06b}", self.matrix, self.offset)
    }
}

/// Whether a permutation is a linear reversible function in the paper's
/// sense (computable by NOT/CNOT circuits, i.e. affine over GF(2)).
#[must_use]
pub fn is_linear_reversible(p: Perm) -> bool {
    AffineFn::from_perm(p).is_some()
}

/// Iterates over all `20,160 · 16 = 322,560` affine reversible
/// permutations of the 4-wire domain, each exactly once.
pub fn all_affine_perms() -> impl Iterator<Item = Perm> {
    all_invertible_matrices().into_iter().flat_map(|m| {
        (0..16u8).map(move |c| {
            AffineFn {
                matrix: m,
                offset: c,
            }
            .to_perm()
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use revsynth_canon::Symmetries;
    use revsynth_circuit::Circuit;

    #[test]
    fn group_laws() {
        let a = AffineFn::new(Gf2Matrix::from_bits(0b1010_0110_0011_0001), 0b0110);
        let b = AffineFn::new(Gf2Matrix::from_bits(0b0100_1000_0001_0010), 0b1001);
        // Perm semantics agree with affine semantics.
        assert_eq!(a.then(b).to_perm(), a.to_perm().then(b.to_perm()));
        assert_eq!(a.inverse().to_perm(), a.to_perm().inverse());
        assert!(a.then(a.inverse()).to_perm().is_identity());
    }

    #[test]
    fn from_perm_roundtrip() {
        let f = AffineFn::new(Gf2Matrix::from_bits(0b1010_0110_0011_0001), 0b0110);
        assert_eq!(AffineFn::from_perm(f.to_perm()), Some(f));
    }

    #[test]
    fn nonlinear_perms_are_rejected() {
        // A Toffoli gate is not affine.
        let tof: Circuit = "TOF(a,b,c)".parse().unwrap();
        assert!(!is_linear_reversible(tof.perm(4)));
        assert!(AffineFn::from_perm(tof.perm(4)).is_none());
    }

    #[test]
    fn not_cnot_circuits_are_linear() {
        let c: Circuit = "NOT(a) CNOT(a,b) CNOT(c,d) NOT(d) CNOT(d,a)"
            .parse()
            .unwrap();
        assert!(is_linear_reversible(c.perm(4)));
    }

    #[test]
    fn paper_linear_example_is_affine() {
        // The §4.3 example a,b,c,d ↦ b⊕1, a⊕c⊕1, d⊕1, a.
        let p = revsynth_specs_free_spec();
        let f = AffineFn::from_perm(p).expect("example is affine");
        assert_eq!(f.offset() & 0b0111, 0b0111); // three ⊕1 outputs
    }

    // Local copy of the §4.3 example spec to avoid a dependency cycle with
    // revsynth-specs (which depends on circuit, not on linear).
    fn revsynth_specs_free_spec() -> Perm {
        let mut vals = [0u8; 16];
        for (x, v) in vals.iter_mut().enumerate() {
            let x = x as u8;
            let (a, b, c, d) = (x & 1, (x >> 1) & 1, (x >> 2) & 1, (x >> 3) & 1);
            *v = (b ^ 1) | ((a ^ c ^ 1) << 1) | ((d ^ 1) << 2) | (a << 3);
        }
        Perm::from_values(&vals).unwrap()
    }

    #[test]
    fn enumeration_has_exactly_322560_distinct_perms() {
        let mut count = 0u32;
        let mut seen = std::collections::HashSet::new();
        for p in all_affine_perms() {
            count += 1;
            seen.insert(p);
        }
        assert_eq!(count, 322_560);
        assert_eq!(seen.len(), 322_560);
    }

    #[test]
    fn equivalence_classes_preserve_affinity() {
        // Conjugation by wire relabelings and inversion keep a function
        // affine — the property that lets Table 5 be computed per class.
        let sym = Symmetries::new(4);
        let f = AffineFn::new(Gf2Matrix::from_bits(0b1010_0110_0011_0001), 0b0110).to_perm();
        for member in sym.class_members(f) {
            assert!(is_linear_reversible(member), "{member}");
        }
        // And a nonlinear function's class stays nonlinear.
        let tof: Circuit = "TOF(a,b,c) CNOT(a,d)".parse().unwrap();
        for member in sym.class_members(tof.perm(4)) {
            assert!(!is_linear_reversible(member), "{member}");
        }
    }
}
