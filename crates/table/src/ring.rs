//! A fixed-depth ring of in-flight table probes — the probe wavefront.
//!
//! [`FnTable::probe_start`](crate::FnTable::probe_start) /
//! [`probe_finish`](crate::FnTable::probe_finish) split a membership test
//! into an issue half (hash + home-slot read, which doubles as a software
//! prefetch) and a resolve half. A [`ProbeRing`] generalizes the
//! two-stage pipeline to a W-deep wavefront: pushing a new probe evicts
//! and returns the **oldest** in-flight probe once the ring is full, so a
//! caller that pushes one probe per candidate keeps `W − 1` memory
//! accesses in flight behind the computation of subsequent candidates —
//! converting a chain of dependent cache misses into memory-level
//! parallelism, which is a *serial* win (no threads involved).
//!
//! Eviction and [`pop`](ProbeRing::pop) are strictly FIFO, so probes
//! resolve in push order: a scan that stops at the first successful
//! resolve observes the same hit for every ring depth.

use crate::table::Probe;

/// A FIFO ring of up to `depth` in-flight probes, each carrying a caller
/// tag (e.g. which candidate the probe belongs to).
#[derive(Debug)]
pub struct ProbeRing<T> {
    buf: Vec<Option<(Probe, T)>>,
    head: usize,
    len: usize,
}

impl<T> ProbeRing<T> {
    /// Creates a ring holding at most `depth` probes (`depth` is clamped
    /// to at least 1; a depth-1 ring degenerates to the unpipelined
    /// start-then-finish pattern).
    #[must_use]
    pub fn new(depth: usize) -> Self {
        let depth = depth.max(1);
        ProbeRing {
            buf: std::iter::repeat_with(|| None).take(depth).collect(),
            head: 0,
            len: 0,
        }
    }

    /// The maximum number of in-flight probes.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.buf.len()
    }

    /// Number of probes currently in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no probes are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds a probe to the wavefront. If the ring is already full, the
    /// **oldest** probe is evicted and returned — resolve it now (its
    /// home-slot load has had the longest time to complete).
    #[inline]
    pub fn push(&mut self, probe: Probe, tag: T) -> Option<(Probe, T)> {
        let evicted = if self.len == self.buf.len() {
            self.pop()
        } else {
            None
        };
        let slot = (self.head + self.len) % self.buf.len();
        self.buf[slot] = Some((probe, tag));
        self.len += 1;
        evicted
    }

    /// Removes and returns the oldest in-flight probe, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(Probe, T)> {
        if self.len == 0 {
            return None;
        }
        let entry = self.buf[self.head].take();
        self.head = (self.head + 1) % self.buf.len();
        self.len -= 1;
        entry
    }

    /// Discards all in-flight probes (e.g. after the scan already found
    /// an earlier hit and later candidates no longer matter).
    pub fn clear(&mut self) {
        for slot in &mut self.buf {
            *slot = None;
        }
        self.head = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnTable;
    use revsynth_perm::Perm;

    fn perm_of(i: u64) -> Perm {
        let mut vals: Vec<u8> = (0..16).collect();
        let mut x = i.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        for j in (1..16).rev() {
            vals.swap(j, (x % (j as u64 + 1)) as usize);
            x = x.rotate_left(17).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        }
        Perm::from_values(&vals).unwrap()
    }

    #[test]
    fn fifo_eviction_order() {
        let table = FnTable::default();
        let mut ring: ProbeRing<u64> = ProbeRing::new(3);
        assert_eq!(ring.depth(), 3);
        for i in 0..3 {
            assert!(ring.push(table.probe_start(perm_of(i)), i).is_none());
        }
        assert_eq!(ring.len(), 3);
        // Pushing a fourth evicts tag 0, a fifth evicts tag 1, ...
        for i in 3..8 {
            let (_, tag) = ring.push(table.probe_start(perm_of(i)), i).unwrap();
            assert_eq!(tag, i - 3);
        }
        // Draining returns the rest in order.
        let rest: Vec<u64> = std::iter::from_fn(|| ring.pop().map(|(_, t)| t)).collect();
        assert_eq!(rest, vec![5, 6, 7]);
        assert!(ring.is_empty());
    }

    #[test]
    fn depth_is_clamped_to_one() {
        let table = FnTable::default();
        let mut ring: ProbeRing<u32> = ProbeRing::new(0);
        assert_eq!(ring.depth(), 1);
        assert!(ring.push(table.probe_start(Perm::identity()), 1).is_none());
        let (_, tag) = ring.push(table.probe_start(Perm::identity()), 2).unwrap();
        assert_eq!(tag, 1);
    }

    #[test]
    fn wavefront_agrees_with_contains_for_every_depth() {
        let mut table = FnTable::with_capacity_bits(8);
        for i in 0..150 {
            table.insert(perm_of(i), 0);
        }
        let keys: Vec<Perm> = (0..300).map(perm_of).collect();
        let expected: Vec<bool> = keys.iter().map(|&k| table.contains(k)).collect();
        for depth in [1usize, 2, 5, 8, 16] {
            let mut ring: ProbeRing<usize> = ProbeRing::new(depth);
            let mut resolved = vec![false; keys.len()];
            for (i, &k) in keys.iter().enumerate() {
                if let Some((probe, tag)) = ring.push(table.probe_start(k), i) {
                    resolved[tag] = table.probe_finish(probe);
                }
            }
            while let Some((probe, tag)) = ring.pop() {
                resolved[tag] = table.probe_finish(probe);
            }
            assert_eq!(resolved, expected, "depth {depth}");
        }
    }

    #[test]
    fn clear_discards_in_flight_probes() {
        let table = FnTable::default();
        let mut ring: ProbeRing<u8> = ProbeRing::new(4);
        for i in 0..3 {
            ring.push(table.probe_start(perm_of(i.into())), i);
        }
        ring.clear();
        assert!(ring.is_empty());
        assert!(ring.pop().is_none());
        // Reusable after clearing.
        assert!(ring.push(table.probe_start(Perm::identity()), 9).is_none());
        assert_eq!(ring.pop().unwrap().1, 9);
    }
}
