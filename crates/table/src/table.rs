//! The open-addressing table.

use std::fmt;

use revsynth_mmap::ArcSlice;
use revsynth_perm::{hash64shift, Perm};

use crate::ring::ProbeRing;
use crate::stats::TableStats;
use crate::storage::RawStore;

/// Empty-slot marker. `u64::MAX` decodes to a constant map (every nibble
/// 15), which is not a bijection, so it can never collide with a real key.
const EMPTY: u64 = u64::MAX;

/// Default maximum load factor before the table doubles.
const MAX_LOAD_NUM: usize = 7;
const MAX_LOAD_DEN: usize = 8;

/// A linear-probing hash table mapping packed permutations to one-byte
/// values (paper §3.3).
///
/// Keys and values live in two parallel flat arrays; lookups hash the key
/// with [`hash64shift`] and scan forward (wrapping) until the key or an
/// empty slot is found.
///
/// The table grows automatically when the load factor would exceed 7/8,
/// but callers that know the final entry count (the BFS does) should
/// pre-size it with [`FnTable::for_entries`] or
/// [`FnTable::with_capacity_bits`] to avoid rehashing hundreds of millions
/// of keys.
///
/// The slot arrays are either owned (generation paths) or borrowed
/// zero-copy from a v5 store mapping ([`FnTable::from_mapped`]); reads are
/// identical either way, and any mutation of a mapped table first copies
/// the arrays into owned storage.
#[derive(Clone)]
pub struct FnTable {
    keys: RawStore<u64>,
    values: RawStore<u8>,
    mask: u64,
    len: usize,
    /// Insertions (including rehash reinsertions) that did not land in
    /// their home slot.
    displaced_inserts: u64,
    /// Total slots walked past by displaced insertions — the running
    /// cost of clustering, cheap to maintain and surfaced through
    /// [`TableStats`] so load-factor tuning is visible without a full
    /// table scan.
    insert_displacement_total: u64,
}

impl FnTable {
    /// Creates a table with `2^bits` slots.
    ///
    /// The paper's configurations (Table 2): 2²⁵ slots for k = 7 (256 MB),
    /// 2²⁸ for k = 8 (2 GB), 2³² for k = 9 (32 GB).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 40.
    #[must_use]
    pub fn with_capacity_bits(bits: u32) -> Self {
        assert!((1..=40).contains(&bits), "unreasonable table size 2^{bits}");
        let cap = 1usize << bits;
        FnTable {
            keys: RawStore::Owned(vec![EMPTY; cap]),
            values: RawStore::Owned(vec![0; cap]),
            mask: (cap - 1) as u64,
            len: 0,
            displaced_inserts: 0,
            insert_displacement_total: 0,
        }
    }

    /// Builds a table over slot arrays borrowed zero-copy from a store
    /// mapping (the v5 load path).
    ///
    /// `len` is the persisted entry count and `empty_slot` a persisted
    /// witness index of one empty slot; both are validated here (together
    /// with capacity shape) so that probe loops on the borrowed arrays
    /// are guaranteed to terminate even before the store's bulk section
    /// checksums have been verified. The key/value *contents* are taken
    /// as-is — semantic validation belongs to the store's checksums and
    /// structural checks.
    pub fn from_mapped(
        keys: ArcSlice<u64>,
        values: ArcSlice<u8>,
        len: usize,
        empty_slot: usize,
    ) -> Result<Self, &'static str> {
        let cap = keys.len();
        if cap != values.len() {
            return Err("key and value arrays differ in length");
        }
        if !cap.is_power_of_two() || !(8..=1 << 40).contains(&cap) {
            return Err("slot count is not a supported power of two");
        }
        if len >= cap {
            return Err("entry count does not leave an empty slot");
        }
        if empty_slot >= cap || keys[empty_slot] != EMPTY {
            return Err("empty-slot witness does not point at an empty slot");
        }
        Ok(FnTable {
            keys: RawStore::Mapped(keys),
            values: RawStore::Mapped(values),
            mask: (cap - 1) as u64,
            len,
            displaced_inserts: 0,
            insert_displacement_total: 0,
        })
    }

    /// The raw slot arrays (keys, values), including empty slots (key
    /// `u64::MAX`). Exposed for store persistence.
    #[must_use]
    pub fn slot_arrays(&self) -> (&[u64], &[u8]) {
        (&self.keys, &self.values)
    }

    /// Index of the first empty slot — the witness persisted alongside
    /// the slot arrays so a mapped load can prove probe termination.
    ///
    /// # Panics
    ///
    /// Panics if the table is full (impossible below the growth
    /// threshold).
    #[must_use]
    pub fn first_empty_slot(&self) -> usize {
        self.keys
            .iter()
            .position(|&k| k == EMPTY)
            .expect("table below maximum load always has an empty slot")
    }

    /// Whether the slot arrays are still borrowed from a store mapping.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.keys.is_mapped() || self.values.is_mapped()
    }

    /// Creates a table sized for `expected` entries at a load factor of at
    /// most ~0.58 (the paper's k = 7 configuration), rounded up to a power
    /// of two.
    ///
    /// # Panics
    ///
    /// Panics (like [`with_capacity_bits`](Self::with_capacity_bits)) if
    /// the required slot count exceeds `2⁴⁰`.
    #[must_use]
    pub fn for_entries(expected: usize) -> Self {
        Self::with_capacity_bits(Self::capacity_bits_for(expected))
    }

    /// The power-of-two slot exponent [`for_entries`](Self::for_entries)
    /// would allocate for `expected` entries (`⌈expected / 0.583⌉` rounded
    /// up to a power of two, at least 8 slots).
    ///
    /// The arithmetic is carried out in 128 bits: at the paper's k = 9
    /// regime `expected` approaches 2³², where the naive `expected * 12`
    /// would overflow 32-bit builds — and a wrapped product would
    /// silently size the table orders of magnitude too small.
    #[must_use]
    pub fn capacity_bits_for(expected: usize) -> u32 {
        let min_slots = (expected.max(4) as u128 * 12) / 7; // expected / 0.583
        let bits = 128 - (min_slots - 1).leading_zeros();
        bits.max(3)
    }

    /// Number of stored entries.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots (a power of two).
    #[inline]
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Current load factor `len / capacity`.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Approximate resident memory in bytes (keys + values arrays).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.keys.len() * 8 + self.values.len()
    }

    #[inline]
    fn home_slot(&self, key: u64) -> usize {
        (hash64shift(key) & self.mask) as usize
    }

    #[inline]
    fn record_displacement(&mut self, d: u64) {
        if d > 0 {
            self.displaced_inserts += 1;
            self.insert_displacement_total += d;
        }
    }

    /// Whether `key` is present. This is the hot membership test of
    /// Algorithm 1's inner loop.
    #[inline]
    #[must_use]
    pub fn contains(&self, key: Perm) -> bool {
        let key = key.packed();
        let mut i = self.home_slot(key);
        loop {
            let slot = self.keys[i];
            if slot == key {
                return true;
            }
            if slot == EMPTY {
                return false;
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    /// Starts a pipelined membership probe for `key`: hashes, reads the
    /// home slot and returns the in-flight [`Probe`].
    ///
    /// The home-slot read doubles as a software prefetch — on the
    /// multi-GB tables of the paper's k = 8–9 regime every probe is a
    /// cache miss, so the meet-in-the-middle inner loop starts the next
    /// candidate's probe *before* finishing the current one, hiding the
    /// memory latency behind the next ~750-instruction canonicalization
    /// ([`contains`](Self::contains) by contrast stalls on the load).
    ///
    /// Resolve with [`probe_finish`](Self::probe_finish). The probe is
    /// only meaningful against an unmodified table: inserting between
    /// start and finish may yield a stale answer.
    #[inline]
    #[must_use]
    pub fn probe_start(&self, key: Perm) -> Probe {
        self.probe_start_raw(key.packed())
    }

    #[inline]
    fn probe_start_raw(&self, key: u64) -> Probe {
        let slot = self.home_slot(key);
        Probe {
            key,
            slot,
            first: self.keys[slot],
        }
    }

    /// Resolves a probe started by [`probe_start`](Self::probe_start):
    /// whether the key is present.
    #[inline]
    #[must_use]
    pub fn probe_finish(&self, probe: Probe) -> bool {
        if probe.first == probe.key {
            return true;
        }
        if probe.first == EMPTY {
            return false;
        }
        let mut i = (probe.slot + 1) & self.mask as usize;
        loop {
            let slot = self.keys[i];
            if slot == probe.key {
                return true;
            }
            if slot == EMPTY {
                return false;
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    /// The value stored for `key`, if present.
    #[inline]
    #[must_use]
    pub fn get(&self, key: Perm) -> Option<u8> {
        let key = key.packed();
        let mut i = self.home_slot(key);
        loop {
            let slot = self.keys[i];
            if slot == key {
                return Some(self.values[i]);
            }
            if slot == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    /// Inserts or replaces; returns the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: Perm, value: u8) -> Option<u8> {
        self.grow_if_needed();
        let key = key.packed();
        let mask = self.mask;
        let mut i = (hash64shift(key) & mask) as usize;
        let keys = self.keys.make_mut();
        let values = self.values.make_mut();
        let mut d = 0u64;
        loop {
            let slot = keys[i];
            if slot == key {
                let old = values[i];
                values[i] = value;
                return Some(old);
            }
            if slot == EMPTY {
                keys[i] = key;
                values[i] = value;
                self.len += 1;
                self.record_displacement(d);
                return None;
            }
            i = (i + 1) & mask as usize;
            d += 1;
        }
    }

    /// Inserts only if the key is absent; returns `true` when inserted.
    /// This is the BFS's "new canonical representative?" test-and-set.
    #[inline]
    pub fn insert_if_absent(&mut self, key: Perm, value: u8) -> bool {
        self.grow_if_needed();
        let key = key.packed();
        let mask = self.mask;
        let mut i = (hash64shift(key) & mask) as usize;
        let keys = self.keys.make_mut();
        let values = self.values.make_mut();
        let mut d = 0u64;
        loop {
            let slot = keys[i];
            if slot == key {
                return false;
            }
            if slot == EMPTY {
                keys[i] = key;
                values[i] = value;
                self.len += 1;
                self.record_displacement(d);
                return true;
            }
            i = (i + 1) & mask as usize;
            d += 1;
        }
    }

    fn grow_if_needed(&mut self) {
        if (self.len + 1) * MAX_LOAD_DEN > self.capacity() * MAX_LOAD_NUM {
            self.grow();
        }
    }

    /// Ring depth for the rehashing wavefront: every relocated key's home
    /// slot is read (= prefetched) this many insertions ahead of the
    /// serial walk that places it, so a growth pass keeps several of the
    /// new arrays' cache lines in flight instead of stalling on one
    /// dependent miss per key.
    const GROW_WAVEFRONT: usize = 8;

    fn grow(&mut self) {
        let new_cap = self.capacity() * 2;
        let old_keys = std::mem::replace(&mut self.keys, RawStore::Owned(vec![EMPTY; new_cap]));
        let old_values = std::mem::replace(&mut self.values, RawStore::Owned(vec![0; new_cap]));
        self.mask = (new_cap - 1) as u64;
        self.len = 0;
        let mut ring: ProbeRing<u8> = ProbeRing::new(Self::GROW_WAVEFRONT);
        for (&key, &value) in old_keys.iter().zip(old_values.iter()) {
            if key == EMPTY {
                continue;
            }
            if let Some((probe, v)) = ring.push(self.probe_start_raw(key), value) {
                self.insert_relocated(probe, v);
            }
        }
        while let Some((probe, v)) = ring.pop() {
            self.insert_relocated(probe, v);
        }
    }

    /// Resolves one relocated key from the growth wavefront: walks from
    /// the probed home slot (whose cache line the probe already pulled in)
    /// to the first empty slot and places the key there. The probe's
    /// cached first read is deliberately ignored — insertions issued since
    /// the probe started may have filled it — so the walk re-reads the
    /// live (now warm) array; keys are distinct during a rehash, so the
    /// first empty slot is always the correct destination.
    fn insert_relocated(&mut self, probe: Probe, value: u8) {
        let mask = self.mask;
        let mut i = probe.slot;
        let mut d = 0u64;
        let keys = self.keys.make_mut();
        let values = self.values.make_mut();
        while keys[i] != EMPTY {
            i = (i + 1) & mask as usize;
            d += 1;
        }
        keys[i] = probe.key;
        values[i] = value;
        self.len += 1;
        self.record_displacement(d);
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Perm, u8)> + '_ {
        self.keys
            .iter()
            .zip(self.values.iter())
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (Perm::from_packed_unchecked(k), v))
    }

    /// Probe and cluster statistics in the shape of the paper's Table 2.
    ///
    /// This scans the whole table; intended for reporting, not hot paths.
    #[must_use]
    pub fn stats(&self) -> TableStats {
        let cap = self.capacity();
        // Displacement: distance from each occupied slot to its home slot.
        let mut total_displacement = 0u64;
        let mut max_displacement = 0u64;
        for (i, &key) in self.keys.iter().enumerate() {
            if key == EMPTY {
                continue;
            }
            let home = self.home_slot(key);
            let d = (i + cap - home) as u64 & self.mask;
            total_displacement += d;
            max_displacement = max_displacement.max(d);
        }
        // Clusters: maximal runs of occupied slots (wrapping).
        let mut clusters = 0u64;
        let mut total_cluster_len = 0u64;
        let mut max_cluster_len = 0u64;
        let mut run = 0u64;
        // Find a starting empty slot to unwrap the circular scan; a full
        // table (load factor 1) is impossible because growth triggers at 7/8.
        let start = self
            .keys
            .iter()
            .position(|&k| k == EMPTY)
            .expect("table below maximum load always has an empty slot");
        for offset in 0..cap {
            let i = (start + 1 + offset) & self.mask as usize;
            if self.keys[i] != EMPTY {
                run += 1;
            } else if run > 0 {
                clusters += 1;
                total_cluster_len += run;
                max_cluster_len = max_cluster_len.max(run);
                run = 0;
            }
        }
        if run > 0 {
            clusters += 1;
            total_cluster_len += run;
            max_cluster_len = max_cluster_len.max(run);
        }
        TableStats {
            entries: self.len as u64,
            capacity: cap as u64,
            memory_bytes: self.memory_bytes() as u64,
            displaced_inserts: self.displaced_inserts,
            insert_displacement_total: self.insert_displacement_total,
            load_factor: self.load_factor(),
            avg_displacement: if self.len == 0 {
                0.0
            } else {
                total_displacement as f64 / self.len as f64
            },
            max_displacement,
            clusters,
            avg_cluster_len: if clusters == 0 {
                0.0
            } else {
                total_cluster_len as f64 / clusters as f64
            },
            max_cluster_len,
        }
    }
}

/// An in-flight membership probe: the hashed key, its home slot and the
/// first slot value already read. Created by [`FnTable::probe_start`],
/// consumed by [`FnTable::probe_finish`].
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    key: u64,
    slot: usize,
    first: u64,
}

impl fmt::Debug for FnTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FnTable({} entries, 2^{} slots, load {:.2})",
            self.len,
            self.capacity().trailing_zeros(),
            self.load_factor()
        )
    }
}

impl Default for FnTable {
    /// A small empty table (grows on demand).
    fn default() -> Self {
        FnTable::with_capacity_bits(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perm_of(i: u64) -> Perm {
        // Derive a valid permutation from an integer by composing wire
        // swaps and rotations of the identity — enough variety for tests.
        let mut vals: Vec<u8> = (0..16).collect();
        let mut x = i;
        for j in (1..16).rev() {
            vals.swap(j, (x % (j as u64 + 1)) as usize);
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >>= 8;
            if x == 0 {
                x = i.wrapping_add(j as u64);
            }
        }
        Perm::from_values(&vals).unwrap()
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = FnTable::for_entries(1000);
        for i in 0..1000u64 {
            t.insert(perm_of(i), (i % 251) as u8);
        }
        for i in 0..1000u64 {
            assert_eq!(t.get(perm_of(i)), Some((i % 251) as u8), "key {i}");
            assert!(t.contains(perm_of(i)));
        }
        assert!(!t.contains(perm_of(5000)) || perm_of(5000) == perm_of(999));
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut t = FnTable::default();
        let p = Perm::identity();
        assert_eq!(t.insert(p, 1), None);
        assert_eq!(t.insert(p, 2), Some(1));
        assert_eq!(t.get(p), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_if_absent_keeps_first() {
        let mut t = FnTable::default();
        let p = Perm::identity();
        assert!(t.insert_if_absent(p, 1));
        assert!(!t.insert_if_absent(p, 2));
        assert_eq!(t.get(p), Some(1));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = FnTable::with_capacity_bits(3); // 8 slots
        let count = 500u64;
        let mut distinct = std::collections::HashSet::new();
        for i in 0..count {
            let p = perm_of(i);
            distinct.insert(p);
            t.insert(p, (i & 0xFF) as u8);
        }
        assert_eq!(t.len(), distinct.len());
        assert!(t.capacity() >= distinct.len());
        for i in 0..count {
            assert!(t.contains(perm_of(i)));
        }
    }

    #[test]
    fn model_check_against_std_hashmap() {
        let mut t = FnTable::with_capacity_bits(4);
        let mut model = std::collections::HashMap::new();
        let mut state = 0x12345678u64;
        for step in 0..5000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = perm_of(state % 700);
            let value = (state >> 32) as u8;
            match state % 3 {
                0 => {
                    assert_eq!(
                        t.insert(key, value),
                        model.insert(key, value),
                        "step {step}"
                    );
                }
                1 => {
                    let inserted = t.insert_if_absent(key, value);
                    let model_inserted = match model.entry(key) {
                        std::collections::hash_map::Entry::Occupied(_) => false,
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(value);
                            true
                        }
                    };
                    assert_eq!(inserted, model_inserted, "step {step}");
                }
                _ => {
                    assert_eq!(t.get(key), model.get(&key).copied(), "step {step}");
                    assert_eq!(t.contains(key), model.contains_key(&key), "step {step}");
                }
            }
            assert_eq!(t.len(), model.len(), "step {step}");
        }
        // Final sweep.
        for (k, v) in &model {
            assert_eq!(t.get(*k), Some(*v));
        }
        let from_iter: std::collections::HashMap<Perm, u8> = t.iter().collect();
        assert_eq!(from_iter, model);
    }

    #[test]
    fn probe_pipeline_agrees_with_contains() {
        let mut t = FnTable::with_capacity_bits(8); // dense: load ~0.78 forces clusters
        for i in 0..180u64 {
            t.insert(perm_of(i), 0);
        }
        // Pipeline of depth 2 over a mix of present and absent keys.
        let keys: Vec<Perm> = (0..400u64).map(perm_of).collect();
        let mut pending = None;
        let mut resolved = Vec::new();
        for &k in &keys {
            let probe = t.probe_start(k);
            if let Some(p) = pending.replace(probe) {
                resolved.push(t.probe_finish(p));
            }
        }
        if let Some(p) = pending {
            resolved.push(t.probe_finish(p));
        }
        let expected: Vec<bool> = keys.iter().map(|&k| t.contains(k)).collect();
        assert_eq!(resolved, expected);
    }

    #[test]
    fn capacity_bits_do_not_overflow_for_huge_tables() {
        // The paper's k = 9 regime: ~2.45 G entries. The naive
        // `expected * 12` would overflow a 32-bit usize and is within a
        // factor 2 of overflowing 64-bit for absurd inputs; the 128-bit
        // computation must stay exact everywhere.
        if usize::BITS >= 64 {
            let paper_k9: usize = 2_458_109_431;
            // 2³² slots — exactly the paper's Table 2 configuration for k = 9.
            assert_eq!(FnTable::capacity_bits_for(paper_k9), 32);
        }
        // On every pointer width, the top of the usize range must compute
        // exactly rather than wrap: ⌈(2^B − 1) · 12/7⌉ needs B + 1 bits.
        assert_eq!(FnTable::capacity_bits_for(usize::MAX), usize::BITS + 1);
        assert_eq!(FnTable::capacity_bits_for(usize::MAX / 2), usize::BITS);
        assert_eq!(FnTable::capacity_bits_for(0), 3);
        assert_eq!(FnTable::capacity_bits_for(4), 3);
        // Monotone in `expected`.
        let mut last = 0;
        for shift in 0..usize::BITS - 1 {
            let bits = FnTable::capacity_bits_for(1usize << shift);
            assert!(bits >= last, "2^{shift}");
            last = bits;
        }
    }

    // On 32-bit targets no `usize` entry count can exceed the 2^40-slot
    // guard, so the panic path is only reachable with 64-bit pointers.
    #[cfg(target_pointer_width = "64")]
    #[test]
    #[should_panic(expected = "unreasonable table size")]
    fn for_entries_rejects_absurd_sizes_instead_of_wrapping() {
        // Before the 128-bit fix this wrapped (silently building a tiny
        // table); now an absurd request must hit the explicit capacity
        // guard (2^62 entries need far more than 2^40 slots).
        let _ = FnTable::for_entries(usize::MAX >> 2);
    }

    #[test]
    fn displacement_counters_track_inserts() {
        let mut t = FnTable::with_capacity_bits(4); // 16 slots, grows under load
        assert_eq!(t.stats().displaced_inserts, 0);
        for i in 0..200u64 {
            t.insert(perm_of(i), 0);
        }
        let s = t.stats();
        // Dense inserts through several growths must have displaced some
        // keys, and every displaced insert walked at least one slot.
        assert!(s.displaced_inserts > 0);
        assert!(s.insert_displacement_total >= s.displaced_inserts);
        // Replacing existing keys does not move them.
        let before = t.stats().displaced_inserts;
        let total_before = t.stats().insert_displacement_total;
        for i in 0..200u64 {
            t.insert(perm_of(i), 1);
        }
        assert_eq!(t.stats().displaced_inserts, before);
        assert_eq!(t.stats().insert_displacement_total, total_before);
    }

    #[test]
    fn growth_wavefront_preserves_content_exactly() {
        // Force many growths from a tiny table and verify against a model.
        let mut t = FnTable::with_capacity_bits(3);
        let mut model = std::collections::HashMap::new();
        for i in 0..2000u64 {
            let p = perm_of(i);
            let v = (i % 251) as u8;
            t.insert(p, v);
            model.insert(p, v);
        }
        assert_eq!(t.len(), model.len());
        for (&k, &v) in &model {
            assert_eq!(t.get(k), Some(v));
        }
    }

    #[test]
    fn stats_are_sane() {
        let mut t = FnTable::with_capacity_bits(10);
        for i in 0..512u64 {
            t.insert(perm_of(i), 0);
        }
        let s = t.stats();
        assert_eq!(s.entries, t.len() as u64);
        assert_eq!(s.capacity, 1024);
        assert!(s.load_factor > 0.3 && s.load_factor < 0.6);
        assert!(s.avg_cluster_len >= 1.0);
        assert!(s.max_cluster_len >= s.avg_cluster_len as u64);
        assert!(s.max_displacement >= s.avg_displacement as u64);
        assert_eq!(s.memory_bytes, 1024 * 9);
    }

    #[test]
    fn empty_table_stats() {
        let t = FnTable::default();
        let s = t.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.clusters, 0);
        assert_eq!(s.avg_cluster_len, 0.0);
    }

    #[test]
    #[should_panic(expected = "unreasonable table size")]
    fn rejects_oversized_tables() {
        let _ = FnTable::with_capacity_bits(63);
    }

    #[test]
    fn mapped_table_reads_and_thaws_like_owned() {
        use revsynth_mmap::{ArcSlice, Region};
        use std::io::Write;

        let mut owned = FnTable::with_capacity_bits(8);
        for i in 0..120u64 {
            owned.insert(perm_of(i), (i % 97) as u8);
        }
        let (keys, values) = owned.slot_arrays();
        let path = std::env::temp_dir().join(format!("revsynth-fntable-{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&path).unwrap();
            for &k in keys {
                f.write_all(&k.to_le_bytes()).unwrap();
            }
            f.write_all(values).unwrap();
        }
        let mut f = std::fs::File::open(&path).unwrap();
        let region = std::sync::Arc::new(Region::map_file(&mut f).unwrap());
        let mapped_keys = ArcSlice::<u64>::new(std::sync::Arc::clone(&region), 0, keys.len());
        let mapped_values = ArcSlice::<u8>::new(region, keys.len() * 8, values.len());
        #[cfg(target_endian = "little")]
        {
            let witness = owned.first_empty_slot();
            let mut t = FnTable::from_mapped(
                mapped_keys.unwrap(),
                mapped_values.unwrap(),
                owned.len(),
                witness,
            )
            .unwrap();
            assert!(t.is_mapped());
            assert_eq!(t.len(), owned.len());
            for i in 0..200u64 {
                assert_eq!(t.get(perm_of(i)), owned.get(perm_of(i)), "key {i}");
                assert_eq!(t.contains(perm_of(i)), owned.contains(perm_of(i)));
            }
            // Mutation thaws to owned storage and keeps behaving.
            let fresh = perm_of(5_000_000);
            t.insert(fresh, 42);
            assert!(!t.is_mapped());
            assert_eq!(t.get(fresh), Some(42));
            assert_eq!(t.len(), owned.len() + usize::from(!owned.contains(fresh)));
        }
        // A bogus witness (occupied slot) must be rejected up front.
        let occupied = keys.iter().position(|&k| k != u64::MAX).unwrap();
        let mut f2 = std::fs::File::open(&path).unwrap();
        let region2 = std::sync::Arc::new(Region::map_file(&mut f2).unwrap());
        let mk = ArcSlice::<u64>::new(std::sync::Arc::clone(&region2), 0, keys.len()).unwrap();
        let mv = ArcSlice::<u8>::new(region2, keys.len() * 8, values.len()).unwrap();
        assert!(FnTable::from_mapped(mk.clone(), mv.clone(), owned.len(), occupied).is_err());
        assert!(FnTable::from_mapped(mk, mv, keys.len(), 0).is_err());
        std::fs::remove_file(&path).ok();
    }
}
