//! Owned-or-mapped backing storage for the table slot arrays.
//!
//! The generation paths build tables in owned `Vec`s; the v5 store loader
//! hands the same arrays over as [`ArcSlice`] views borrowed zero-copy
//! from a file mapping. Reads go through `Deref` either way; any mutation
//! first promotes the storage to owned with [`RawStore::make_mut`].

use std::ops::Deref;

use revsynth_mmap::{ArcSlice, Pod};

/// A slot array that is either owned or borrowed from a store mapping.
pub(crate) enum RawStore<T: Pod> {
    Owned(Vec<T>),
    Mapped(ArcSlice<T>),
}

impl<T: Pod> RawStore<T> {
    /// Promotes to owned storage (copying mapped contents once) and
    /// returns the mutable vector.
    pub(crate) fn make_mut(&mut self) -> &mut Vec<T> {
        if let RawStore::Mapped(slice) = self {
            *self = RawStore::Owned(slice.to_vec());
        }
        match self {
            RawStore::Owned(v) => v,
            RawStore::Mapped(_) => unreachable!("promoted to owned above"),
        }
    }

    /// Whether the storage still borrows from a mapping.
    pub(crate) fn is_mapped(&self) -> bool {
        matches!(self, RawStore::Mapped(_))
    }
}

impl<T: Pod> Deref for RawStore<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            RawStore::Owned(v) => v,
            RawStore::Mapped(s) => s,
        }
    }
}

impl<T: Pod> Clone for RawStore<T> {
    fn clone(&self) -> Self {
        match self {
            RawStore::Owned(v) => RawStore::Owned(v.clone()),
            RawStore::Mapped(s) => RawStore::Mapped(s.clone()),
        }
    }
}

impl<T: Pod> From<Vec<T>> for RawStore<T> {
    fn from(v: Vec<T>) -> Self {
        RawStore::Owned(v)
    }
}
