//! Table statistics in the shape of the paper's Table 2.

use std::fmt;

/// Aggregate statistics of an [`FnTable`](crate::FnTable).
///
/// The paper's Table 2 reports, per configuration: slot count, memory
/// usage, load factor, and average/maximal chain length. "Chains" in a
/// linear-probing table are the maximal runs of occupied slots (clusters);
/// this struct reports both cluster lengths and per-key displacements
/// (probe distances), the latter being the better predictor of lookup
/// latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableStats {
    /// Number of stored entries.
    pub entries: u64,
    /// Number of slots (power of two).
    pub capacity: u64,
    /// Resident bytes of the key and value arrays.
    pub memory_bytes: u64,
    /// Insertions over the table's lifetime (rehash reinsertions
    /// included) that did not land in their hash-home slot — a running
    /// counter maintained at insert time, unlike the scan-derived
    /// displacement fields below, so the cumulative cost of clustering
    /// across growths is visible when tuning the load factor.
    pub displaced_inserts: u64,
    /// Total slots walked past by those displaced insertions.
    pub insert_displacement_total: u64,
    /// `entries / capacity`.
    pub load_factor: f64,
    /// Mean distance from a key's slot to its hash-home slot.
    pub avg_displacement: f64,
    /// Maximal such distance.
    pub max_displacement: u64,
    /// Number of maximal occupied runs.
    pub clusters: u64,
    /// Mean occupied-run length (the paper's "average chain length").
    pub avg_cluster_len: f64,
    /// Maximal occupied-run length (the paper's "maximal chain length").
    pub max_cluster_len: u64,
}

impl TableStats {
    /// Memory usage rendered like the paper ("256 MB", "2 GB", …).
    #[must_use]
    pub fn memory_display(&self) -> String {
        let b = self.memory_bytes as f64;
        if b >= (1u64 << 30) as f64 {
            format!("{:.2} GB", b / (1u64 << 30) as f64)
        } else if b >= (1u64 << 20) as f64 {
            format!("{:.0} MB", b / (1u64 << 20) as f64)
        } else if b >= 1024.0 {
            format!("{:.0} KB", b / 1024.0)
        } else {
            format!("{b:.0} B")
        }
    }
}

impl fmt::Display for TableStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "size 2^{}, {} mem, load {:.2}, avg chain {:.2}, max chain {}",
            self.capacity.trailing_zeros(),
            self.memory_display(),
            self.load_factor,
            self.avg_cluster_len,
            self.max_cluster_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_display_units() {
        let mut s = TableStats {
            entries: 0,
            capacity: 0,
            memory_bytes: 512,
            displaced_inserts: 0,
            insert_displacement_total: 0,
            load_factor: 0.0,
            avg_displacement: 0.0,
            max_displacement: 0,
            clusters: 0,
            avg_cluster_len: 0.0,
            max_cluster_len: 0,
        };
        assert_eq!(s.memory_display(), "512 B");
        s.memory_bytes = 256 * 1024 * 1024;
        assert_eq!(s.memory_display(), "256 MB");
        s.memory_bytes = 2 * 1024 * 1024 * 1024;
        assert_eq!(s.memory_display(), "2.00 GB");
    }
}
