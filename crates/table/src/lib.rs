//! Linear-probing hash table keyed by packed reversible functions.
//!
//! The membership test of the search-and-lookup algorithm (paper §3.1) must
//! answer "is this canonical representative of size ≤ k?" in a handful of
//! nanoseconds over hundreds of millions of entries. The paper uses a
//! **linear probing** open-addressing table with Thomas Wang's
//! `hash64shift` hash (§3.3, Table 2); this crate reproduces that design:
//!
//! * keys are packed permutations ([`revsynth_perm::Perm`]), stored inline
//!   in a flat `u64` array (8 bytes per slot, power-of-two capacity);
//! * values are one byte (the synthesis pipeline packs a gate and a
//!   first/last flag into it);
//! * the empty slot marker is `u64::MAX`, which is not a valid packed
//!   permutation, so no key is ever ambiguous;
//! * probe and cluster statistics match the columns of the paper's Table 2
//!   (load factor, average/maximal chain length).
//!
//! # Example
//!
//! ```
//! use revsynth_perm::Perm;
//! use revsynth_table::FnTable;
//!
//! let mut table = FnTable::for_entries(100);
//! table.insert(Perm::identity(), 7);
//! assert_eq!(table.get(Perm::identity()), Some(7));
//! assert_eq!(table.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod invariant;
mod ring;
mod stats;
mod storage;
mod table;

pub use invariant::InvariantIndex;
pub use ring::ProbeRing;
pub use stats::TableStats;
pub use table::{FnTable, Probe};
