//! The invariant index: the data structure behind the meet-in-the-middle
//! candidate gate.
//!
//! Every function the search tables store is a canonical representative of
//! a ×48 equivalence class (conjugation by wire relabelings, and
//! inversion). Both [`Perm::cycle_type_key`] and [`Perm::wire_weight_key`]
//! are **constant on each class**, so a candidate composition whose
//! combined invariant key matches no stored function *provably* misses the
//! table — its ~750-instruction canonicalization and hash probe can be
//! skipped outright.
//!
//! The index maps each distinct combined invariant value occurring in the
//! tables to the **bitmask of optimal sizes** at which it occurs (bit `d`
//! set ⇔ some stored representative of size exactly `d` has this
//! invariant), which also yields the minimum stored distance per invariant
//! as `mask.trailing_zeros()`. The search engine gates with
//! [`admits_at`](InvariantIndex::admits_at): a first meet-in-the-middle
//! hit always has residue distance exactly `k` (see the engine docs), so
//! the gate tests the single bit `k`.
//!
//! Collisions in the combined 64-bit key only ever *merge* entries, which
//! widens a mask — the gate stays sound (it can pass a doomed candidate,
//! never reject a viable one).

use revsynth_mmap::ArcSlice;
use revsynth_perm::{hash64shift, Perm};

use crate::storage::RawStore;

/// Maps combined class-invariant keys to the distance sets at which they
/// occur among the stored representatives. Built once per
/// `SearchTables`; read-only and `Sync` afterwards.
///
/// Internally a small linear-probing table (like
/// [`FnTable`](crate::FnTable), but with `u32` distance-mask values and a
/// zero-mask empty marker), sized well below the main hash table: the
/// k = 5 tables hold ~109k classes but only ~47k distinct invariants.
///
/// Like [`FnTable`](crate::FnTable), the arrays are either owned (built
/// by the generate path) or borrowed zero-copy from a v5 store mapping
/// ([`InvariantIndex::from_mapped`]); the index is never mutated after
/// construction, so mapped storage is never copied.
#[derive(Clone)]
pub struct InvariantIndex {
    keys: RawStore<u64>,
    masks: RawStore<u32>,
    slot_mask: u64,
    len: usize,
    /// Stage-1 prefilter: a bitmap over hashed [`Perm::wire_weight_key`]
    /// values of the stored representatives. The weight key alone is
    /// already a class invariant, and it is the cheap half of the
    /// combined key (straight-line SWAR, no pointer chase), so the hot
    /// gate tests it first and computes the cycle type only for the few
    /// candidates whose weight profile occurs at all. A clear bit proves
    /// absence; a set bit (including hash false positives) falls through
    /// to the exact combined lookup — staging never changes the answer.
    weight_bits: RawStore<u64>,
    weight_bit_mask: u64,
}

impl InvariantIndex {
    /// The combined invariant key of a function: its cycle type
    /// ([`Perm::cycle_type_key`]) mixed with its wire-weight profile
    /// ([`Perm::wire_weight_key`]). Constant on every ×48 equivalence
    /// class; this is the hot kernel of the candidate gate (a few dozen
    /// straight-line instructions, no memory traffic).
    #[inline]
    #[must_use]
    pub fn key_of(f: Perm) -> u64 {
        hash64shift(f.cycle_type_key()) ^ f.wire_weight_key()
    }

    /// Builds the index from `(representative, optimal size)` pairs.
    /// `expected` pre-sizes the table (the number of pairs is fine; the
    /// distinct-invariant count is always smaller). An underestimate
    /// costs a rehash, never correctness: the table doubles when the
    /// distinct-key count reaches half its slots.
    ///
    /// # Panics
    ///
    /// Panics if a distance exceeds 31 (the search depth `k` is asserted
    /// ≤ 16 long before this).
    #[must_use]
    pub fn build<I: IntoIterator<Item = (Perm, usize)>>(entries: I, expected: usize) -> Self {
        let bits = usize::BITS - expected.max(8).saturating_mul(2).leading_zeros();
        let cap = 1usize << bits;
        // Prefilter bitmap: ~8 bits per expected entry keeps the
        // false-positive rate of stage 1 low without leaving cache
        // (2^20 bits = 128 KB at the k = 5 scale), clamped to sane sizes.
        let weight_bits_pow =
            (usize::BITS - expected.max(8).saturating_mul(8).leading_zeros()).clamp(14, 27);
        let mut index = InvariantIndex {
            keys: RawStore::Owned(vec![0; cap]),
            masks: RawStore::Owned(vec![0; cap]),
            slot_mask: (cap - 1) as u64,
            len: 0,
            weight_bits: RawStore::Owned(vec![0; 1 << (weight_bits_pow - 6)]),
            weight_bit_mask: (1u64 << weight_bits_pow) - 1,
        };
        for (rep, distance) in entries {
            assert!(distance < 32, "distance {distance} out of mask range");
            let weight = rep.wire_weight_key();
            let bit = hash64shift(weight) & index.weight_bit_mask;
            index.weight_bits.make_mut()[(bit >> 6) as usize] |= 1 << (bit & 63);
            index.insert(hash64shift(rep.cycle_type_key()) ^ weight, 1 << distance);
        }
        index
    }

    /// Builds the index over arrays borrowed zero-copy from a store
    /// mapping (the v5 load path).
    ///
    /// `len` is the persisted distinct-invariant count and `empty_slot` a
    /// persisted witness index of one empty slot (`mask == 0`); both are
    /// validated here, along with the array shapes, so probe loops on the
    /// borrowed arrays terminate even before the store's bulk section
    /// checksums have been verified.
    pub fn from_mapped(
        keys: ArcSlice<u64>,
        masks: ArcSlice<u32>,
        weight_bits: ArcSlice<u64>,
        weight_bit_mask: u64,
        len: usize,
        empty_slot: usize,
    ) -> Result<Self, &'static str> {
        let cap = keys.len();
        if cap != masks.len() {
            return Err("key and mask arrays differ in length");
        }
        if !cap.is_power_of_two() || cap < 2 {
            return Err("slot count is not a supported power of two");
        }
        if len.checked_mul(2).is_none_or(|need| need > cap) {
            return Err("entry count exceeds the half-full load limit");
        }
        if empty_slot >= cap || masks[empty_slot] != 0 {
            return Err("empty-slot witness does not point at an empty slot");
        }
        if weight_bits.is_empty() || !weight_bits.len().is_power_of_two() {
            return Err("prefilter bitmap length is not a power of two");
        }
        let expect_mask = (weight_bits.len() as u64)
            .checked_mul(64)
            .map(|bits| bits - 1);
        if expect_mask != Some(weight_bit_mask) {
            return Err("prefilter bit mask does not match the bitmap length");
        }
        Ok(InvariantIndex {
            keys: RawStore::Mapped(keys),
            masks: RawStore::Mapped(masks),
            slot_mask: (cap - 1) as u64,
            len,
            weight_bits: RawStore::Mapped(weight_bits),
            weight_bit_mask,
        })
    }

    /// Rebuilds the index into its canonical compact owned layout: the
    /// smallest power-of-two slot count at load ≤ 1/2, entries inserted
    /// in sorted key order. Two logically equal indexes compact to
    /// byte-identical arrays regardless of how either was built — this is
    /// what makes v5 store bytes deterministic.
    #[must_use]
    pub fn compact(&self) -> InvariantIndex {
        let mut entries: Vec<(u64, u32)> = self.entries().collect();
        entries.sort_unstable();
        let cap = (entries.len().max(4) * 2).next_power_of_two();
        let slot_mask = (cap - 1) as u64;
        let mut keys = vec![0u64; cap];
        let mut masks = vec![0u32; cap];
        for &(key, mask) in &entries {
            let mut i = (hash64shift(key) & slot_mask) as usize;
            while masks[i] != 0 {
                i = (i + 1) & slot_mask as usize;
            }
            keys[i] = key;
            masks[i] = mask;
        }
        InvariantIndex {
            keys: RawStore::Owned(keys),
            masks: RawStore::Owned(masks),
            slot_mask,
            len: entries.len(),
            weight_bits: RawStore::Owned(self.weight_bits.to_vec()),
            weight_bit_mask: self.weight_bit_mask,
        }
    }

    /// The raw slot arrays (keys, distance masks), including empty slots
    /// (`mask == 0`). Exposed for store persistence.
    #[must_use]
    pub fn slot_arrays(&self) -> (&[u64], &[u32]) {
        (&self.keys, &self.masks)
    }

    /// The stage-1 prefilter bitmap and its bit mask. Exposed for store
    /// persistence.
    #[must_use]
    pub fn weight_bitmap(&self) -> (&[u64], u64) {
        (&self.weight_bits, self.weight_bit_mask)
    }

    /// Index of the first empty slot — the witness persisted alongside
    /// the slot arrays.
    ///
    /// # Panics
    ///
    /// Panics if no slot is empty (impossible at load ≤ 1/2).
    #[must_use]
    pub fn first_empty_slot(&self) -> usize {
        self.masks
            .iter()
            .position(|&m| m == 0)
            .expect("index at load <= 1/2 always has an empty slot")
    }

    /// Whether the arrays are still borrowed from a store mapping.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.keys.is_mapped() || self.masks.is_mapped() || self.weight_bits.is_mapped()
    }

    /// The hot gate test: whether any stored representative of size
    /// **exactly** `distance` could share `f`'s class invariants.
    ///
    /// Evaluates in two stages — the cheap weight key against the
    /// prefilter bitmap first, the full combined key against the index
    /// only for survivors — and is exactly equivalent to
    /// `admits_at(key_of(f), distance)`.
    #[inline]
    #[must_use]
    pub fn admits(&self, f: Perm, distance: usize) -> bool {
        let weight = f.wire_weight_key();
        let bit = hash64shift(weight) & self.weight_bit_mask;
        if self.weight_bits[(bit >> 6) as usize] >> (bit & 63) & 1 == 0 {
            return false;
        }
        self.admits_at(hash64shift(f.cycle_type_key()) ^ weight, distance)
    }

    fn insert(&mut self, key: u64, mask_bit: u32) {
        // Keep the load factor ≤ 1/2 so probes terminate even when the
        // builder's `expected` underestimated the distinct-key count.
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let slot_mask = self.slot_mask;
        let mut i = (hash64shift(key) & slot_mask) as usize;
        let keys = self.keys.make_mut();
        let masks = self.masks.make_mut();
        loop {
            if masks[i] == 0 {
                keys[i] = key;
                masks[i] = mask_bit;
                self.len += 1;
                return;
            }
            if keys[i] == key {
                masks[i] |= mask_bit;
                return;
            }
            i = (i + 1) & slot_mask as usize;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, RawStore::Owned(vec![0; new_cap]));
        let old_masks = std::mem::replace(&mut self.masks, RawStore::Owned(vec![0; new_cap]));
        self.slot_mask = (new_cap - 1) as u64;
        let slot_mask = self.slot_mask;
        let keys = self.keys.make_mut();
        let masks = self.masks.make_mut();
        for (&key, &mask) in old_keys.iter().zip(old_masks.iter()) {
            if mask == 0 {
                continue;
            }
            let mut i = (hash64shift(key) & slot_mask) as usize;
            while masks[i] != 0 {
                i = (i + 1) & slot_mask as usize;
            }
            keys[i] = key;
            masks[i] = mask;
        }
    }

    /// The distance bitmask stored for `key` (bit `d` ⇔ the invariant
    /// occurs at optimal size `d`), or 0 if the invariant occurs nowhere
    /// in the tables.
    #[inline]
    #[must_use]
    pub fn distance_mask(&self, key: u64) -> u32 {
        let mut i = (hash64shift(key) & self.slot_mask) as usize;
        loop {
            let mask = self.masks[i];
            if mask == 0 {
                return 0;
            }
            if self.keys[i] == key {
                return mask;
            }
            i = (i + 1) & self.slot_mask as usize;
        }
    }

    /// The minimum stored distance of any representative with this
    /// invariant, or `None` if the invariant occurs nowhere.
    #[inline]
    #[must_use]
    pub fn min_distance(&self, key: u64) -> Option<u32> {
        match self.distance_mask(key) {
            0 => None,
            mask => Some(mask.trailing_zeros()),
        }
    }

    /// Whether any stored representative of size **exactly** `distance`
    /// has this invariant — the meet-in-the-middle gate test (a first hit
    /// forces residue distance exactly `k`, so candidates failing this for
    /// `distance = k` can never probe successfully).
    #[inline]
    #[must_use]
    pub fn admits_at(&self, key: u64, distance: usize) -> bool {
        self.distance_mask(key) >> distance & 1 == 1
    }

    /// Whether any stored representative at a distance in `allowed`
    /// (bit `d` set ⇔ distance `d` allowed) has `f`'s class invariants —
    /// the cost-bounded engine's gate, where the allowed set is the
    /// residual-cost **buckets** that could still improve the current
    /// best decomposition. Staged exactly like [`admits`](Self::admits):
    /// the weight-key prefilter first, the combined key only for
    /// survivors; a `false` proves the candidate misses every allowed
    /// bucket.
    #[inline]
    #[must_use]
    pub fn admits_any(&self, f: Perm, allowed: u32) -> bool {
        if allowed == 0 {
            return false;
        }
        let weight = f.wire_weight_key();
        let bit = hash64shift(weight) & self.weight_bit_mask;
        if self.weight_bits[(bit >> 6) as usize] >> (bit & 63) & 1 == 0 {
            return false;
        }
        self.distance_mask(hash64shift(f.cycle_type_key()) ^ weight) & allowed != 0
    }

    /// Number of distinct invariant values stored.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate resident bytes (key, mask and prefilter arrays).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.keys.len() * 8 + self.masks.len() * 4 + self.weight_bits.len() * 8
    }

    /// Iterates over the stored `(invariant key, distance mask)` entries
    /// in unspecified order. Used to compare indexes built by different
    /// paths (e.g. the generate path versus a store load) for logical
    /// equality.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.keys
            .iter()
            .zip(self.masks.iter())
            .filter(|&(_, &mask)| mask != 0)
            .map(|(&key, &mask)| (key, mask))
    }
}

/// Logical equality: two indexes are equal when they hold the same
/// `(key, mask)` entries and the same stage-1 prefilter bitmap —
/// regardless of slot layout (which depends on insertion order). Two
/// indexes built from the same `(rep, distance)` multiset with the same
/// pre-sizing hint always compare equal.
impl PartialEq for InvariantIndex {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len
            || self.weight_bit_mask != other.weight_bit_mask
            || self.weight_bits[..] != other.weight_bits[..]
        {
            return false;
        }
        let mut a: Vec<(u64, u32)> = self.entries().collect();
        let mut b: Vec<(u64, u32)> = other.entries().collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

impl Eq for InvariantIndex {}

impl std::fmt::Debug for InvariantIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "InvariantIndex({} invariants, 2^{} slots)",
            self.len,
            self.keys.len().trailing_zeros()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perm_of(i: u64) -> Perm {
        let mut vals: Vec<u8> = (0..16).collect();
        let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for j in (1..16).rev() {
            vals.swap(j, (x % (j as u64 + 1)) as usize);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(12345);
            x >>= 7;
            if x == 0 {
                x = i.wrapping_add(j as u64) | 1;
            }
        }
        Perm::from_values(&vals).unwrap()
    }

    #[test]
    fn key_of_is_class_invariant_under_inverse() {
        for i in 0..50 {
            let p = perm_of(i);
            assert_eq!(
                InvariantIndex::key_of(p),
                InvariantIndex::key_of(p.inverse())
            );
        }
    }

    #[test]
    fn build_and_lookup_roundtrip() {
        let entries: Vec<(Perm, usize)> = (0..200u64)
            .map(|i| (perm_of(i), (i % 7) as usize))
            .collect();
        let index = InvariantIndex::build(entries.iter().copied(), entries.len());
        assert!(index.len() <= 200);
        assert!(!index.is_empty());
        for &(p, d) in &entries {
            let key = InvariantIndex::key_of(p);
            assert!(index.admits_at(key, d), "distance {d} of {p}");
            let min = index.min_distance(key).expect("stored invariant");
            assert!(min as usize <= d);
            assert_eq!(min, index.distance_mask(key).trailing_zeros());
        }
    }

    #[test]
    fn absent_invariants_are_rejected_at_every_distance() {
        // Index of near-identity permutations only: a generic permutation
        // with full support has a different cycle type and must be absent.
        let mut vals: Vec<u8> = (0..16).collect();
        vals.swap(0, 1);
        let swap = Perm::from_values(&vals).unwrap();
        let index = InvariantIndex::build([(swap, 1), (Perm::identity(), 0)], 2);
        assert_eq!(index.len(), 2);
        let generic =
            Perm::from_values(&[15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11]).unwrap();
        let key = InvariantIndex::key_of(generic);
        assert_eq!(index.distance_mask(key), 0);
        assert_eq!(index.min_distance(key), None);
        for d in 0..32 {
            assert!(!index.admits_at(key, d));
        }
    }

    #[test]
    fn build_survives_a_wild_underestimate() {
        // `expected` far below the distinct-key count must trigger growth,
        // not an unterminated probe loop.
        let entries: Vec<(Perm, usize)> = (0..300u64).map(|i| (perm_of(i), 1)).collect();
        let index = InvariantIndex::build(entries.iter().copied(), 1);
        assert!(
            index.len() > 32,
            "sample must exceed the minimum initial slot count"
        );
        for &(p, d) in &entries {
            assert!(index.admits_at(InvariantIndex::key_of(p), d));
        }
    }

    #[test]
    fn staged_admits_equals_exact_admits() {
        // The weight-key prefilter may only reject what the exact lookup
        // also rejects: both paths must agree on every candidate and
        // distance.
        let entries: Vec<(Perm, usize)> = (0..100u64)
            .map(|i| (perm_of(i), (i % 6) as usize))
            .collect();
        let index = InvariantIndex::build(entries.iter().copied(), entries.len());
        for i in 0..500u64 {
            let p = perm_of(i);
            let key = InvariantIndex::key_of(p);
            for d in 0..8 {
                assert_eq!(
                    index.admits(p, d),
                    index.admits_at(key, d),
                    "perm {i}, distance {d}"
                );
            }
        }
    }

    #[test]
    fn admits_any_agrees_with_per_distance_admits() {
        let entries: Vec<(Perm, usize)> = (0..120u64)
            .map(|i| (perm_of(i), (i % 9) as usize))
            .collect();
        let index = InvariantIndex::build(entries.iter().copied(), entries.len());
        for i in 0..300u64 {
            let p = perm_of(i);
            for allowed in [0u32, 1, 0b1010, 0x1FF, u32::MAX] {
                let expected = (0..32).any(|d| allowed >> d & 1 == 1 && index.admits(p, d));
                assert_eq!(
                    index.admits_any(p, allowed),
                    expected,
                    "perm {i} mask {allowed:#x}"
                );
            }
        }
    }

    #[test]
    fn masks_merge_across_distances() {
        let p = perm_of(3);
        let index = InvariantIndex::build([(p, 2), (p, 5), (p.inverse(), 4)], 3);
        assert_eq!(index.len(), 1, "same class merges into one entry");
        let key = InvariantIndex::key_of(p);
        assert_eq!(index.distance_mask(key), (1 << 2) | (1 << 5) | (1 << 4));
        assert_eq!(index.min_distance(key), Some(2));
        assert!(index.admits_at(key, 4));
        assert!(!index.admits_at(key, 3));
    }

    #[test]
    #[should_panic(expected = "out of mask range")]
    fn distances_beyond_mask_are_rejected() {
        let _ = InvariantIndex::build([(Perm::identity(), 32)], 1);
    }

    #[test]
    fn entries_expose_every_stored_invariant() {
        let entries: Vec<(Perm, usize)> =
            (0..80u64).map(|i| (perm_of(i), (i % 5) as usize)).collect();
        let index = InvariantIndex::build(entries.iter().copied(), entries.len());
        let listed: std::collections::HashMap<u64, u32> = index.entries().collect();
        assert_eq!(listed.len(), index.len());
        for &(p, d) in &entries {
            let key = InvariantIndex::key_of(p);
            assert_eq!(listed[&key], index.distance_mask(key), "perm {p}");
            assert!(listed[&key] >> d & 1 == 1, "distance {d}");
        }
    }

    #[test]
    fn compact_is_deterministic_and_logically_equal() {
        let entries: Vec<(Perm, usize)> = (0..150u64)
            .map(|i| (perm_of(i), (i % 6) as usize))
            .collect();
        let forward = InvariantIndex::build(entries.iter().copied(), entries.len());
        let reverse = InvariantIndex::build(entries.iter().rev().copied(), entries.len());
        // Different insertion orders produce different slot layouts but
        // identical compact layouts.
        let a = forward.compact();
        let b = reverse.compact();
        assert_eq!(a.slot_arrays().0, b.slot_arrays().0);
        assert_eq!(a.slot_arrays().1, b.slot_arrays().1);
        assert_eq!(a.weight_bitmap().0, b.weight_bitmap().0);
        assert_eq!(a.first_empty_slot(), b.first_empty_slot());
        // The compacted index answers identically.
        assert_eq!(a, forward);
        assert!(a.slot_arrays().0.len() <= forward.slot_arrays().0.len());
        for i in 0..400u64 {
            let p = perm_of(i);
            for d in 0..8 {
                assert_eq!(a.admits(p, d), forward.admits(p, d), "perm {i} d {d}");
            }
            assert_eq!(
                a.distance_mask(InvariantIndex::key_of(p)),
                forward.distance_mask(InvariantIndex::key_of(p))
            );
        }
        // Compacting a compact index is the identity on the arrays.
        let c = a.compact();
        assert_eq!(a.slot_arrays().0, c.slot_arrays().0);
        assert_eq!(a.slot_arrays().1, c.slot_arrays().1);
    }

    #[test]
    fn equality_is_insertion_order_independent() {
        let entries: Vec<(Perm, usize)> = (0..120u64)
            .map(|i| (perm_of(i), (i % 6) as usize))
            .collect();
        let forward = InvariantIndex::build(entries.iter().copied(), entries.len());
        let reverse = InvariantIndex::build(entries.iter().rev().copied(), entries.len());
        assert_eq!(forward, reverse, "slot layout must not matter");

        let mut shorter = entries.clone();
        shorter.truncate(100);
        let partial = InvariantIndex::build(shorter.iter().copied(), entries.len());
        assert_ne!(forward, partial);
        // A distance change flips a mask bit and must break equality.
        let mut bumped = entries;
        bumped[0].1 += 20;
        let changed = InvariantIndex::build(bumped.iter().copied(), bumped.len());
        assert_ne!(forward, changed);
    }
}
