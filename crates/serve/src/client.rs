//! Blocking client for the synthesis service.
//!
//! One [`Client`] holds one TCP connection and issues requests
//! synchronously (the protocol is strictly request/response per
//! connection). Clients are cheap; open one per thread for concurrent
//! load.
//!
//! Overload handling: a server shedding load answers with an
//! `Overloaded` frame, surfaced as [`ClientError::Overloaded`] with the
//! server's retry hint; a [`QueryOptions::retry`] policy turns the hint
//! into capped exponential backoff with deterministic SplitMix64
//! jitter ([`RetryPolicy`]). A read that exhausts its timeout budget is
//! surfaced as [`ClientError::DeadlineExceeded`] — distinguishable from
//! a dead socket — after which the connection must be discarded (a late
//! response may still be in flight on the stream).

use std::error::Error;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use revsynth_analysis::{Rng, SplitMix64};
use revsynth_circuit::{Circuit, CostKind};
use revsynth_perm::Perm;

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, ProtocolError, Request, Response,
};
use crate::stats::{HealthReport, ServeStats};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or framing failure.
    Protocol(ProtocolError),
    /// The server answered with an error response (unsynthesizable
    /// function, shutdown in progress, malformed request…).
    Server(String),
    /// The server shed the request (queue or connection limit); retry
    /// after the hint, with backoff (a [`QueryOptions::retry`] policy
    /// does this automatically).
    Overloaded {
        /// The server's suggested wait before retrying, milliseconds.
        retry_after_ms: u32,
    },
    /// No response arrived within the connection's timeout budget. The
    /// server may still answer later — the connection is now
    /// desynchronized and must be discarded.
    DeadlineExceeded {
        /// Time waited before giving up.
        elapsed: Duration,
        /// The connection's configured timeout budget.
        budget: Duration,
    },
    /// The server answered with a response that does not match the
    /// request (e.g. stats for a query) — a protocol bug or a hostile
    /// server.
    UnexpectedResponse,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol failure: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms} ms")
            }
            ClientError::DeadlineExceeded { elapsed, budget } => write!(
                f,
                "deadline exceeded: no response after {:.1} s of a {:.1} s budget",
                elapsed.as_secs_f64(),
                budget.as_secs_f64()
            ),
            ClientError::UnexpectedResponse => write!(f, "response does not match the request"),
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// Capped exponential backoff with deterministic jitter, used by
/// [`Client::query_opts`] when [`QueryOptions::retry`] is set and the
/// server sheds load.
///
/// Attempt `k` (0-based) waits `max(server hint, jittered backoff)`
/// where the backoff doubles from `base` up to `cap` and the jitter
/// draws uniformly from `[delay/2, delay]` using a seeded
/// [`SplitMix64`] — deterministic per seed, decorrelated across
/// clients so a shed thundering herd does not reconverge on one retry
/// instant.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (the first try plus retries); at least 1.
    pub attempts: u32,
    /// Backoff before the first retry (doubles each retry).
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Jitter seed (vary per client; determinism per seed is what chaos
    /// tests pin).
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// 5 attempts, 10 ms doubling to a 1 s cap.
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (0-based), honoring the
    /// server's `retry_after_ms` hint as a floor.
    fn delay(&self, retry: u32, retry_after_ms: u32, rng: &mut SplitMix64) -> Duration {
        let doubled = self
            .base
            .saturating_mul(1u32 << retry.min(20))
            .min(self.cap);
        let nanos = doubled.as_nanos().min(u128::from(u64::MAX)) as u64;
        // Uniform in [delay/2, delay]: keeps a meaningful wait while
        // spreading clients across half the window.
        let jittered = Duration::from_nanos(nanos / 2 + rng.next_u64() % (nanos / 2 + 1));
        jittered.max(Duration::from_millis(u64::from(retry_after_ms)))
    }
}

/// Options for one query: cost model, server-side deadline, retry
/// policy — the single entry point [`Client::query_opts`] subsumes the
/// old `query_with_*` method family.
///
/// ```
/// # use revsynth_serve::{QueryOptions, RetryPolicy};
/// # use revsynth_circuit::CostKind;
/// let opts = QueryOptions::new()
///     .cost_model(CostKind::Quantum)
///     .deadline_ms(250)
///     .retry(RetryPolicy::default());
/// assert_eq!(opts.cost_model, CostKind::Quantum);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// The cost model to minimize ([`CostKind::Gates`] by default).
    pub cost_model: CostKind,
    /// Server-side deadline, milliseconds from the server decoding the
    /// request: if the search cannot *start* within the budget, the
    /// server expires the request instead of running it. `None` (the
    /// default) = no deadline.
    pub deadline_ms: Option<u32>,
    /// Retry shed requests with capped, jittered exponential backoff
    /// ([`RetryPolicy`]); `None` (the default) surfaces
    /// [`ClientError::Overloaded`] to the caller on the first shed.
    pub retry: Option<RetryPolicy>,
}

impl QueryOptions {
    /// The default options: gate count, no deadline, no retry.
    #[must_use]
    pub fn new() -> Self {
        QueryOptions::default()
    }

    /// Sets the cost model ([`cost_model`](Self::cost_model)).
    #[must_use]
    pub fn cost_model(mut self, kind: CostKind) -> Self {
        self.cost_model = kind;
        self
    }

    /// Sets the server-side deadline ([`deadline_ms`](Self::deadline_ms)).
    #[must_use]
    pub fn deadline_ms(mut self, ms: u32) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Enables overload retry with `policy` ([`retry`](Self::retry)).
    #[must_use]
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }
}

/// A blocking connection to a synthesis server.
pub struct Client {
    stream: TcpStream,
    /// The read/write timeout budget, kept for deadline reporting.
    timeout: Duration,
}

impl Client {
    /// Default per-request timeout: generous enough for a cold search
    /// on modest tables, finite so a dead server cannot hang a caller.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(60);

    /// Connects with the [default timeout](Self::DEFAULT_TIMEOUT).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Self::connect_with_timeout(addr, Self::DEFAULT_TIMEOUT)
    }

    /// Connects with an explicit per-request read/write timeout.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client { stream, timeout })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let start = Instant::now();
        if let Err(e) = write_frame(&mut self.stream, &encode_request(request)) {
            // A server shedding this connection answers *before* reading
            // the request and closes, so the write can fail with the
            // response already in our receive buffer. Drain one pending
            // frame before giving up — that is how the typed
            // `Overloaded` reaches callers of a shed connection.
            if let Ok(payload) = read_frame(&mut self.stream) {
                return Ok(decode_response(&payload)?);
            }
            return Err(ClientError::Protocol(ProtocolError::Io(e)));
        }
        let payload = read_frame(&mut self.stream).map_err(|e| match e {
            // An OS read timeout (reported as WouldBlock or TimedOut
            // depending on platform) is the request's budget running
            // out, not a dead socket — surface it as the typed deadline
            // error with the elapsed/budget evidence.
            ProtocolError::Io(io)
                if matches!(
                    io.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                ClientError::DeadlineExceeded {
                    elapsed: start.elapsed(),
                    budget: self.timeout,
                }
            }
            other => ClientError::Protocol(other),
        })?;
        Ok(decode_response(&payload)?)
    }

    /// Synthesizes a gate-count-optimal circuit for `f` on the server
    /// (shorthand for [`query_opts`](Self::query_opts) with default
    /// [`QueryOptions`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the server declines the query,
    /// [`ClientError::Protocol`] on transport failure.
    pub fn query(&mut self, f: Perm) -> Result<Circuit, ClientError> {
        self.query_opts(f, &QueryOptions::new())
    }

    /// Synthesizes a cost-minimal circuit for `f` per `opts`: the
    /// selected cost model, an optional server-side deadline, and an
    /// optional overload-retry policy.
    ///
    /// With a retry policy set, a shed request ([`ClientError::
    /// Overloaded`]) sleeps per the policy (capped exponential backoff,
    /// jittered, floored at the server's hint) and retries on the same
    /// connection — a shed answer is a complete response, so the stream
    /// stays synchronized. All other errors are returned immediately.
    ///
    /// # Errors
    ///
    /// As [`query`](Self::query); additionally the server declines when
    /// the function is beyond the selected engine's reach;
    /// [`ClientError::Overloaded`] when the server sheds the request
    /// (and every configured retry was also shed).
    pub fn query_opts(&mut self, f: Perm, opts: &QueryOptions) -> Result<Circuit, ClientError> {
        let attempts = opts.retry.as_ref().map_or(1, |p| p.attempts.max(1));
        let mut rng = opts.retry.as_ref().map(|p| SplitMix64::new(p.seed));
        for retry in 0..attempts {
            let response = self.round_trip(&Request::Query(f, opts.cost_model, opts.deadline_ms));
            match response? {
                Response::Circuit(circuit) => return Ok(circuit),
                Response::Error(msg) => return Err(ClientError::Server(msg)),
                Response::Overloaded { retry_after_ms } => match (&opts.retry, &mut rng) {
                    (Some(policy), Some(rng)) if retry + 1 < attempts => {
                        std::thread::sleep(policy.delay(retry, retry_after_ms, rng));
                    }
                    _ => return Err(ClientError::Overloaded { retry_after_ms }),
                },
                _ => return Err(ClientError::UnexpectedResponse),
            }
        }
        unreachable!("the last attempt always returns")
    }

    /// Synthesizes a cost-minimal circuit for `f` under the given cost
    /// model on the server.
    ///
    /// # Errors
    ///
    /// As [`query_opts`](Self::query_opts).
    #[deprecated(note = "use `query_opts(f, &QueryOptions::new().cost_model(kind))`")]
    pub fn query_with_cost(&mut self, f: Perm, kind: CostKind) -> Result<Circuit, ClientError> {
        self.query_opts(f, &QueryOptions::new().cost_model(kind))
    }

    /// [`query_opts`](Self::query_opts) with a cost model and an
    /// optional server-side deadline.
    ///
    /// # Errors
    ///
    /// As [`query_opts`](Self::query_opts).
    #[deprecated(
        note = "use `query_opts(f, &QueryOptions::new().cost_model(kind).deadline_ms(ms))`"
    )]
    pub fn query_with_deadline(
        &mut self,
        f: Perm,
        kind: CostKind,
        deadline_ms: Option<u32>,
    ) -> Result<Circuit, ClientError> {
        let opts = QueryOptions {
            cost_model: kind,
            deadline_ms,
            retry: None,
        };
        self.query_opts(f, &opts)
    }

    /// [`query_opts`](Self::query_opts) with a cost model and an
    /// overload-retry policy.
    ///
    /// # Errors
    ///
    /// As [`query_opts`](Self::query_opts); still
    /// [`ClientError::Overloaded`] if every attempt was shed.
    #[deprecated(note = "use `query_opts(f, &QueryOptions::new().cost_model(kind).retry(policy))`")]
    pub fn query_with_retry(
        &mut self,
        f: Perm,
        kind: CostKind,
        policy: &RetryPolicy,
    ) -> Result<Circuit, ClientError> {
        self.query_opts(
            f,
            &QueryOptions::new().cost_model(kind).retry(policy.clone()),
        )
    }

    /// One round trip with the error demultiplexing every non-query
    /// request shares: `Error` and `Overloaded` frames become their
    /// typed client errors (a connection shed at the accept gate
    /// answers *any* request with `Overloaded`, not just queries);
    /// anything else is handed to `expect` for request-specific
    /// matching.
    fn round_trip_demuxed<T>(
        &mut self,
        request: &Request,
        expect: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, ClientError> {
        match self.round_trip(request)? {
            Response::Error(msg) => Err(ClientError::Server(msg)),
            Response::Overloaded { retry_after_ms } => {
                Err(ClientError::Overloaded { retry_after_ms })
            }
            other => expect(other).ok_or(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches the server's stats snapshot.
    ///
    /// # Errors
    ///
    /// As [`query`](Self::query); additionally
    /// [`ClientError::Overloaded`] when the connection itself was shed.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        self.round_trip_demuxed(&Request::Stats, |r| match r {
            Response::Stats(stats) => Some(stats),
            _ => None,
        })
    }

    /// Fetches the server's health probe: uptime, snapshot-restore
    /// count, live worker count, and snapshot age.
    ///
    /// # Errors
    ///
    /// As [`stats`](Self::stats).
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        self.round_trip_demuxed(&Request::Health, |r| match r {
            Response::Health(report) => Some(report),
            _ => None,
        })
    }

    /// Fetches the server's metrics registry rendered in Prometheus
    /// text exposition format: every [`ServeStats`] field as a
    /// `revsynth_`-prefixed series, the per-stage latency histograms,
    /// engine profiling counters, snapshot timings and occupancy gauges.
    ///
    /// # Errors
    ///
    /// As [`stats`](Self::stats).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.round_trip_demuxed(&Request::Metrics, |r| match r {
            Response::Metrics(text) => Some(text),
            _ => None,
        })
    }

    /// Fetches the server's captured slow-query traces as a JSON array
    /// (oldest first; empty unless the server was started with a
    /// slow-query threshold).
    ///
    /// # Errors
    ///
    /// As [`stats`](Self::stats).
    pub fn slow_queries(&mut self) -> Result<String, ClientError> {
        self.round_trip_demuxed(&Request::SlowQueries, |r| match r {
            Response::SlowQueries(json) => Some(json),
            _ => None,
        })
    }

    /// Fetches the server's rolling ring of recent request traces
    /// (slow or not) as a JSON array, oldest first. Bounded by the
    /// frame cap: when the ring holds more than one frame can carry,
    /// the newest traces are returned.
    ///
    /// # Errors
    ///
    /// As [`stats`](Self::stats).
    pub fn traces(&mut self) -> Result<String, ClientError> {
        self.round_trip_demuxed(&Request::Traces, |r| match r {
            Response::Traces(json) => Some(json),
            _ => None,
        })
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// As [`stats`](Self::stats).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.round_trip_demuxed(&Request::Shutdown, |r| match r {
            Response::ShuttingDown => Some(()),
            _ => None,
        })
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.stream.peer_addr() {
            Ok(addr) => write!(f, "Client({addr})"),
            Err(_) => write!(f, "Client(disconnected)"),
        }
    }
}
