//! Blocking client for the synthesis service.
//!
//! One [`Client`] holds one TCP connection and issues requests
//! synchronously (the protocol is strictly request/response per
//! connection). Clients are cheap; open one per thread for concurrent
//! load.

use std::error::Error;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use revsynth_circuit::{Circuit, CostKind};
use revsynth_perm::Perm;

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, ProtocolError, Request, Response,
};
use crate::stats::ServeStats;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or framing failure.
    Protocol(ProtocolError),
    /// The server answered with an error response (unsynthesizable
    /// function, shutdown in progress, malformed request…).
    Server(String),
    /// The server answered with a response that does not match the
    /// request (e.g. stats for a query) — a protocol bug or a hostile
    /// server.
    UnexpectedResponse,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol failure: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::UnexpectedResponse => write!(f, "response does not match the request"),
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// A blocking connection to a synthesis server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Default per-request timeout: generous enough for a cold search
    /// on modest tables, finite so a dead server cannot hang a caller.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(60);

    /// Connects with the [default timeout](Self::DEFAULT_TIMEOUT).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Self::connect_with_timeout(addr, Self::DEFAULT_TIMEOUT)
    }

    /// Connects with an explicit per-request read/write timeout.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client { stream })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(request)).map_err(ProtocolError::Io)?;
        let payload = read_frame(&mut self.stream)?;
        Ok(decode_response(&payload)?)
    }

    /// Synthesizes a gate-count-optimal circuit for `f` on the server
    /// (shorthand for [`query_with_cost`](Self::query_with_cost) with
    /// [`CostKind::Gates`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the server declines the query,
    /// [`ClientError::Protocol`] on transport failure.
    pub fn query(&mut self, f: Perm) -> Result<Circuit, ClientError> {
        self.query_with_cost(f, CostKind::Gates)
    }

    /// Synthesizes a cost-minimal circuit for `f` under the given cost
    /// model on the server.
    ///
    /// # Errors
    ///
    /// As [`query`](Self::query); additionally the server declines when
    /// the function is beyond the selected engine's reach.
    pub fn query_with_cost(&mut self, f: Perm, kind: CostKind) -> Result<Circuit, ClientError> {
        match self.round_trip(&Request::Query(f, kind))? {
            Response::Circuit(circuit) => Ok(circuit),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches the server's stats snapshot.
    ///
    /// # Errors
    ///
    /// As [`query`](Self::query).
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// As [`query`](Self::query).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.stream.peer_addr() {
            Ok(addr) => write!(f, "Client({addr})"),
            Err(_) => write!(f, "Client(disconnected)"),
        }
    }
}
