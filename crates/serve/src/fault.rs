//! Deterministic fault injection for the serve stack.
//!
//! Overload behavior is only trustworthy if it can be *driven*: a burst
//! of cold-class queries against paper-scale tables means multi-second
//! searches, but a test cannot wait for real saturation — it injects it.
//! A [`FaultPlan`] sits at the scheduler↔synthesizer boundary and, per
//! scheduled search, adds a fixed latency and/or forces a failure,
//! following a deterministic schedule (a seeded counter, not wall-clock
//! or thread races), so a test can predict *exactly* how many searches
//! were delayed and how many were failed and reconcile the server's
//! shed/expiry counters against the plan.
//!
//! The connection layer gets its own attackers: [`TrickleStream`]
//! (writes leak out a few bytes at a time, slower than the server's
//! poll interval) and [`DropAfter`] (the stream dies mid-frame after a
//! byte budget), both seeded and deterministic. They wrap a client-side
//! `TcpStream` in tests and `loadgen --overload`, proving the server
//! survives torn frames and glacial writers without wedging its accept
//! loop.
//!
//! Everything here is plumbed through [`ServeConfig::faults`] /
//! [`SchedulerOptions::faults`]; a `None` plan costs one branch per
//! drained search.
//!
//! [`ServeConfig::faults`]: crate::ServeConfig
//! [`SchedulerOptions::faults`]: crate::SchedulerOptions

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What the plan injects into one scheduled search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchFault {
    /// Latency to add before the search runs.
    pub delay: Option<Duration>,
    /// Whether the search must fail without running (reported to the
    /// waiter as a synthesis error carrying [`INJECTED_FAILURE`]).
    pub fail: bool,
    /// Whether the worker must **panic** when it reaches this search —
    /// the supervision test: the panicking worker's drained batch is
    /// failed cleanly (no stranded waiters) and the worker is respawned.
    pub panic: bool,
}

/// The message substring marking a failure as plan-injected (tests and
/// the load generator match on it to separate injected failures from
/// genuine synthesis errors).
pub const INJECTED_FAILURE: &str = "injected synthesizer failure";

/// The panic payload an injected worker panic carries.
pub const INJECTED_PANIC: &str = "injected worker panic";

/// Counter snapshot of what a [`FaultPlan`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Searches that were delayed.
    pub delays: u64,
    /// Searches that were failed without running.
    pub failures: u64,
    /// Worker panics demanded.
    pub panics: u64,
    /// Snapshot writes that were slowed.
    pub snapshot_delays: u64,
}

/// A seeded, deterministic fault-injection plan for the scheduler's
/// search boundary.
///
/// Decisions are a pure function of the search sequence number: search
/// `s` (1-based, in scheduler-drain order) is failed iff `fail_every >
/// 0 && s % fail_every == 0`, and every search that is not failed is
/// delayed by `search_delay` when one is configured. With a
/// single-worker scheduler the drain order — and therefore the full
/// injection transcript — is deterministic, which is what lets tests
/// assert exact counter reconciliation.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    search_delay: Duration,
    fail_every: u64,
    panic_every: u64,
    snapshot_delay: Duration,
    sequence: AtomicU64,
    delays: AtomicU64,
    failures: AtomicU64,
    panics: AtomicU64,
    snapshot_delays: AtomicU64,
}

impl FaultPlan {
    /// An inert plan (injects nothing) carrying `seed` for the
    /// connection-layer helpers derived from it.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds `delay` of latency to every search the plan does not fail.
    #[must_use]
    pub fn with_search_delay(mut self, delay: Duration) -> Self {
        self.search_delay = delay;
        self
    }

    /// Fails every `n`-th scheduled search (1-based; `0` disables
    /// forced failures).
    #[must_use]
    pub fn with_fail_every(mut self, n: u64) -> Self {
        self.fail_every = n;
        self
    }

    /// Panics the worker at every `n`-th scheduled search (1-based; `0`
    /// disables injected panics). Panics take precedence over forced
    /// failures when both land on the same sequence number.
    #[must_use]
    pub fn with_panic_every(mut self, n: u64) -> Self {
        self.panic_every = n;
        self
    }

    /// Adds `delay` of latency inside every snapshot write, between
    /// staging the temp file and the atomic rename — widening the
    /// window a kill-mid-snapshot test aims at.
    #[must_use]
    pub fn with_snapshot_delay(mut self, delay: Duration) -> Self {
        self.snapshot_delay = delay;
        self
    }

    /// The plan's seed (handed to the connection-layer attackers so one
    /// flag seeds the whole chaos run).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws the fault for the next scheduled search and advances the
    /// injection counters. Called by the scheduler worker once per
    /// search it is about to run — never for expired or shed tickets,
    /// so the sequence numbers line up with searches actually reached.
    pub fn next_search(&self) -> SearchFault {
        let s = self.sequence.fetch_add(1, Ordering::Relaxed) + 1;
        if self.panic_every > 0 && s.is_multiple_of(self.panic_every) {
            self.panics.fetch_add(1, Ordering::Relaxed);
            return SearchFault {
                delay: None,
                fail: false,
                panic: true,
            };
        }
        if self.fail_every > 0 && s.is_multiple_of(self.fail_every) {
            self.failures.fetch_add(1, Ordering::Relaxed);
            return SearchFault {
                delay: None,
                fail: true,
                panic: false,
            };
        }
        if self.search_delay.is_zero() {
            return SearchFault {
                delay: None,
                fail: false,
                panic: false,
            };
        }
        self.delays.fetch_add(1, Ordering::Relaxed);
        SearchFault {
            delay: Some(self.search_delay),
            fail: false,
            panic: false,
        }
    }

    /// The latency to inject into the current snapshot write, if any.
    /// Called by the server's snapshot path once per write; counts every
    /// slowed write so chaos runs can reconcile.
    #[must_use]
    pub fn next_snapshot_delay(&self) -> Option<Duration> {
        if self.snapshot_delay.is_zero() {
            return None;
        }
        self.snapshot_delays.fetch_add(1, Ordering::Relaxed);
        Some(self.snapshot_delay)
    }

    /// What the plan has injected so far.
    #[must_use]
    pub fn injected(&self) -> FaultCounters {
        FaultCounters {
            delays: self.delays.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            snapshot_delays: self.snapshot_delays.load(Ordering::Relaxed),
        }
    }
}

/// A writer that leaks bytes out `chunk` at a time, pausing `pause`
/// between chunks — a deterministic model of a glacial client. Reads
/// pass through untouched.
#[derive(Debug)]
pub struct TrickleStream<S> {
    inner: S,
    chunk: usize,
    pause: Duration,
}

impl<S> TrickleStream<S> {
    /// Wraps `inner`, emitting at most `chunk` bytes per write with
    /// `pause` between them.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn new(inner: S, chunk: usize, pause: Duration) -> Self {
        assert!(chunk > 0, "trickle chunk must be positive");
        TrickleStream {
            inner,
            chunk,
            pause,
        }
    }
}

impl<S: Read> Read for TrickleStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl<S: Write> Write for TrickleStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let take = buf.len().min(self.chunk);
        let written = self.inner.write(&buf[..take])?;
        self.inner.flush()?;
        if !self.pause.is_zero() {
            std::thread::sleep(self.pause);
        }
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A stream that dies after writing `budget` bytes — every later write
/// fails with `BrokenPipe`, modelling a peer cut off mid-frame. Reads
/// pass through until the budget is spent, then report EOF.
#[derive(Debug)]
pub struct DropAfter<S> {
    inner: S,
    budget: usize,
}

impl<S> DropAfter<S> {
    /// Wraps `inner` with a write budget of `budget` bytes.
    pub fn new(inner: S, budget: usize) -> Self {
        DropAfter { inner, budget }
    }

    /// Whether the budget is spent (the stream is "dead").
    #[must_use]
    pub fn dropped(&self) -> bool {
        self.budget == 0
    }
}

impl<S: Read> Read for DropAfter<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return Ok(0);
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for DropAfter<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "fault injection: connection dropped mid-frame",
            ));
        }
        let take = buf.len().min(self.budget);
        let written = self.inner.write(&buf[..take])?;
        self.budget -= written;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_every_follows_the_counter_exactly() {
        let plan = FaultPlan::new(1)
            .with_fail_every(3)
            .with_search_delay(Duration::from_millis(1));
        let transcript: Vec<bool> = (0..9).map(|_| plan.next_search().fail).collect();
        assert_eq!(
            transcript,
            [false, false, true, false, false, true, false, false, true]
        );
        let injected = plan.injected();
        assert_eq!(injected.failures, 3);
        assert_eq!(injected.delays, 6, "failed searches are not delayed");
    }

    #[test]
    fn inert_plan_injects_nothing() {
        let plan = FaultPlan::new(7);
        for _ in 0..5 {
            assert_eq!(
                plan.next_search(),
                SearchFault {
                    delay: None,
                    fail: false,
                    panic: false,
                }
            );
        }
        assert_eq!(plan.injected(), FaultCounters::default());
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.next_snapshot_delay(), None);
    }

    #[test]
    fn panic_schedule_takes_precedence_and_counts() {
        let plan = FaultPlan::new(2).with_panic_every(2).with_fail_every(2);
        let transcript: Vec<(bool, bool)> = (0..6)
            .map(|_| {
                let f = plan.next_search();
                (f.panic, f.fail)
            })
            .collect();
        assert_eq!(
            transcript,
            [
                (false, false),
                (true, false),
                (false, false),
                (true, false),
                (false, false),
                (true, false)
            ],
            "panic wins when both schedules collide"
        );
        assert_eq!(plan.injected().panics, 3);
        assert_eq!(plan.injected().failures, 0);
    }

    #[test]
    fn snapshot_delay_is_drawn_per_write() {
        let plan = FaultPlan::new(3).with_snapshot_delay(Duration::from_millis(5));
        assert_eq!(plan.next_snapshot_delay(), Some(Duration::from_millis(5)));
        assert_eq!(plan.next_snapshot_delay(), Some(Duration::from_millis(5)));
        assert_eq!(plan.injected().snapshot_delays, 2);
    }

    #[test]
    fn trickle_writes_in_chunks() {
        let mut sink = Vec::new();
        {
            let mut t = TrickleStream::new(&mut sink, 3, Duration::ZERO);
            t.write_all(&[1, 2, 3, 4, 5, 6, 7]).unwrap();
        }
        assert_eq!(sink, [1, 2, 3, 4, 5, 6, 7], "all bytes arrive in order");
    }

    #[test]
    fn drop_after_enforces_the_budget() {
        let mut sink = Vec::new();
        {
            let mut d = DropAfter::new(&mut sink, 5);
            d.write_all(&[9; 5]).unwrap();
            assert!(d.dropped());
            let err = d.write(&[1]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        }
        assert_eq!(sink.len(), 5);
        let mut dead = DropAfter::new(&b"bytes"[..], 0);
        assert_eq!(dead.read(&mut [0; 4]).unwrap(), 0, "dead stream reads EOF");
    }

    #[test]
    fn drop_after_partial_write_cuts_mid_buffer() {
        let mut sink = Vec::new();
        {
            let mut d = DropAfter::new(&mut sink, 3);
            // write_all loops: 3 bytes land, then BrokenPipe.
            let err = d.write_all(&[8; 10]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        }
        assert_eq!(sink, [8, 8, 8]);
    }
}
