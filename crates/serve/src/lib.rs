//! The synthesis service layer: serve optimal-circuit queries at
//! traffic scale by paying for **one search per equivalence class**.
//!
//! The construction this whole repository reproduces (DAC 2010) hinges
//! on the ×48 class reduction: up to `2·n!` functions share a canonical
//! representative, and a minimal circuit for any of them is a wire
//! relabeling (plus possibly a gate-string reversal) of a minimal
//! circuit for the representative. PRs 1–2 made a *single* search fast;
//! this crate makes searches **rare**:
//!
//! * [`ClassCache`] — a sharded-LRU result cache keyed by canonical
//!   representative. Any member of a cached class is answered by
//!   *replaying* the stored circuit through the query's
//!   canonicalization witness ([`revsynth_canon::replay_for_witness`])
//!   — exact and cost-preserving, no search, no table probe.
//! * [`Scheduler`] — a request-coalescing batch scheduler. Concurrent
//!   cache misses for one class share a single search; queued misses
//!   for *different* classes are drained together into one
//!   [`Synthesizer::synthesize_many`] call, amortizing the
//!   meet-in-the-middle level scans across the batch.
//! * [`Server`] / [`Client`] — a std-only, length-prefixed binary
//!   protocol over `std::net` TCP ([`protocol`]), with a [`ServeStats`]
//!   snapshot endpoint (requests, coalesced, cache hits, searches,
//!   p50/p99 latency) and graceful shutdown. The server runs
//!   [`ServeConfig::cores`] pinned event loops (`SO_REUSEPORT`
//!   listeners + epoll where available, a portable scan loop
//!   elsewhere) over non-blocking connection state machines; cache
//!   misses park on scheduler tickets instead of blocking, and each
//!   core feeds its own miss lane with cross-core stealing only on
//!   imbalance.
//! * [`loadgen`] — a deterministic closed-loop load generator used by
//!   the CLI, CI smoke test and `bench_serve` harness.
//! * **Overload control** — the miss queue is bounded per cost model
//!   and saturation is shed with typed `Overloaded` frames (retry
//!   hint included) while cache hits keep being served; requests may
//!   carry deadlines that expire queued work *before* it is searched;
//!   a [`QueryOptions::retry`] policy backs off with jitter
//!   ([`RetryPolicy`]). The [`fault`] module injects deterministic
//!   latency, failures and torn connections so all of this is testable.
//! * **Warm restarts** — the cache persists across process deaths via
//!   the [`snapshot`] module: checksummed, atomically-written snapshots
//!   restored (and revalidated record by record) at boot, written
//!   periodically and at graceful shutdown. Scheduler workers are
//!   supervised — a panicking worker is respawned and its batch failed
//!   cleanly — and a `Health` probe ([`Client::health`],
//!   [`HealthReport`]) reports uptime, restore count, live workers and
//!   snapshot age.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use revsynth_core::{SuiteConfig, SynthesisSuite, Synthesizer};
//! use revsynth_serve::{Client, ServeConfig, Server};
//!
//! let suite = Arc::new(SynthesisSuite::new(
//!     Synthesizer::from_scratch(4, 2),
//!     SuiteConfig { quantum_budget: 6, depth_budget: 2 },
//! ));
//! let server = Server::bind(suite, ServeConfig::new())?;
//! let addr = server.local_addr();
//! let handle = server.spawn();
//!
//! let mut client = Client::connect(addr)?;
//! let rd32 = revsynth_perm::Perm::from_values(
//!     &[0, 7, 6, 9, 4, 11, 10, 13, 8, 15, 14, 1, 12, 3, 2, 5],
//! )?;
//! let circuit = client.query(rd32).unwrap();
//! assert_eq!(circuit.perm(4), rd32);
//! assert_eq!(circuit.len(), 4); // provably minimal
//!
//! // A second member of the same class is served from the cache.
//! let stats = client.stats().unwrap();
//! assert_eq!(stats.searches, 1);
//! client.shutdown_server().unwrap();
//! handle.join()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`Synthesizer::synthesize_many`]: revsynth_core::Synthesizer::synthesize_many

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod client;
pub mod fault;
pub mod loadgen;
pub mod protocol;
mod scheduler;
mod server;
pub mod snapshot;
mod stats;

pub use cache::{CacheCounters, ClassCache};
pub use client::{Client, ClientError, QueryOptions, RetryPolicy};
pub use fault::{FaultCounters, FaultPlan};
pub use scheduler::{
    Scheduler, SchedulerCounters, SchedulerMetrics, SchedulerOptions, ServeError, Submission,
    TicketHandle,
};
#[allow(deprecated)]
pub use server::ServerConfig;
pub use server::{RestoreSummary, ServeConfig, Server, ServerHandle};
pub use stats::{FieldKind, HealthReport, LatencyHistogram, ServeStats};
