//! Closed-loop load generator for the synthesis service.
//!
//! Spawns `clients` threads, each with its own connection. Queries are
//! drawn deterministically ([`revsynth_analysis::SplitMix64`], the
//! workspace's standard offline RNG) from a pool of random NCT gate
//! compositions and their **class members** — random wire relabelings
//! and inversions — so the run exercises exactly what the service is
//! built to amortize: many distinct functions, few distinct classes.
//!
//! The run has two phases:
//!
//! 1. **Rendezvous** — one round per pool class, all clients released
//!    by a barrier, each querying a *different member of the same
//!    class*. Every round lands several concurrent misses on one
//!    canonical representative while its search is in flight, driving
//!    the scheduler's coalescing path hard.
//! 2. **Mixed** — `requests_per_client` random pool queries per client,
//!    the steady-state cache-hit workload.
//!
//! Whether a rendezvous miss actually attaches to an in-flight search
//! is ultimately a scheduling race; if none did, the run repeats the
//! rendezvous phase on fresh classes up to twice more, so
//! [`LoadgenReport::coalesced`] (the delta over the server's counter at
//! run start) is a reliable CI signal — a broken coalescing path can
//! never produce it, while a healthy one practically always does
//! within the retries. Caveat: the signal needs searches slow enough to
//! leave a window at all; on the 4-wire domain a cold class costs
//! hundreds of microseconds to milliseconds and coalescing is
//! essentially certain, while tiny domains (n = 3 at small k, ~10 µs a
//! search) may legitimately never coalesce — don't gate on the counter
//! there.
//!
//! Every response circuit is verified to compute the queried
//! permutation before it counts as a success.

//! A third, separately invoked phase — [`run_overload`] — drives the
//! server into saturation on purpose (against a server configured with
//! a bounded queue and injected search latency) and checks the
//! graceful-degradation contract: cache hits keep being served, misses
//! are shed with typed `Overloaded` frames, deadlines expire queued
//! work before it is searched, and every server-side shed/expiry
//! counter reconciles exactly with what the clients observed.
//!
//! A fourth — [`run_restart`] — verifies warm restarts: because the
//! pool is deterministic in the seed, the working set a pre-crash
//! [`run`] warmed can be replayed verbatim against the restarted
//! server, and [`RestartReport::verify`] demands the whole set come
//! back exact with **zero** new searches when a snapshot was restored.

use std::net::SocketAddr;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use revsynth_analysis::{Rng, SplitMix64};
use revsynth_canon::Symmetries;
use revsynth_circuit::{Circuit, CostKind, GateLib};
use revsynth_perm::{Perm, WirePerm};

use crate::client::{Client, ClientError, QueryOptions, RetryPolicy};
use crate::fault::INJECTED_FAILURE;
use crate::scheduler::ServeError;
use crate::stats::{HealthReport, ServeStats};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Mixed-phase requests issued per client (each client additionally
    /// issues one rendezvous request per pool class).
    pub requests_per_client: usize,
    /// Distinct base functions in the query pool (distinct classes,
    /// up to canonical collisions).
    pub pool: usize,
    /// Maximum gate count of a pool function. Keep at or below the
    /// server's `2k` reach or beyond-reach errors will be counted.
    pub max_len: usize,
    /// RNG seed for pool construction and query order.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 4,
            requests_per_client: 100,
            pool: 8,
            max_len: 6,
            seed: 2010,
        }
    }
}

impl LoadgenConfig {
    /// Smoke-test scale: 3 clients × 20 requests over a 3-class pool —
    /// small enough for a 1-CPU CI runner, concurrent enough that the
    /// rendezvous rounds reliably coalesce same-class misses.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        LoadgenConfig {
            clients: 3,
            requests_per_client: 20,
            pool: 3,
            max_len: 5,
            seed,
        }
    }
}

/// Outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests that returned a verified circuit.
    pub successes: u64,
    /// Requests that returned an error (server- or transport-level),
    /// including responses whose circuit failed verification.
    pub errors: u64,
    /// Wall-clock seconds for the whole run.
    pub seconds: f64,
    /// Requests that coalesced onto an in-flight search **during this
    /// run** (delta over the server's counter at run start).
    pub coalesced: u64,
    /// Server stats snapshot taken after the run.
    pub stats: ServeStats,
}

impl LoadgenReport {
    /// Verified requests per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.seconds > 0.0 {
            self.successes as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Builds the query pool: `pool` base functions (random gate strings on
/// `n` wires), then for each a list of class members produced by random
/// relabelings/inversions. Deterministic in `seed`.
fn build_pool(n: usize, config: &LoadgenConfig, seed: u64) -> Vec<Vec<Perm>> {
    let lib = GateLib::nct(n);
    let gates: Vec<_> = lib.iter().map(|(_, g, _)| g).collect();
    let relabelings: Vec<WirePerm> = WirePerm::all()
        .into_iter()
        .filter(|w| w.fixes_wires_from(n))
        .collect();
    let mut rng = SplitMix64::new(seed);
    (0..config.pool)
        .map(|_| {
            // Base functions use the full max_len: longer compositions
            // mean deeper (slower) first searches, which is exactly what
            // holds the coalescing window open during rendezvous rounds.
            let base = Circuit::from_gates(
                (0..config.max_len).map(|_| gates[rng.next_u64() as usize % gates.len()]),
            )
            .perm(n);
            // A handful of members per base: enough variety that warm
            // queries are usually *different functions* of a cached
            // class.
            (0..8)
                .map(|_| {
                    let sigma = relabelings[rng.next_u64() as usize % relabelings.len()];
                    let member = base.conjugate_by_wires(sigma);
                    if rng.next_u64() & 1 == 0 {
                        member
                    } else {
                        member.inverse()
                    }
                })
                .collect()
        })
        .collect()
}

/// One pass of the two client phases over `pool`; `mixed` enables
/// phase 2. Returns summed `(successes, errors)`.
fn run_phases(
    addr: SocketAddr,
    wires: usize,
    config: &LoadgenConfig,
    pool: &[Vec<Perm>],
    mixed: bool,
) -> Result<(u64, u64), ClientError> {
    let barrier = Barrier::new(config.clients);
    let per_client: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let barrier = &barrier;
                scope.spawn(move || -> Result<(u64, u64), ClientError> {
                    let mut client = Client::connect(addr)?;
                    let mut rng =
                        SplitMix64::new(config.seed ^ (c as u64).wrapping_mul(0xA5A5_A5A5));
                    let mut successes = 0u64;
                    let mut errors = 0u64;
                    let mut check = |result: Result<Circuit, ClientError>, f: Perm| match result {
                        Ok(circuit) if circuit.perm(wires) == f => successes += 1,
                        Ok(_) | Err(_) => errors += 1,
                    };
                    // Phase 1: rendezvous rounds, one per pool class —
                    // all clients hit distinct members of the same
                    // cold class at once.
                    for (round, class) in pool.iter().enumerate() {
                        barrier.wait();
                        let f = class[(c + round) % class.len()];
                        check(client.query(f), f);
                    }
                    if mixed {
                        // Phase 2: mixed steady-state traffic.
                        barrier.wait();
                        for _ in 0..config.requests_per_client {
                            let class = &pool[rng.next_u64() as usize % pool.len()];
                            let f = class[rng.next_u64() as usize % class.len()];
                            check(client.query(f), f);
                        }
                    }
                    Ok((successes, errors))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client must not panic"))
            .collect::<Result<_, _>>()
    })?;
    Ok(per_client
        .iter()
        .fold((0, 0), |(s, e), &(cs, ce)| (s + cs, e + ce)))
}

/// Runs the load against a server and snapshots its stats afterwards.
///
/// `wires` must match the server's wire count (pool functions are built
/// on that domain; [`Client::stats`] reports it as
/// [`ServeStats::wires`]).
///
/// # Errors
///
/// Fails only on setup (connecting clients, fetching stats);
/// per-request failures are *counted* in the report instead.
pub fn run(
    addr: SocketAddr,
    wires: usize,
    config: &LoadgenConfig,
) -> Result<LoadgenReport, ClientError> {
    let baseline = Client::connect(addr)?.stats()?;
    let start = Instant::now();
    let pool = build_pool(wires, config, config.seed);
    let (mut successes, mut errors) = run_phases(addr, wires, config, &pool, true)?;
    let mut stats = Client::connect(addr)?.stats()?;
    // The rendezvous race can, in principle, resolve every miss before
    // a sibling arrives; re-roll on fresh classes a bounded number of
    // times so the coalescing signal is reliable without masking a
    // genuinely broken path (which would never coalesce).
    for retry in 1..=2u64 {
        if stats.coalesced > baseline.coalesced {
            break;
        }
        let fresh = build_pool(wires, config, config.seed.wrapping_add(retry));
        let (s, e) = run_phases(addr, wires, config, &fresh, false)?;
        successes += s;
        errors += e;
        stats = Client::connect(addr)?.stats()?;
    }
    let seconds = start.elapsed().as_secs_f64();
    Ok(LoadgenReport {
        successes,
        errors,
        seconds,
        coalesced: stats.coalesced - baseline.coalesced,
        stats,
    })
}

/// Parameters for the [`run_overload`] saturation phase.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Concurrent cold-burst client connections.
    pub clients: usize,
    /// Distinct cold classes queried per burst client (each exactly
    /// once, so server counters reconcile without coalescing terms).
    pub per_client: usize,
    /// Warm (guaranteed-cache-hit) queries issued concurrently with the
    /// burst; every one must succeed — that is the degradation
    /// contract.
    pub hit_requests: usize,
    /// Deadline attached to every burst query, milliseconds; `None`
    /// disables deadline testing (no expiries will occur).
    pub deadline_ms: Option<u32>,
    /// Maximum gate count of pool functions. Keep at or below the
    /// server's `2k` reach or genuine synthesis errors will fail the
    /// reconciliation.
    pub max_len: usize,
    /// RNG seed for pool construction.
    pub seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            clients: 3,
            per_client: 4,
            hit_requests: 20,
            deadline_ms: Some(50),
            max_len: 5,
            seed: 2010,
        }
    }
}

/// Outcome of an overload run, with server counter deltas over the
/// saturation window for exact reconciliation.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Warm queries answered (verified) while the burst was running.
    pub warm_hits: u64,
    /// Warm queries that failed — must be 0 for the run to verify.
    pub warm_failures: u64,
    /// Burst queries answered with a verified circuit.
    pub cold_successes: u64,
    /// Burst queries shed with an `Overloaded` frame.
    pub overloaded: u64,
    /// Burst queries expired server-side (deadline passed before the
    /// search started).
    pub expired: u64,
    /// Burst queries failed by the server's injected fault plan.
    pub injected_failures: u64,
    /// Any other burst outcome (unexpected errors, bad circuits) — must
    /// be 0 for the run to verify.
    pub other_errors: u64,
    /// Whether a post-burst retry-enabled [`Client::query_opts`] rode the
    /// backoff out of saturation to a verified answer.
    pub recovered: bool,
    /// Wall-clock seconds for the whole run.
    pub seconds: f64,
    /// Server counter deltas over the saturation window (baseline to
    /// the post-burst snapshot; the recovery phase is excluded because
    /// retry absorbs its own sheds).
    pub shed_delta: u64,
    /// Deadline expiries, same window.
    pub expired_delta: u64,
    /// Searches actually run, same window.
    pub searches_delta: u64,
    /// Misses coalesced onto in-flight searches, same window.
    pub coalesced_delta: u64,
    /// Cache misses, same window.
    pub misses_delta: u64,
    /// Final server stats snapshot (after recovery).
    pub stats: ServeStats,
}

impl OverloadReport {
    /// Checks the graceful-degradation contract, returning the first
    /// violation as a message. `expect_shed` additionally requires that
    /// saturation actually shed something (the CI gate: a chaos run
    /// that never sheds is not testing overload).
    ///
    /// The load-conservation identity is the "nothing silently dropped,
    /// nothing wastefully searched" check: every cache miss in the
    /// window is accounted for as exactly one of searched, coalesced,
    /// shed, expired, or plan-failed.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn verify(&self, expect_shed: bool) -> Result<(), String> {
        if self.warm_failures > 0 {
            return Err(format!(
                "{} of {} cache hits failed under saturation",
                self.warm_failures,
                self.warm_failures + self.warm_hits
            ));
        }
        if self.other_errors > 0 {
            return Err(format!(
                "{} burst queries failed outside the overload protocol",
                self.other_errors
            ));
        }
        if self.overloaded != self.shed_delta {
            return Err(format!(
                "clients saw {} Overloaded frames but the server shed {}",
                self.overloaded, self.shed_delta
            ));
        }
        if self.expired != self.expired_delta {
            return Err(format!(
                "clients saw {} expiries but the server expired {}",
                self.expired, self.expired_delta
            ));
        }
        let accounted = self.searches_delta
            + self.coalesced_delta
            + self.shed_delta
            + self.expired_delta
            + self.injected_failures;
        if self.misses_delta != accounted {
            return Err(format!(
                "load conservation violated: {} misses vs {} accounted \
                 ({} searched + {} coalesced + {} shed + {} expired + {} injected)",
                self.misses_delta,
                accounted,
                self.searches_delta,
                self.coalesced_delta,
                self.shed_delta,
                self.expired_delta,
                self.injected_failures
            ));
        }
        if !self.recovered {
            return Err("retrying query_opts never recovered after the burst".into());
        }
        if expect_shed && self.overloaded == 0 {
            return Err("overload run shed nothing — saturation was never reached".into());
        }
        Ok(())
    }
}

/// Per-burst-client outcome tally.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    successes: u64,
    overloaded: u64,
    expired: u64,
    injected: u64,
    other: u64,
}

/// Builds `need` functions in pairwise-distinct equivalence classes
/// (deduped by canonical representative), deterministic in `seed`.
/// Distinctness is what makes the reconciliation exact: each cold class
/// is queried once, so no burst miss can coalesce or re-hit the cache.
fn distinct_class_pool(n: usize, need: usize, max_len: usize, seed: u64) -> Vec<Perm> {
    let sym = Symmetries::new(n);
    let lib = GateLib::nct(n);
    let gates: Vec<_> = lib.iter().map(|(_, g, _)| g).collect();
    let mut rng = SplitMix64::new(seed);
    let mut seen = std::collections::BTreeSet::new();
    let mut pool = Vec::with_capacity(need);
    for _ in 0..need * 100 {
        if pool.len() == need {
            break;
        }
        let f =
            Circuit::from_gates((0..max_len).map(|_| gates[rng.next_u64() as usize % gates.len()]))
                .perm(n);
        if seen.insert(sym.canonical(f)) {
            pool.push(f);
        }
    }
    assert_eq!(
        pool.len(),
        need,
        "could not draw {need} distinct classes on {n} wires (seed {seed})"
    );
    pool
}

/// Drives the server into saturation and measures how it degrades.
///
/// The server must be configured for the run to mean anything: a
/// bounded miss queue (`--max-queue`) and injected search latency
/// (`--fault-search-delay-ms`) slow enough that the burst outruns the
/// queue, and **no** `--fault-fail-every` unless injected failures are
/// part of the reconciliation you want. Phases:
///
/// 1. warm one class into the cache (one search, must succeed);
/// 2. burst: `clients` threads each query their own `per_client`
///    distinct cold classes (with deadlines) while a concurrent thread
///    issues `hit_requests` warm queries — cache hits must all be
///    served even though the miss queue is saturated;
/// 3. snapshot and reconcile counters ([`OverloadReport::verify`]);
/// 4. recovery: one retrying [`Client::query_opts`] must back off through
///    the drain and succeed.
///
/// # Errors
///
/// Fails only on setup (connections, stats); per-request outcomes are
/// tallied in the report.
pub fn run_overload(
    addr: SocketAddr,
    wires: usize,
    config: &OverloadConfig,
) -> Result<OverloadReport, ClientError> {
    let expired_msg = ServeError::Expired.to_string();
    let baseline = Client::connect(addr)?.stats()?;
    let start = Instant::now();
    let need = 2 + config.clients * config.per_client;
    let pool = distinct_class_pool(wires, need, config.max_len, config.seed);
    let (warm, recovery, cold) = (pool[0], pool[1], &pool[2..]);

    // Phase 1: the warm class must be cached before saturation begins.
    {
        let mut client = Client::connect(addr)?;
        match client.query(warm) {
            Ok(circuit) if circuit.perm(wires) == warm => {}
            Ok(_) => return Err(ClientError::UnexpectedResponse),
            Err(e) => return Err(e),
        }
    }

    // Phase 2: saturation burst + concurrent warm traffic.
    let barrier = Barrier::new(config.clients + 1);
    let (tallies, warm_outcome) =
        std::thread::scope(|scope| -> Result<(Vec<Tally>, (u64, u64)), ClientError> {
            let burst: Vec<_> = (0..config.clients)
                .map(|c| {
                    let barrier = &barrier;
                    let slice = &cold[c * config.per_client..(c + 1) * config.per_client];
                    let expired_msg = expired_msg.as_str();
                    scope.spawn(move || -> Result<Tally, ClientError> {
                        let mut client = Client::connect(addr)?;
                        barrier.wait();
                        let mut tally = Tally::default();
                        let opts = QueryOptions {
                            cost_model: CostKind::Gates,
                            deadline_ms: config.deadline_ms,
                            retry: None,
                        };
                        for &f in slice {
                            match client.query_opts(f, &opts) {
                                Ok(circuit) if circuit.perm(wires) == f => tally.successes += 1,
                                Ok(_) => tally.other += 1,
                                Err(ClientError::Overloaded { .. }) => tally.overloaded += 1,
                                Err(ClientError::Server(msg)) if msg == expired_msg => {
                                    tally.expired += 1;
                                }
                                Err(ClientError::Server(msg)) if msg.contains(INJECTED_FAILURE) => {
                                    tally.injected += 1;
                                }
                                Err(_) => tally.other += 1,
                            }
                        }
                        Ok(tally)
                    })
                })
                .collect();
            let warm_thread = scope.spawn(|| -> Result<(u64, u64), ClientError> {
                let mut client = Client::connect(addr)?;
                barrier.wait();
                let (mut hits, mut failures) = (0u64, 0u64);
                for _ in 0..config.hit_requests {
                    match client.query(warm) {
                        Ok(circuit) if circuit.perm(wires) == warm => hits += 1,
                        _ => failures += 1,
                    }
                }
                Ok((hits, failures))
            });
            let tallies = burst
                .into_iter()
                .map(|h| h.join().expect("burst client must not panic"))
                .collect::<Result<Vec<_>, _>>()?;
            let warm_outcome = warm_thread.join().expect("warm client must not panic")?;
            Ok((tallies, warm_outcome))
        })?;
    let sum = |f: fn(&Tally) -> u64| tallies.iter().map(f).sum::<u64>();
    let (overloaded, expired, injected) = (
        sum(|t| t.overloaded),
        sum(|t| t.expired),
        sum(|t| t.injected),
    );

    // Phase 3: the reconciliation snapshot, before recovery retries can
    // shed (retry absorbs its sheds, which would skew the counts).
    let mid = Client::connect(addr)?.stats()?;

    // Phase 4: backoff must carry a client through the drain.
    let recovered = {
        let mut client = Client::connect(addr)?;
        let policy = RetryPolicy {
            attempts: 10,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: config.seed,
        };
        matches!(
            client.query_opts(recovery, &QueryOptions::new().retry(policy)),
            Ok(circuit) if circuit.perm(wires) == recovery
        )
    };

    let stats = Client::connect(addr)?.stats()?;
    Ok(OverloadReport {
        warm_hits: warm_outcome.0,
        warm_failures: warm_outcome.1,
        cold_successes: sum(|t| t.successes),
        overloaded,
        expired,
        injected_failures: injected,
        other_errors: sum(|t| t.other),
        recovered,
        seconds: start.elapsed().as_secs_f64(),
        shed_delta: mid.shed - baseline.shed,
        expired_delta: mid.expired - baseline.expired,
        searches_delta: mid.searches - baseline.searches,
        coalesced_delta: mid.coalesced - baseline.coalesced,
        misses_delta: mid.cache_misses - baseline.cache_misses,
        stats,
    })
}

/// Outcome of a [`run_restart`] warm-restart verification pass.
#[derive(Debug, Clone)]
pub struct RestartReport {
    /// Working-set queries answered with a verified circuit.
    pub successes: u64,
    /// Working-set queries that errored or verified wrong — must be 0.
    pub errors: u64,
    /// Searches the server ran during the pass: 0 on a warm restart
    /// means every class came out of the snapshot.
    pub searches_delta: u64,
    /// Cache entries the server restored from its boot snapshot.
    pub restored: u64,
    /// Snapshot records the server skipped at restore (corrupt/torn).
    pub snapshot_skipped: u64,
    /// Wall-clock seconds for the pass.
    pub seconds: f64,
    /// The server's health probe after the pass.
    pub health: HealthReport,
    /// Final server stats snapshot.
    pub stats: ServeStats,
}

impl RestartReport {
    /// Checks the warm-restart contract, returning the first violation
    /// as a message. With `expect_warm`, the server must have restored
    /// a snapshot and answered the entire working set **without a
    /// single new search** — the "zero cold work after a crash" gate.
    /// Without it (a deliberately cold boot, e.g. after quarantine),
    /// only correctness and liveness are required.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn verify(&self, expect_warm: bool) -> Result<(), String> {
        if self.errors > 0 {
            return Err(format!(
                "{} of {} working-set queries failed after restart",
                self.errors,
                self.errors + self.successes
            ));
        }
        if self.successes == 0 {
            return Err("restart pass issued no queries".into());
        }
        if self.health.live_workers == 0 {
            return Err("health probe reports no live workers".into());
        }
        if expect_warm {
            if self.restored == 0 {
                return Err("expected a warm restart but nothing was restored".into());
            }
            if self.searches_delta > 0 {
                return Err(format!(
                    "warm restart re-ran {} searches for snapshotted classes",
                    self.searches_delta
                ));
            }
        }
        Ok(())
    }
}

/// Replays the deterministic working set of [`run`] (same
/// [`LoadgenConfig::seed`] → same classes) against a restarted server
/// and measures how warm it came back: every member of every pool
/// class is queried and verified, and the server's search counter delta
/// over the pass tells whether the snapshot actually spared the
/// searches. Also probes `Health` for the restore count and worker
/// liveness.
///
/// # Errors
///
/// Fails only on setup (connections, stats, health); per-request
/// failures are counted in the report.
pub fn run_restart(
    addr: SocketAddr,
    wires: usize,
    config: &LoadgenConfig,
) -> Result<RestartReport, ClientError> {
    let baseline = Client::connect(addr)?.stats()?;
    let start = Instant::now();
    let pool = build_pool(wires, config, config.seed);
    let mut client = Client::connect(addr)?;
    let (mut successes, mut errors) = (0u64, 0u64);
    for class in &pool {
        for &f in class {
            match client.query(f) {
                Ok(circuit) if circuit.perm(wires) == f => successes += 1,
                Ok(_) | Err(_) => errors += 1,
            }
        }
    }
    let health = client.health()?;
    let stats = client.stats()?;
    Ok(RestartReport {
        successes,
        errors,
        searches_delta: stats.searches - baseline.searches,
        restored: stats.restored,
        snapshot_skipped: stats.snapshot_skipped,
        seconds: start.elapsed().as_secs_f64(),
        health,
        stats,
    })
}
