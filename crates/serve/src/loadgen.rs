//! Closed-loop load generator for the synthesis service.
//!
//! Spawns `clients` threads, each with its own connection. Queries are
//! drawn deterministically ([`revsynth_analysis::SplitMix64`], the
//! workspace's standard offline RNG) from a pool of random NCT gate
//! compositions and their **class members** — random wire relabelings
//! and inversions — so the run exercises exactly what the service is
//! built to amortize: many distinct functions, few distinct classes.
//!
//! The run has two phases:
//!
//! 1. **Rendezvous** — one round per pool class, all clients released
//!    by a barrier, each querying a *different member of the same
//!    class*. Every round lands several concurrent misses on one
//!    canonical representative while its search is in flight, driving
//!    the scheduler's coalescing path hard.
//! 2. **Mixed** — `requests_per_client` random pool queries per client,
//!    the steady-state cache-hit workload.
//!
//! Whether a rendezvous miss actually attaches to an in-flight search
//! is ultimately a scheduling race; if none did, the run repeats the
//! rendezvous phase on fresh classes up to twice more, so
//! [`LoadgenReport::coalesced`] (the delta over the server's counter at
//! run start) is a reliable CI signal — a broken coalescing path can
//! never produce it, while a healthy one practically always does
//! within the retries. Caveat: the signal needs searches slow enough to
//! leave a window at all; on the 4-wire domain a cold class costs
//! hundreds of microseconds to milliseconds and coalescing is
//! essentially certain, while tiny domains (n = 3 at small k, ~10 µs a
//! search) may legitimately never coalesce — don't gate on the counter
//! there.
//!
//! Every response circuit is verified to compute the queried
//! permutation before it counts as a success.

use std::net::SocketAddr;
use std::sync::Barrier;
use std::time::Instant;

use revsynth_analysis::{Rng, SplitMix64};
use revsynth_circuit::{Circuit, GateLib};
use revsynth_perm::{Perm, WirePerm};

use crate::client::{Client, ClientError};
use crate::stats::ServeStats;

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Mixed-phase requests issued per client (each client additionally
    /// issues one rendezvous request per pool class).
    pub requests_per_client: usize,
    /// Distinct base functions in the query pool (distinct classes,
    /// up to canonical collisions).
    pub pool: usize,
    /// Maximum gate count of a pool function. Keep at or below the
    /// server's `2k` reach or beyond-reach errors will be counted.
    pub max_len: usize,
    /// RNG seed for pool construction and query order.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 4,
            requests_per_client: 100,
            pool: 8,
            max_len: 6,
            seed: 2010,
        }
    }
}

impl LoadgenConfig {
    /// Smoke-test scale: 3 clients × 20 requests over a 3-class pool —
    /// small enough for a 1-CPU CI runner, concurrent enough that the
    /// rendezvous rounds reliably coalesce same-class misses.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        LoadgenConfig {
            clients: 3,
            requests_per_client: 20,
            pool: 3,
            max_len: 5,
            seed,
        }
    }
}

/// Outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests that returned a verified circuit.
    pub successes: u64,
    /// Requests that returned an error (server- or transport-level),
    /// including responses whose circuit failed verification.
    pub errors: u64,
    /// Wall-clock seconds for the whole run.
    pub seconds: f64,
    /// Requests that coalesced onto an in-flight search **during this
    /// run** (delta over the server's counter at run start).
    pub coalesced: u64,
    /// Server stats snapshot taken after the run.
    pub stats: ServeStats,
}

impl LoadgenReport {
    /// Verified requests per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.seconds > 0.0 {
            self.successes as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Builds the query pool: `pool` base functions (random gate strings on
/// `n` wires), then for each a list of class members produced by random
/// relabelings/inversions. Deterministic in `seed`.
fn build_pool(n: usize, config: &LoadgenConfig, seed: u64) -> Vec<Vec<Perm>> {
    let lib = GateLib::nct(n);
    let gates: Vec<_> = lib.iter().map(|(_, g, _)| g).collect();
    let relabelings: Vec<WirePerm> = WirePerm::all()
        .into_iter()
        .filter(|w| w.fixes_wires_from(n))
        .collect();
    let mut rng = SplitMix64::new(seed);
    (0..config.pool)
        .map(|_| {
            // Base functions use the full max_len: longer compositions
            // mean deeper (slower) first searches, which is exactly what
            // holds the coalescing window open during rendezvous rounds.
            let base = Circuit::from_gates(
                (0..config.max_len).map(|_| gates[rng.next_u64() as usize % gates.len()]),
            )
            .perm(n);
            // A handful of members per base: enough variety that warm
            // queries are usually *different functions* of a cached
            // class.
            (0..8)
                .map(|_| {
                    let sigma = relabelings[rng.next_u64() as usize % relabelings.len()];
                    let member = base.conjugate_by_wires(sigma);
                    if rng.next_u64() & 1 == 0 {
                        member
                    } else {
                        member.inverse()
                    }
                })
                .collect()
        })
        .collect()
}

/// One pass of the two client phases over `pool`; `mixed` enables
/// phase 2. Returns summed `(successes, errors)`.
fn run_phases(
    addr: SocketAddr,
    wires: usize,
    config: &LoadgenConfig,
    pool: &[Vec<Perm>],
    mixed: bool,
) -> Result<(u64, u64), ClientError> {
    let barrier = Barrier::new(config.clients);
    let per_client: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let barrier = &barrier;
                scope.spawn(move || -> Result<(u64, u64), ClientError> {
                    let mut client = Client::connect(addr)?;
                    let mut rng =
                        SplitMix64::new(config.seed ^ (c as u64).wrapping_mul(0xA5A5_A5A5));
                    let mut successes = 0u64;
                    let mut errors = 0u64;
                    let mut check = |result: Result<Circuit, ClientError>, f: Perm| match result {
                        Ok(circuit) if circuit.perm(wires) == f => successes += 1,
                        Ok(_) | Err(_) => errors += 1,
                    };
                    // Phase 1: rendezvous rounds, one per pool class —
                    // all clients hit distinct members of the same
                    // cold class at once.
                    for (round, class) in pool.iter().enumerate() {
                        barrier.wait();
                        let f = class[(c + round) % class.len()];
                        check(client.query(f), f);
                    }
                    if mixed {
                        // Phase 2: mixed steady-state traffic.
                        barrier.wait();
                        for _ in 0..config.requests_per_client {
                            let class = &pool[rng.next_u64() as usize % pool.len()];
                            let f = class[rng.next_u64() as usize % class.len()];
                            check(client.query(f), f);
                        }
                    }
                    Ok((successes, errors))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client must not panic"))
            .collect::<Result<_, _>>()
    })?;
    Ok(per_client
        .iter()
        .fold((0, 0), |(s, e), &(cs, ce)| (s + cs, e + ce)))
}

/// Runs the load against a server and snapshots its stats afterwards.
///
/// `wires` must match the server's wire count (pool functions are built
/// on that domain; [`Client::stats`] reports it as
/// [`ServeStats::wires`]).
///
/// # Errors
///
/// Fails only on setup (connecting clients, fetching stats);
/// per-request failures are *counted* in the report instead.
pub fn run(
    addr: SocketAddr,
    wires: usize,
    config: &LoadgenConfig,
) -> Result<LoadgenReport, ClientError> {
    let baseline = Client::connect(addr)?.stats()?;
    let start = Instant::now();
    let pool = build_pool(wires, config, config.seed);
    let (mut successes, mut errors) = run_phases(addr, wires, config, &pool, true)?;
    let mut stats = Client::connect(addr)?.stats()?;
    // The rendezvous race can, in principle, resolve every miss before
    // a sibling arrives; re-roll on fresh classes a bounded number of
    // times so the coalescing signal is reliable without masking a
    // genuinely broken path (which would never coalesce).
    for retry in 1..=2u64 {
        if stats.coalesced > baseline.coalesced {
            break;
        }
        let fresh = build_pool(wires, config, config.seed.wrapping_add(retry));
        let (s, e) = run_phases(addr, wires, config, &fresh, false)?;
        successes += s;
        errors += e;
        stats = Client::connect(addr)?.stats()?;
    }
    let seconds = start.elapsed().as_secs_f64();
    Ok(LoadgenReport {
        successes,
        errors,
        seconds,
        coalesced: stats.coalesced - baseline.coalesced,
        stats,
    })
}
