//! The class-keyed result cache: one cached circuit answers up to
//! `2·n!` functions.
//!
//! Keys are `(cost model, canonical representative)` pairs
//! ([`CostKind`], [`Symmetries::canonicalize`]); values are optimal —
//! *under that model* — circuits for the representative. A query is
//! served by looking up its class's representative under the requested
//! model and replaying the cached circuit through the query's
//! canonicalization witness ([`revsynth_canon::replay_for_witness`]) —
//! wire relabeling plus gate reversal, both exact and cost-preserving
//! **for every model** (gate count, quantum cost and depth are all
//! class functions; property-tested in `revsynth-canon`) — so a single
//! search amortizes across the entire equivalence class, the reduction
//! the paper's §3.2 builds the whole table scheme on. The same function
//! queried under two models occupies two distinct entries: a gate-count
//! optimum is generally *not* a quantum-cost optimum.
//!
//! The cache is sharded (power-of-two shard count, shard chosen by a
//! Wang hash of the packed representative) so concurrent connection
//! handlers contend on `1/shards` of the keyspace, and each shard runs
//! an exact LRU: a slab of entries threaded onto an intrusive
//! doubly-linked recency list, O(1) for hit, insert and evict. Hit,
//! miss, insertion and eviction counters are kept per shard and summed
//! on snapshot.
//!
//! [`Symmetries::canonicalize`]: revsynth_canon::Symmetries::canonicalize

use std::collections::HashMap;
use std::sync::Mutex;

use revsynth_circuit::{Circuit, CostKind};
use revsynth_perm::{hash64shift, Perm};

/// The composite cache key: cost-model discriminant + packed canonical
/// representative.
type Key = (u8, u64);

fn key_of(kind: CostKind, rep: Perm) -> Key {
    (kind.code(), rep.packed())
}

/// Index value marking "no entry" in the intrusive list.
const NIL: usize = usize::MAX;

/// Aggregated cache counters (summed over shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found the class cached.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to make room (LRU within the key's shard).
    pub evictions: u64,
    /// Current resident entries.
    pub len: u64,
    /// Total configured capacity (entries, summed over shards).
    pub capacity: u64,
}

/// One cached class: the representative's circuit in a slab slot,
/// threaded onto the shard's recency list.
struct Entry {
    key: Key,
    circuit: Circuit,
    prev: usize,
    next: usize,
}

/// One shard: an exact LRU over a slab + hash map.
struct Shard {
    /// (model, packed representative) → slab index.
    map: HashMap<Key, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    /// Most recently used entry, or [`NIL`] when empty.
    head: usize,
    /// Least recently used entry (the eviction victim), or [`NIL`].
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Unlinks `i` from the recency list (leaves its prev/next stale).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    /// Links `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: Key, counted: bool) -> Option<Circuit> {
        match self.map.get(&key).copied() {
            Some(i) => {
                if counted {
                    self.hits += 1;
                }
                if self.head != i {
                    self.unlink(i);
                    self.link_front(i);
                }
                Some(self.slab[i].circuit.clone())
            }
            None => {
                if counted {
                    self.misses += 1;
                }
                None
            }
        }
    }

    fn insert(&mut self, key: Key, circuit: Circuit) {
        if let Some(&i) = self.map.get(&key) {
            // Concurrent searches of the same class can both insert; the
            // circuits are equally minimal, keep the resident one fresh.
            self.slab[i].circuit = circuit;
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity ≥ 1 and the shard is full");
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
            self.evictions += 1;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Entry {
                    key,
                    circuit,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slab.push(Entry {
                    key,
                    circuit,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, i);
        self.link_front(i);
        self.insertions += 1;
    }
}

/// The sharded, class-keyed LRU circuit cache. `Sync`: every method
/// takes `&self`.
pub struct ClassCache {
    shards: Box<[Mutex<Shard>]>,
    shard_mask: u64,
}

impl ClassCache {
    /// Default shard count: enough to keep a handful of connection
    /// handler threads from serializing, small enough that per-shard
    /// capacity stays meaningful at tiny total capacities.
    const DEFAULT_SHARDS: usize = 8;

    /// A cache holding at most (approximately) `capacity` class
    /// circuits, split over the default shard count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, Self::DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (rounded up to a power of
    /// two). Total capacity is split evenly; every shard holds at least
    /// one entry, so the effective total is `max(capacity, shards)`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `shards == 0`.
    #[must_use]
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(shards > 0, "shard count must be positive");
        let shards = shards.next_power_of_two();
        let per_shard = capacity.div_ceil(shards).max(1);
        ClassCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            shard_mask: (shards - 1) as u64,
        }
    }

    fn shard_for(&self, key: Key) -> &Mutex<Shard> {
        // hash64shift is also the FnTable slot hash; taking the TOP bits
        // for the shard keeps the two partitions independent. The model
        // discriminant is spread into the high key bits so the same
        // class under two models can land on different shards.
        let h = hash64shift(key.1 ^ (u64::from(key.0) << 60));
        &self.shards[(h >> 32 & self.shard_mask) as usize]
    }

    /// Locks a shard, recovering from a poisoned mutex: a cache shard's
    /// invariants are re-established on every operation, and the server
    /// must keep answering even if some handler thread panicked.
    fn lock(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
        shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The cached circuit for class representative `rep` under cost
    /// model `kind`, refreshing its recency. Counts a hit or a miss.
    #[must_use]
    pub fn get(&self, kind: CostKind, rep: Perm) -> Option<Circuit> {
        let key = key_of(kind, rep);
        Self::lock(self.shard_for(key)).get(key, true)
    }

    /// Like [`get`](Self::get) (recency is refreshed) but without
    /// touching the hit/miss counters. For re-checks of a lookup that
    /// was already counted — the scheduler's post-miss double-check —
    /// so one query never counts twice.
    #[must_use]
    pub fn get_quiet(&self, kind: CostKind, rep: Perm) -> Option<Circuit> {
        let key = key_of(kind, rep);
        Self::lock(self.shard_for(key)).get(key, false)
    }

    /// Caches `circuit` (which must compute `rep`, `kind`-optimally)
    /// under `(kind, rep)`, evicting the shard's least-recently-used
    /// entry when full. Re-inserting an existing key replaces the value
    /// without eviction.
    pub fn insert(&self, kind: CostKind, rep: Perm, circuit: Circuit) {
        let key = key_of(kind, rep);
        Self::lock(self.shard_for(key)).insert(key, circuit);
    }

    /// Resident entry count (summed over shards).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).map.len()).sum()
    }

    /// Whether no classes are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident entry count per shard, in shard order. Exposes the
    /// sharding balance for occupancy gauges; like [`export`], shards
    /// are read one at a time, not as a global atomic snapshot.
    ///
    /// [`export`]: Self::export
    #[must_use]
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| Self::lock(s).map.len())
            .collect()
    }

    /// Exports every resident entry for snapshotting, least-recently
    /// used first **within each shard** — re-[`insert`](Self::insert)ing
    /// the export in order reproduces each shard's recency order, so a
    /// restored cache evicts the same victims the original would have.
    ///
    /// Shards are locked one at a time: the export is a consistent
    /// per-shard view, not a global atomic snapshot (concurrent inserts
    /// during the walk may or may not be included — either way the
    /// snapshot is a valid cache state).
    #[must_use]
    pub fn export(&self) -> Vec<(CostKind, Perm, Circuit)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let s = Self::lock(shard);
            // Walk tail → head (LRU → MRU) over the intrusive list.
            let mut i = s.tail;
            while i != NIL {
                let entry = &s.slab[i];
                // Keys are only ever built by `key_of` from valid
                // kinds/perms; a decode failure here would be memory
                // corruption, so skip rather than panic.
                if let (Some(kind), Ok(rep)) = (
                    CostKind::from_code(entry.key.0),
                    Perm::from_packed(entry.key.1),
                ) {
                    out.push((kind, rep, entry.circuit.clone()));
                }
                i = entry.prev;
            }
        }
        out
    }

    /// Aggregated counters across all shards.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        let mut total = CacheCounters::default();
        for shard in self.shards.iter() {
            let s = Self::lock(shard);
            total.hits += s.hits;
            total.misses += s.misses;
            total.insertions += s.insertions;
            total.evictions += s.evictions;
            total.len += s.map.len() as u64;
            total.capacity += s.capacity as u64;
        }
        total
    }
}

impl std::fmt::Debug for ClassCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counters();
        write!(
            f,
            "ClassCache({} shards, {}/{} entries, {} hits / {} misses, {} evictions)",
            self.shards.len(),
            c.len,
            c.capacity,
            c.hits,
            c.misses,
            c.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revsynth_circuit::CostKind;
    use revsynth_circuit::Gate;

    fn circuit_of(len: usize) -> Circuit {
        Circuit::from_gates((0..len).map(|_| Gate::not(0).unwrap()))
    }

    /// Bijective Lehmer-code unranking: distinct `i < 16!` give distinct
    /// permutations, so counter assertions never trip on collisions.
    fn perm_of(i: u64) -> Perm {
        let mut vals: Vec<u8> = (0..16).collect();
        let mut rem = i;
        for j in (1..16usize).rev() {
            let idx = (rem % (j as u64 + 1)) as usize;
            rem /= j as u64 + 1;
            vals.swap(j, idx);
        }
        Perm::from_values(&vals).unwrap()
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = ClassCache::new(64);
        let p = perm_of(1);
        assert!(cache.get(CostKind::Gates, p).is_none());
        cache.insert(CostKind::Gates, p, circuit_of(3));
        assert_eq!(cache.get(CostKind::Gates, p).unwrap().len(), 3);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions, c.len), (1, 1, 1, 1));
        assert!(c.capacity >= 64);
        assert!(!cache.is_empty());
    }

    #[test]
    fn single_shard_evicts_exact_lru_order() {
        let cache = ClassCache::with_shards(3, 1);
        let ps: Vec<Perm> = (0..4).map(perm_of).collect();
        cache.insert(CostKind::Gates, ps[0], circuit_of(0));
        cache.insert(CostKind::Gates, ps[1], circuit_of(1));
        cache.insert(CostKind::Gates, ps[2], circuit_of(2));
        // Touch p0 so p1 becomes the LRU victim.
        assert!(cache.get(CostKind::Gates, ps[0]).is_some());
        cache.insert(CostKind::Gates, ps[3], circuit_of(3));
        assert!(
            cache.get(CostKind::Gates, ps[1]).is_none(),
            "LRU victim evicted"
        );
        assert!(cache.get(CostKind::Gates, ps[0]).is_some());
        assert!(cache.get(CostKind::Gates, ps[2]).is_some());
        assert!(cache.get(CostKind::Gates, ps[3]).is_some());
        assert_eq!(cache.counters().evictions, 1);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn eviction_slots_are_reused() {
        let cache = ClassCache::with_shards(2, 1);
        for i in 0..50 {
            cache.insert(CostKind::Gates, perm_of(i), circuit_of((i % 7) as usize));
        }
        let c = cache.counters();
        assert_eq!(c.len, 2);
        assert_eq!(c.insertions, 50);
        assert_eq!(c.evictions, 48);
        // The slab never grew past capacity + nothing leaked: the two
        // most recent survive.
        assert!(cache.get(CostKind::Gates, perm_of(49)).is_some());
        assert!(cache.get(CostKind::Gates, perm_of(48)).is_some());
        assert!(cache.get(CostKind::Gates, perm_of(0)).is_none());
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let cache = ClassCache::with_shards(2, 1);
        let p = perm_of(9);
        cache.insert(CostKind::Gates, p, circuit_of(1));
        cache.insert(CostKind::Gates, p, circuit_of(5));
        assert_eq!(cache.get(CostKind::Gates, p).unwrap().len(), 5);
        assert_eq!(cache.counters().evictions, 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let cache = ClassCache::with_shards(1024, 8);
        for i in 0..200 {
            cache.insert(CostKind::Gates, perm_of(i), circuit_of(1));
        }
        assert_eq!(cache.len(), 200, "no cross-shard collisions lose entries");
        for i in 0..200 {
            assert!(cache.get(CostKind::Gates, perm_of(i)).is_some(), "perm {i}");
        }
        // More than one shard must actually be populated.
        let populated = cache
            .shards
            .iter()
            .filter(|s| !ClassCache::lock(s).map.is_empty())
            .count();
        assert!(populated > 1, "hash must spread over shards");
        // The per-shard view agrees with the aggregate.
        let lens = cache.shard_lens();
        assert_eq!(lens.len(), 8);
        assert_eq!(lens.iter().sum::<usize>(), 200);
        assert!(lens.iter().filter(|&&l| l > 0).count() > 1);
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        // Capacity above the total insert count: no evictions, so every
        // get-after-insert must hit regardless of thread interleaving.
        let cache = std::sync::Arc::new(ClassCache::new(1024));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = cache.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        let p = perm_of(t * 100 + i);
                        cache.insert(CostKind::Gates, p, circuit_of(1));
                        assert!(cache.get(CostKind::Gates, p).is_some());
                    }
                });
            }
        });
        let c = cache.counters();
        assert_eq!(c.hits, 400);
        assert_eq!(c.insertions, 400);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = ClassCache::new(0);
    }

    #[test]
    fn export_walks_lru_to_mru_and_reinsertion_reproduces_recency() {
        let cache = ClassCache::with_shards(3, 1);
        let ps: Vec<Perm> = (0..3).map(perm_of).collect();
        for (i, &p) in ps.iter().enumerate() {
            cache.insert(CostKind::Gates, p, circuit_of(i));
        }
        // Touch p0: recency becomes p1 (LRU), p2, p0 (MRU).
        assert!(cache.get(CostKind::Gates, ps[0]).is_some());
        let exported = cache.export();
        assert_eq!(
            exported.iter().map(|(_, p, _)| *p).collect::<Vec<_>>(),
            vec![ps[1], ps[2], ps[0]],
            "tail-to-head walk"
        );
        // Re-inserting the export into a fresh cache reproduces the
        // original's eviction victim.
        let restored = ClassCache::with_shards(3, 1);
        for (kind, rep, circuit) in exported {
            restored.insert(kind, rep, circuit);
        }
        restored.insert(CostKind::Gates, perm_of(7), circuit_of(9));
        assert!(
            restored.get(CostKind::Gates, ps[1]).is_none(),
            "same LRU victim"
        );
        assert!(restored.get(CostKind::Gates, ps[0]).is_some());
        assert!(restored.get(CostKind::Gates, ps[2]).is_some());
    }

    #[test]
    fn export_covers_every_shard_and_model() {
        let cache = ClassCache::new(1024);
        for i in 0..60 {
            let kind = CostKind::ALL[(i % 3) as usize];
            cache.insert(kind, perm_of(i), circuit_of(2));
        }
        let exported = cache.export();
        assert_eq!(exported.len(), 60);
        for kind in CostKind::ALL {
            assert!(exported.iter().any(|(k, _, _)| *k == kind), "{kind:?}");
        }
    }
}
