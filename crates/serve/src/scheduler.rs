//! The request-coalescing batch scheduler.
//!
//! Cache misses do not call the synthesizer directly. They enter here,
//! where two amortizations happen before any search runs:
//!
//! 1. **Coalescing**: concurrent misses for the *same canonical
//!    representative* share one ticket — the first miss enqueues the
//!    rep, later ones attach and wait. N clients asking for N functions
//!    of one equivalence class trigger exactly one search.
//! 2. **Batching**: a worker thread drains *every* queued rep in one go
//!    and answers the whole batch with a single
//!    [`Synthesizer::synthesize_many`] call, which scans the
//!    meet-in-the-middle level lists once for all of them — the access
//!    pattern the batched engine was built for (the level lists, not the
//!    queries, are the multi-gigabyte working set at paper scale).
//!
//! Completed circuits are inserted into the [`ClassCache`] *before* the
//! ticket is resolved and removed from the in-flight map, so a request
//! arriving at any point either hits the cache or finds the in-flight
//! ticket — no ordering window re-runs a finished search.
//!
//! **Overload control** (the robustness substrate under the planet-scale
//! rewrite): the miss queue is bounded per cost model
//! ([`SchedulerOptions::max_queue`]). A miss for a class already in
//! flight *always* attaches to its ticket — coalescing costs no queue
//! slot — but a miss that would enqueue new work when that model's queue
//! is full is rejected at admission with [`ServeError::Overloaded`]
//! (carrying a retry hint), before any state is allocated. Requests may
//! carry a deadline; a queued ticket whose deadline has already passed
//! when a worker drains it is expired with [`ServeError::Expired`] —
//! the search is never started, so saturation sheds *future* work
//! instead of finishing work nobody is waiting for. Sheds and expiries
//! are counted per cost model in [`SchedulerCounters`].
//!
//! An optional [`FaultPlan`] injects per-search latency and forced
//! failures at this boundary, deterministically, so tests can drive the
//! scheduler into saturation and reconcile every counter.
//!
//! **Supervision**: worker threads run under a supervisor that catches
//! panics. A panicking worker first answers every entry of the batch it
//! had drained with [`ServeError::Synthesis`] (a drop guard does this
//! during unwinding, so no coalesced waiter ever blocks forever), then
//! re-enters its loop — the pool self-heals at full strength, counted
//! in [`SchedulerCounters::worker_restarts`]. [`FaultPlan::with_panic_every`]
//! drives this path deterministically in chaos tests.
//!
//! Shutdown is graceful: workers finish the batch they are searching,
//! still-queued representatives are answered with
//! [`ServeError::ShuttingDown`], and `shutdown` joins every worker.
//!
//! [`Synthesizer::synthesize_many`]: revsynth_core::Synthesizer::synthesize_many
//! [`FaultPlan::with_panic_every`]: crate::fault::FaultPlan::with_panic_every

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use revsynth_circuit::{Circuit, CostKind};
use revsynth_core::{SearchOptions, SynthesisSuite};
use revsynth_obs::{Counter, Histogram, Stage, Trace};
use revsynth_perm::Perm;

use crate::cache::ClassCache;
use crate::fault::{FaultPlan, INJECTED_FAILURE, INJECTED_PANIC};

/// Number of cost models (the per-model accounting arrays are indexed
/// by [`CostKind::code`]).
const MODELS: usize = CostKind::ALL.len();

/// Message carried by the [`ServeError::Synthesis`] a waiter receives
/// when the worker searching its batch panicked: the search is
/// abandoned, never half-answered, and the client may simply retry
/// (the supervisor has already respawned the worker).
pub const WORKER_PANIC: &str = "worker panicked; search abandoned";

/// Request-level failure reported to a waiting client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The synthesizer could not answer (size beyond the tables' reach,
    /// domain mismatch); carries the rendered [`SynthesisError`].
    ///
    /// [`SynthesisError`]: revsynth_core::SynthesisError
    Synthesis(String),
    /// The server is shutting down; the search was not performed.
    ShuttingDown,
    /// The miss queue for this cost model is full; the request was shed
    /// at admission (no search was queued). Retry after the hint, with
    /// backoff.
    Overloaded {
        /// Suggested wait before retrying, milliseconds.
        retry_after_ms: u32,
    },
    /// The request's deadline passed before a worker reached its
    /// ticket; the search was never started.
    Expired,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Synthesis(msg) => write!(f, "{msg}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms} ms")
            }
            ServeError::Expired => {
                write!(f, "deadline expired before the search started")
            }
        }
    }
}

impl Error for ServeError {}

/// One in-flight class search: the result slot every coalesced waiter
/// blocks on.
struct Ticket {
    result: Mutex<Option<Result<Circuit, ServeError>>>,
    ready: Condvar,
    /// Wall-clock µs the worker spent inside the batched engine call
    /// that answered this ticket (the whole per-model batch duration —
    /// the engine scans its level lists once for the batch, so the scan
    /// is not attributable per entry). Zero for never-searched outcomes
    /// (shed, expired, shutdown, plan-failed, worker panic). Written
    /// before [`fulfill`](Self::fulfill), so a woken waiter reads it
    /// race-free.
    search_us: AtomicU64,
}

impl Ticket {
    fn new() -> Self {
        Ticket {
            result: Mutex::new(None),
            ready: Condvar::new(),
            search_us: AtomicU64::new(0),
        }
    }

    fn fulfill(&self, result: Result<Circuit, ServeError>) {
        *lock(&self.result) = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Circuit, ServeError> {
        let mut slot = lock(&self.result);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A non-blocking handle to an in-flight (or just-resolved) class
/// search, returned by [`Scheduler::submit`]. An event loop polls
/// [`try_result`](Self::try_result) on its readiness ticks instead of
/// parking a thread per request.
pub struct TicketHandle {
    ticket: Arc<Ticket>,
}

impl TicketHandle {
    /// The result, if the search has resolved; `None` while it is still
    /// queued or mid-batch. Never blocks beyond the result-slot mutex.
    #[must_use]
    pub fn try_result(&self) -> Option<Result<Circuit, ServeError>> {
        lock(&self.ticket.result).clone()
    }

    /// Wall-clock µs the worker spent inside the batched engine call
    /// that answered this ticket (zero until resolved, and for
    /// never-searched outcomes). Meaningful once
    /// [`try_result`](Self::try_result) returns `Some`.
    #[must_use]
    pub fn search_us(&self) -> u64 {
        self.ticket.search_us.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for TicketHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TicketHandle(resolved: {})",
            lock(&self.ticket.result).is_some()
        )
    }
}

/// Outcome of a non-blocking [`Scheduler::submit`]: either the answer
/// is already in hand (cache re-check hit, shed, expired, shutdown), or
/// a ticket to poll.
#[derive(Debug)]
pub enum Submission {
    /// Resolved at admission; no worker involvement needed (or
    /// possible).
    Ready(Result<Circuit, ServeError>),
    /// Queued (or coalesced onto an in-flight search); poll the handle.
    Pending(TicketHandle),
}

/// One queued class search awaiting a worker.
#[derive(Clone, Copy)]
struct Pending {
    kind: CostKind,
    rep: Perm,
    /// Latest instant at which starting the search is still useful; a
    /// worker reaching the entry after this expires it unsearched.
    deadline: Option<Instant>,
}

/// Queue state under the scheduler mutex.
struct QueueState {
    /// Class searches waiting for a worker, in arrival order, sharded
    /// into per-core lanes: the thread-per-core server submits each
    /// core's misses to its own lane, so the common case drains without
    /// cross-core contention on entry order. Workers drain their home
    /// lane (worker index modulo lane count) and steal from the longest
    /// sibling lane only when their own is empty — the imbalance case.
    lanes: Vec<Vec<Pending>>,
    /// Every `(model, rep)` with an unresolved ticket (queued *or*
    /// mid-search), keyed by model discriminant + packed representative.
    inflight: HashMap<(u8, u64), Arc<Ticket>>,
    /// Pending-queue occupancy per cost model (what `max_queue` bounds;
    /// in-flight-but-draining searches no longer hold a slot).
    queued: [usize; MODELS],
    shutdown: bool,
}

/// Tuning and overload-control knobs for [`Scheduler::with_options`].
#[derive(Debug, Clone, Default)]
pub struct SchedulerOptions {
    /// Group-commit window: how long a worker waits after the first
    /// queued miss before draining, letting near-simultaneous misses
    /// join the batch. Zero (the default) = drain immediately.
    pub linger: Duration,
    /// Maximum queued (not yet drained) searches **per cost model**;
    /// admission of a new class search beyond this is refused with
    /// [`ServeError::Overloaded`]. `0` (the default) = unbounded.
    /// Coalescing onto an in-flight ticket never consumes a slot and is
    /// never refused.
    pub max_queue: usize,
    /// The retry hint carried by [`ServeError::Overloaded`],
    /// milliseconds.
    pub retry_after_ms: u32,
    /// Deterministic fault injection at the search boundary (tests,
    /// chaos runs); `None` in production.
    pub faults: Option<Arc<FaultPlan>>,
    /// Registry handles the workers stream engine profiling into
    /// (candidate/gate/probe counts, batch search durations). `None`
    /// (the default) records nothing.
    pub metrics: Option<SchedulerMetrics>,
    /// Miss-queue lanes (one per serving core). `0` (the default) and
    /// `1` both mean a single lane — the pre-sharding behavior,
    /// bit-for-bit. [`Scheduler::submit`]'s `lane` argument is taken
    /// modulo this count.
    pub shards: usize,
}

/// Metrics-registry handles for the engine profiling the workers emit:
/// the [`SearchStats`] counters of every completed synthesis, plus the
/// wall-clock duration of each batched engine call. Handles are cheap
/// clones of registry-owned atomics; the scheduler adds to them
/// lock-free from inside the worker loop.
///
/// [`SearchStats`]: revsynth_core::SearchStats
#[derive(Debug, Clone)]
pub struct SchedulerMetrics {
    /// Candidate circuits considered by the engine's frame scan.
    pub considered: Counter,
    /// Candidates rejected by the cost gate before canonicalization.
    pub gated: Counter,
    /// Candidates canonicalized (survived the gate).
    pub canonicalized: Counter,
    /// Meet-in-the-middle table probes issued.
    pub probed: Counter,
    /// Wall-clock duration of each batched `synthesize_many` call, µs.
    pub batch_search_us: Histogram,
}

struct Inner {
    suite: Arc<SynthesisSuite>,
    cache: Arc<ClassCache>,
    search: SearchOptions,
    options: SchedulerOptions,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    /// Class representatives actually submitted to the synthesizer
    /// (shed, expired, and plan-failed entries never count).
    searches: AtomicU64,
    /// Batches drained by workers.
    batches: AtomicU64,
    /// Largest batch drained so far.
    max_batch: AtomicU64,
    /// Misses that attached to an existing in-flight ticket.
    coalesced: AtomicU64,
    /// Times a worker with an empty home lane stole work from a sibling
    /// lane (cross-core steal on miss-queue imbalance).
    steals: AtomicU64,
    /// Admissions refused because the model's queue was full.
    shed: [AtomicU64; MODELS],
    /// Queued searches expired (deadline passed) before being started.
    expired: [AtomicU64; MODELS],
    /// Times a supervisor caught a worker panic and re-entered the
    /// worker loop.
    worker_restarts: AtomicU64,
    /// Workers currently inside their supervised loop. Stable across
    /// respawns (the supervisor never exits on a panic), so a live
    /// server reports the configured pool size here.
    live_workers: AtomicU64,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Microseconds elapsed since `start`, saturating.
fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Outcome of the admission decision: either the result is already in
/// hand (the post-miss cache re-check hit), or there is a ticket —
/// fresh or coalesced onto — to wait on.
enum Admission {
    Cached(Circuit),
    Ticket(Arc<Ticket>),
}

/// The scheduler: owns the worker pool, shares the cache with the
/// server front end.
pub struct Scheduler {
    inner: Arc<Inner>,
    /// Worker handles, taken (and joined) exactly once by
    /// [`shutdown`](Self::shutdown).
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Scheduler counter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerCounters {
    /// Class representatives submitted to the synthesizer.
    pub searches: u64,
    /// Batches drained.
    pub batches: u64,
    /// Largest batch drained.
    pub max_batch: u64,
    /// Requests coalesced onto an in-flight search.
    pub coalesced: u64,
    /// Cross-core lane steals (a worker's home lane was empty while a
    /// sibling lane held queued work).
    pub steals: u64,
    /// Admissions refused (queue full), indexed by [`CostKind::code`].
    pub shed: [u64; MODELS],
    /// Deadline expiries before search start, indexed by
    /// [`CostKind::code`].
    pub expired: [u64; MODELS],
    /// Worker panics caught by the supervisor (each one respawned the
    /// worker in place).
    pub worker_restarts: u64,
}

impl SchedulerCounters {
    /// Total sheds across cost models.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// Total deadline expiries across cost models.
    #[must_use]
    pub fn expired_total(&self) -> u64 {
        self.expired.iter().sum()
    }
}

impl Scheduler {
    /// Starts `workers` worker threads answering queued class searches
    /// with batched `synthesize_many` calls under `search` options.
    /// Equivalent to [`with_linger`](Self::with_linger) with a zero
    /// (drain-immediately) window.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn new(
        suite: Arc<SynthesisSuite>,
        cache: Arc<ClassCache>,
        workers: usize,
        search: SearchOptions,
    ) -> Self {
        Self::with_linger(suite, cache, workers, search, Duration::ZERO)
    }

    /// Like [`new`](Self::new) with an explicit batch-linger window: a
    /// worker that finds work waits `linger` before draining the queue,
    /// trading that much added miss latency for larger batches and a
    /// deterministic coalescing window (misses arriving within the
    /// window for an in-flight class always attach to its ticket).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn with_linger(
        suite: Arc<SynthesisSuite>,
        cache: Arc<ClassCache>,
        workers: usize,
        search: SearchOptions,
        linger: Duration,
    ) -> Self {
        Self::with_options(
            suite,
            cache,
            workers,
            search,
            SchedulerOptions {
                linger,
                ..SchedulerOptions::default()
            },
        )
    }

    /// The full-control constructor: [`with_linger`](Self::with_linger)
    /// plus the overload-control and fault-injection knobs in
    /// [`SchedulerOptions`].
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn with_options(
        suite: Arc<SynthesisSuite>,
        cache: Arc<ClassCache>,
        workers: usize,
        search: SearchOptions,
        options: SchedulerOptions,
    ) -> Self {
        assert!(workers > 0, "need at least one scheduler worker");
        let lanes = options.shards.max(1);
        let inner = Arc::new(Inner {
            suite,
            cache,
            search,
            options,
            queue: Mutex::new(QueueState {
                lanes: vec![Vec::new(); lanes],
                inflight: HashMap::new(),
                queued: [0; MODELS],
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            searches: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            shed: std::array::from_fn(|_| AtomicU64::new(0)),
            expired: std::array::from_fn(|_| AtomicU64::new(0)),
            worker_restarts: AtomicU64::new(0),
            live_workers: AtomicU64::new(0),
        });
        let workers = (0..workers)
            .map(|home| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || supervised_worker(&inner, home))
            })
            .collect();
        Scheduler {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Resolves one cache miss: returns the `kind`-optimal circuit
    /// **for the representative** `rep` (the caller replays it through
    /// the query's witness). Blocks until a worker answers; concurrent
    /// calls for the same `(model, rep)` share one search — requests for
    /// the same class under *different* models are distinct work and do
    /// not coalesce.
    ///
    /// # Errors
    ///
    /// [`ServeError::Synthesis`] when the synthesizer cannot answer,
    /// [`ServeError::ShuttingDown`] when the scheduler is stopping,
    /// [`ServeError::Overloaded`] when the model's miss queue is full.
    pub fn request(&self, kind: CostKind, rep: Perm) -> Result<Circuit, ServeError> {
        self.request_with_deadline(kind, rep, None)
    }

    /// [`request`](Self::request) with an optional deadline: if the
    /// deadline passes before a worker starts the search, the request is
    /// answered with [`ServeError::Expired`] and the search is never
    /// run. A deadline that is already in the past is expired at
    /// admission. Coalescing ignores deadlines — an attached waiter
    /// rides the in-flight search however long it takes (the search is
    /// already paid for).
    ///
    /// # Errors
    ///
    /// Everything [`request`](Self::request) returns, plus
    /// [`ServeError::Expired`].
    pub fn request_with_deadline(
        &self,
        kind: CostKind,
        rep: Perm,
        deadline: Option<Instant>,
    ) -> Result<Circuit, ServeError> {
        match self.admit(kind, rep, deadline, 0)? {
            Admission::Cached(circuit) => Ok(circuit),
            Admission::Ticket(ticket) => ticket.wait(),
        }
    }

    /// The non-blocking admission entry point for readiness-based event
    /// loops: the full [`request_with_deadline`](Self::request_with_deadline)
    /// admission decision (coalesce → cache re-check → expire → shed →
    /// enqueue), but instead of parking the calling thread it returns
    /// either the immediate outcome or a [`TicketHandle`] to poll. The
    /// fresh-enqueue path places the entry in lane `lane % shards`
    /// (see [`SchedulerOptions::shards`]) — a serving core passes its
    /// own index so its misses queue without cross-core contention.
    pub fn submit(
        &self,
        kind: CostKind,
        rep: Perm,
        deadline: Option<Instant>,
        lane: usize,
    ) -> Submission {
        match self.admit(kind, rep, deadline, lane) {
            Ok(Admission::Cached(circuit)) => Submission::Ready(Ok(circuit)),
            Ok(Admission::Ticket(ticket)) => Submission::Pending(TicketHandle { ticket }),
            Err(e) => Submission::Ready(Err(e)),
        }
    }

    /// Whether no queued or in-flight work remains anywhere: every lane
    /// is empty and every ticket has been resolved and removed. This is
    /// the invariant graceful shutdown requires before the final
    /// snapshot — no core may snapshot while a sibling still holds
    /// inflight tickets.
    #[must_use]
    pub fn drained(&self) -> bool {
        let q = lock(&self.inner.queue);
        q.lanes.iter().all(Vec::is_empty) && q.inflight.is_empty()
    }

    /// [`request_with_deadline`](Self::request_with_deadline) recording
    /// span timings into `trace`: [`Stage::Admission`] covers the
    /// admission decision (lock acquisition + coalesce/cache/shed
    /// checks), [`Stage::BatchSearch`] the engine time of the batch that
    /// answered the ticket, and [`Stage::QueueWait`] the remainder of
    /// the wait (queued behind other work, linger, batch overhead).
    ///
    /// # Errors
    ///
    /// Exactly [`request_with_deadline`](Self::request_with_deadline)'s.
    pub fn request_traced(
        &self,
        kind: CostKind,
        rep: Perm,
        deadline: Option<Instant>,
        trace: &mut Trace,
    ) -> Result<Circuit, ServeError> {
        let admit_start = Instant::now();
        let admitted = self.admit(kind, rep, deadline, 0);
        trace.record(Stage::Admission, elapsed_us(admit_start));
        match admitted? {
            Admission::Cached(circuit) => Ok(circuit),
            Admission::Ticket(ticket) => {
                let wait_start = Instant::now();
                let result = ticket.wait();
                let waited = elapsed_us(wait_start);
                // A coalesced waiter that attached mid-search observes
                // less wall-clock than the full batch duration; clamp so
                // the two spans still sum to the observed wait.
                let search = ticket.search_us.load(Ordering::Relaxed).min(waited);
                trace.record(Stage::BatchSearch, search);
                trace.record(Stage::QueueWait, waited - search);
                result
            }
        }
    }

    /// The admission decision for one cache miss: coalesce, answer from
    /// the cache, expire, shed, or enqueue a fresh ticket.
    fn admit(
        &self,
        kind: CostKind,
        rep: Perm,
        deadline: Option<Instant>,
        lane: usize,
    ) -> Result<Admission, ServeError> {
        let key = (kind.code(), rep.packed());
        let model = kind.code() as usize;
        let ticket = {
            let mut q = lock(&self.inner.queue);
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            match q.inflight.get(&key) {
                Some(ticket) => {
                    self.inner.coalesced.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(ticket)
                }
                None => {
                    // The search may have completed between the caller's
                    // cache miss and this lock; the cache is written before
                    // the in-flight entry is removed, so checking it here
                    // closes the window. Quiet: the caller already counted
                    // this query's miss — and that miss was answered by a
                    // search it didn't trigger, so it counts as coalesced
                    // to keep the conservation law (misses = searches +
                    // coalesced + shed + expired) exact.
                    if let Some(circuit) = self.inner.cache.get_quiet(kind, rep) {
                        self.inner.coalesced.fetch_add(1, Ordering::Relaxed);
                        return Ok(Admission::Cached(circuit));
                    }
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        self.inner.expired[model].fetch_add(1, Ordering::Relaxed);
                        return Err(ServeError::Expired);
                    }
                    // Admission control, after the coalesce/cache paths:
                    // only *new* search work can be shed.
                    let max = self.inner.options.max_queue;
                    if max > 0 && q.queued[model] >= max {
                        self.inner.shed[model].fetch_add(1, Ordering::Relaxed);
                        return Err(ServeError::Overloaded {
                            retry_after_ms: self.inner.options.retry_after_ms,
                        });
                    }
                    let ticket = Arc::new(Ticket::new());
                    q.inflight.insert(key, Arc::clone(&ticket));
                    let lane = lane % q.lanes.len();
                    q.lanes[lane].push(Pending {
                        kind,
                        rep,
                        deadline,
                    });
                    q.queued[model] += 1;
                    self.inner.work_ready.notify_one();
                    ticket
                }
            }
        };
        Ok(Admission::Ticket(ticket))
    }

    /// Pending-queue occupancy per cost model (indexed by
    /// [`CostKind::code`]): searches admitted but not yet drained by a
    /// worker. This is exactly what [`SchedulerOptions::max_queue`]
    /// bounds, exposed for queue-depth gauges.
    #[must_use]
    pub fn queued(&self) -> [usize; MODELS] {
        lock(&self.inner.queue).queued
    }

    /// Counter snapshot.
    #[must_use]
    pub fn counters(&self) -> SchedulerCounters {
        SchedulerCounters {
            searches: self.inner.searches.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            max_batch: self.inner.max_batch.load(Ordering::Relaxed),
            coalesced: self.inner.coalesced.load(Ordering::Relaxed),
            steals: self.inner.steals.load(Ordering::Relaxed),
            shed: self
                .inner
                .shed
                .each_ref()
                .map(|c| c.load(Ordering::Relaxed)),
            expired: self
                .inner
                .expired
                .each_ref()
                .map(|c| c.load(Ordering::Relaxed)),
            worker_restarts: self.inner.worker_restarts.load(Ordering::Relaxed),
        }
    }

    /// Workers currently running their supervised loop. Equals the
    /// configured pool size on a healthy (or self-healed) scheduler;
    /// drops to zero only after [`shutdown`](Self::shutdown).
    #[must_use]
    pub fn live_workers(&self) -> u64 {
        self.inner.live_workers.load(Ordering::Relaxed)
    }

    /// Stops the workers: in-progress batches complete, queued-but-not-
    /// started searches (and requests arriving afterwards) are answered
    /// with [`ServeError::ShuttingDown`]. Joins every worker thread;
    /// idempotent (later calls find nothing left to join).
    pub fn shutdown(&self) {
        {
            let mut q = lock(&self.inner.queue);
            q.shutdown = true;
            q.queued = [0; MODELS];
            // Fail the not-yet-started searches so their waiters wake.
            let abandoned: Vec<Pending> = q.lanes.iter_mut().flat_map(std::mem::take).collect();
            for entry in abandoned {
                if let Some(ticket) = q.inflight.remove(&(entry.kind.code(), entry.rep.packed())) {
                    ticket.fulfill(Err(ServeError::ShuttingDown));
                }
            }
            self.inner.work_ready.notify_all();
        }
        for handle in std::mem::take(&mut *lock(&self.workers)) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.counters();
        write!(
            f,
            "Scheduler({} workers, {} searches in {} batches, {} coalesced)",
            lock(&self.workers).len(),
            c.searches,
            c.batches,
            c.coalesced
        )
    }
}

/// The supervisor wrapping every worker thread: catches a panicking
/// [`worker_loop`], counts the restart, and re-enters the loop so the
/// pool recovers to full strength without outside intervention. The
/// batch the panicking worker had drained has already been answered by
/// its [`DrainGuard`] during unwinding — no waiter is stranded. Exits
/// only when the loop returns cleanly (shutdown).
fn supervised_worker(inner: &Inner, home: usize) {
    inner.live_workers.fetch_add(1, Ordering::Relaxed);
    loop {
        let run =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker_loop(inner, home)));
        match run {
            Ok(()) => break,
            Err(_) => {
                inner.worker_restarts.fetch_add(1, Ordering::Relaxed);
                if lock(&inner.queue).shutdown {
                    break;
                }
            }
        }
    }
    inner.live_workers.fetch_sub(1, Ordering::Relaxed);
}

/// The batch a worker has drained but not yet fully answered. Every
/// stage resolves entries *through* the guard so the unresolved set
/// shrinks as answers go out; if the worker panics mid-batch (a bug in
/// the engine, or an injected chaos panic), `Drop` runs during
/// unwinding and fails every remaining entry with [`WORKER_PANIC`] —
/// coalesced waiters wake with a clean error instead of blocking on a
/// ticket nobody will ever fulfill.
struct DrainGuard<'a> {
    inner: &'a Inner,
    entries: Vec<Pending>,
}

impl DrainGuard<'_> {
    /// Answers one entry and removes it from the unresolved set.
    /// `search_us` is the engine time behind the answer (zero when the
    /// search never ran).
    fn resolve(
        &mut self,
        kind: CostKind,
        rep: Perm,
        outcome: Result<Circuit, ServeError>,
        search_us: u64,
    ) {
        if let Some(i) = self
            .entries
            .iter()
            .position(|e| e.kind == kind && e.rep == rep)
        {
            self.entries.swap_remove(i);
        }
        resolve(self.inner, kind, rep, outcome, search_us);
    }
}

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        for entry in std::mem::take(&mut self.entries) {
            resolve(
                self.inner,
                entry.kind,
                entry.rep,
                Err(ServeError::Synthesis(WORKER_PANIC.to_string())),
                0,
            );
        }
    }
}

fn worker_loop(inner: &Inner, home: usize) {
    loop {
        {
            let mut q = lock(&inner.queue);
            loop {
                if q.lanes.iter().any(|lane| !lane.is_empty()) {
                    break;
                }
                if q.shutdown {
                    return;
                }
                q = inner
                    .work_ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        // Group-commit: hold the drain open so near-simultaneous misses
        // pile into this batch (the queued reps stay in `inflight`, so
        // same-class arrivals during the window attach to their
        // tickets). The lock is NOT held while lingering.
        if !inner.options.linger.is_zero() {
            std::thread::sleep(inner.options.linger);
        }
        let drained: Vec<Pending> = {
            let mut q = lock(&inner.queue);
            let home = home % q.lanes.len();
            let drained = if q.lanes[home].is_empty() {
                // Cross-core steal, only on imbalance: this worker's
                // home lane is dry while a sibling holds queued work.
                // Take the newer half of the longest lane — the victim
                // (if it has its own worker) keeps the older half it
                // was already heading for.
                match (0..q.lanes.len()).max_by_key(|&l| q.lanes[l].len()) {
                    Some(victim) if !q.lanes[victim].is_empty() => {
                        let len = q.lanes[victim].len();
                        let stolen = q.lanes[victim].split_off(len - len.div_ceil(2));
                        inner.steals.fetch_add(1, Ordering::Relaxed);
                        stolen
                    }
                    _ => Vec::new(),
                }
            } else {
                std::mem::take(&mut q.lanes[home])
            };
            // Drained searches no longer hold admission slots (they are
            // committed work now), so their models' occupancy drops.
            for entry in &drained {
                let model = entry.kind.code() as usize;
                q.queued[model] = q.queued[model].saturating_sub(1);
            }
            drained
        };
        if drained.is_empty() {
            // Another worker drained the lanes during our linger.
            continue;
        }

        // From here to the end of the batch, the guard owns every
        // drained-but-unanswered entry: a panic at any point fails the
        // remainder during unwinding instead of stranding waiters.
        let mut guard = DrainGuard {
            inner,
            entries: drained,
        };

        // Expire-before-search: a drained entry whose deadline already
        // passed is answered `Expired` without ever reaching the
        // synthesizer — under saturation this is the difference between
        // shedding future work and finishing work nobody is waiting for.
        let now = Instant::now();
        for entry in guard.entries.clone() {
            if entry.deadline.is_some_and(|d| now >= d) {
                inner.expired[entry.kind.code() as usize].fetch_add(1, Ordering::Relaxed);
                guard.resolve(entry.kind, entry.rep, Err(ServeError::Expired), 0);
            }
        }

        // Fault injection at the search boundary: plan-failed entries
        // are answered without running (and without counting as
        // searches); plan-delayed entries model a slow synthesizer by
        // sleeping per search before the batch is submitted; a
        // plan-panic kills the worker mid-batch — the guard answers the
        // batch, the supervisor respawns the worker.
        if let Some(plan) = inner.options.faults.as_deref() {
            for entry in guard.entries.clone() {
                let fault = plan.next_search();
                if fault.panic {
                    panic!("{INJECTED_PANIC}");
                }
                if fault.fail {
                    guard.resolve(
                        entry.kind,
                        entry.rep,
                        Err(ServeError::Synthesis(INJECTED_FAILURE.to_string())),
                        0,
                    );
                    continue;
                }
                if let Some(delay) = fault.delay {
                    std::thread::sleep(delay);
                }
            }
        }
        if guard.entries.is_empty() {
            continue;
        }

        inner.batches.fetch_add(1, Ordering::Relaxed);
        inner
            .searches
            .fetch_add(guard.entries.len() as u64, Ordering::Relaxed);
        inner
            .max_batch
            .fetch_max(guard.entries.len() as u64, Ordering::Relaxed);

        // One batched engine call per cost model present in the drain:
        // each kind's reps ride one pass over that engine's level lists.
        for kind in CostKind::ALL {
            let reps: Vec<Perm> = guard
                .entries
                .iter()
                .filter(|e| e.kind == kind)
                .map(|e| e.rep)
                .collect();
            if reps.is_empty() {
                continue;
            }
            let opts = inner.search.cost_model(kind);
            let search_start = Instant::now();
            let results = inner.suite.synthesize_many(&reps, &opts);
            let search_us = elapsed_us(search_start);
            if let Some(metrics) = inner.options.metrics.as_ref() {
                metrics.batch_search_us.record(search_us);
            }
            for (rep, result) in reps.iter().zip(results) {
                let outcome = match result {
                    Ok(synthesis) => {
                        if let Some(metrics) = inner.options.metrics.as_ref() {
                            metrics.considered.add(synthesis.stats.considered);
                            metrics.gated.add(synthesis.stats.gated);
                            metrics.canonicalized.add(synthesis.stats.canonicalized);
                            metrics.probed.add(synthesis.stats.probed);
                        }
                        // Publish to the cache BEFORE resolving the ticket:
                        // see the module docs on the no-rerun ordering.
                        inner.cache.insert(kind, *rep, synthesis.circuit.clone());
                        Ok(synthesis.circuit)
                    }
                    Err(e) => Err(ServeError::Synthesis(e.to_string())),
                };
                guard.resolve(kind, *rep, outcome, search_us);
            }
        }
    }
}

/// Removes the `(kind, rep)` in-flight ticket, stamps the engine time
/// behind the answer, and wakes its waiters with `outcome`. (For
/// successes the cache insert has already happened — see the module
/// docs on the no-rerun ordering.)
fn resolve(
    inner: &Inner,
    kind: CostKind,
    rep: Perm,
    outcome: Result<Circuit, ServeError>,
    search_us: u64,
) {
    let ticket = lock(&inner.queue)
        .inflight
        .remove(&(kind.code(), rep.packed()));
    if let Some(ticket) = ticket {
        ticket.search_us.store(search_us, Ordering::Relaxed);
        ticket.fulfill(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revsynth_canon::replay_for_witness;
    use revsynth_circuit::GateLib;
    use revsynth_core::{SuiteConfig, Synthesizer};
    use std::sync::Barrier;

    fn test_suite() -> SynthesisSuite {
        SynthesisSuite::new(
            Synthesizer::from_scratch(4, 2),
            SuiteConfig {
                quantum_budget: 6,
                depth_budget: 2,
            },
        )
    }

    fn scheduler(workers: usize) -> (Scheduler, Arc<SynthesisSuite>, Arc<ClassCache>) {
        let suite = Arc::new(test_suite());
        let cache = Arc::new(ClassCache::new(256));
        let sched = Scheduler::new(
            Arc::clone(&suite),
            Arc::clone(&cache),
            workers,
            SearchOptions::new().threads(1),
        );
        (sched, suite, cache)
    }

    #[test]
    fn request_searches_once_then_hits_cache() {
        let (sched, suite, cache) = scheduler(1);
        let f = GateLib::nct(4).iter().next().unwrap().2;
        let rep = suite.sym().canonical(f);
        let circuit = sched.request(CostKind::Gates, rep).unwrap();
        assert_eq!(circuit.perm(4), rep);
        assert_eq!(sched.counters().searches, 1);
        // The worker published the result to the cache.
        assert_eq!(cache.get(CostKind::Gates, rep).unwrap(), circuit);
        // A second request short-circuits on the post-miss cache check
        // even though the caller skipped its own cache lookup.
        let again = sched.request(CostKind::Gates, rep).unwrap();
        assert_eq!(again, circuit);
        assert_eq!(sched.counters().searches, 1, "no second search");
        sched.shutdown();
    }

    #[test]
    fn concurrent_same_class_requests_coalesce() {
        let (sched, suite, _cache) = scheduler(1);
        let sym = suite.sym();
        // A class with several members, none cached.
        let member = "TOF(a,b,d) CNOT(a,b)"
            .parse::<revsynth_circuit::Circuit>()
            .unwrap()
            .perm(4);
        let w = sym.canonicalize(member);
        let clients = 6;
        let barrier = Barrier::new(clients);
        let sched_ref = &sched;
        let circuits: Vec<Circuit> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        sched_ref.request(CostKind::Gates, w.rep).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for c in &circuits {
            assert_eq!(c.perm(4), w.rep);
            assert_eq!(c, &circuits[0], "all waiters get the same circuit");
        }
        let counters = sched.counters();
        assert_eq!(counters.searches, 1, "one search for the whole class");
        // At least one of the six rendezvoused requests must have
        // attached (the race leaves the exact split nondeterministic,
        // but 6 barrier-released requests cannot all finish disjointly
        // with a single worker: either they coalesced or they found the
        // cache — and the cache starts cold).
        assert!(
            counters.coalesced >= 1 || counters.searches == 1,
            "{counters:?}"
        );
        sched.shutdown();
    }

    #[test]
    fn batch_drains_multiple_classes_in_one_call() {
        let (sched, suite, _cache) = scheduler(1);
        let sym = suite.sym();
        let lib = GateLib::nct(4);
        // Queue several distinct classes from different threads at once.
        let reps: Vec<Perm> = lib
            .iter()
            .map(|(_, _, p)| sym.canonical(p))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        assert!(reps.len() >= 4);
        let sched_ref = &sched;
        let barrier = Barrier::new(reps.len());
        std::thread::scope(|scope| {
            for &rep in &reps {
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let c = sched_ref.request(CostKind::Gates, rep).unwrap();
                    assert_eq!(c.perm(4), rep);
                });
            }
        });
        let counters = sched.counters();
        assert_eq!(counters.searches, reps.len() as u64);
        assert!(
            counters.batches <= counters.searches,
            "batching can only reduce calls: {counters:?}"
        );
        assert!(counters.max_batch >= 1);
        sched.shutdown();
    }

    #[test]
    fn scheduled_circuit_replays_to_the_query() {
        // End-to-end miss path as the server performs it: canonicalize,
        // schedule the rep, replay through the witness.
        let (sched, suite, _cache) = scheduler(1);
        let sym = suite.sym();
        let query = "TOF(b,c,d) NOT(a) CNOT(c,b)"
            .parse::<revsynth_circuit::Circuit>()
            .unwrap()
            .perm(4);
        let w = sym.canonicalize(query);
        let rep_circuit = sched.request(CostKind::Gates, w.rep).unwrap();
        let answer = replay_for_witness(&rep_circuit, &w);
        assert_eq!(answer.perm(4), query);
        sched.shutdown();
    }

    #[test]
    fn unsynthesizable_queries_fail_cleanly() {
        let (sched, suite, cache) = scheduler(1);
        // k = 2 reaches size 4; a random large permutation exceeds it.
        let hard =
            Perm::from_values(&[15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11]).unwrap();
        let rep = suite.sym().canonical(hard);
        let err = sched.request(CostKind::Gates, rep).unwrap_err();
        assert!(matches!(err, ServeError::Synthesis(_)), "{err}");
        assert!(
            cache.get(CostKind::Gates, rep).is_none(),
            "failures are not cached"
        );
        sched.shutdown();
    }

    #[test]
    fn linger_forms_batches_and_guarantees_coalescing() {
        // With a linger window much wider than thread-spawn jitter, all
        // concurrent first-miss requests must land in ONE drained batch
        // (distinct classes) and same-class requests must attach to the
        // in-flight ticket — deterministically, not as a race.
        let suite = Arc::new(test_suite());
        let cache = Arc::new(ClassCache::new(256));
        let sched = Scheduler::with_linger(
            Arc::clone(&suite),
            cache,
            1,
            SearchOptions::new().threads(1),
            Duration::from_millis(150),
        );
        let sym = suite.sym();
        let reps: Vec<Perm> = GateLib::nct(4)
            .iter()
            .map(|(_, _, p)| sym.canonical(p))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let classes = reps.len() as u64;
        let dup = reps[0];
        let sched_ref = &sched;
        std::thread::scope(|scope| {
            for &rep in &reps {
                scope.spawn(move || sched_ref.request(CostKind::Gates, rep).unwrap());
            }
            for _ in 0..2 {
                scope.spawn(move || sched_ref.request(CostKind::Gates, dup).unwrap());
            }
        });
        let c = sched.counters();
        assert_eq!(c.searches, classes, "one search per class");
        assert_eq!(c.batches, 1, "the linger window collected one batch");
        assert_eq!(c.max_batch, classes);
        assert!(c.coalesced >= 2, "duplicate requests attached: {c:?}");
        sched.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let (sched, suite, _cache) = scheduler(2);
        let rep = suite
            .sym()
            .canonical(GateLib::nct(4).iter().next().unwrap().2);
        let _ = sched.request(CostKind::Gates, rep);
        // shutdown() consumes the scheduler; test the post-shutdown flag
        // through a clone of inner by re-creating the sequence: set the
        // flag first, then request.
        {
            let mut q = lock(&sched.inner.queue);
            q.shutdown = true;
        }
        assert_eq!(
            sched.request(CostKind::Gates, rep),
            Err(ServeError::ShuttingDown)
        );
        {
            let mut q = lock(&sched.inner.queue);
            q.shutdown = false;
        }
        sched.shutdown();
    }

    #[test]
    fn different_cost_models_do_not_coalesce_and_cache_separately() {
        let (sched, suite, cache) = scheduler(1);
        // A class whose gate-count and quantum-cost optima differ in
        // *measure* even when the circuits agree: SWAP(a,b) = 3 CNOTs.
        let swap = "CNOT(a,b) CNOT(b,a) CNOT(a,b)"
            .parse::<revsynth_circuit::Circuit>()
            .unwrap()
            .perm(4);
        let rep = suite.sym().canonical(swap);
        let gates_circuit = sched.request(CostKind::Gates, rep).unwrap();
        let quantum_circuit = sched.request(CostKind::Quantum, rep).unwrap();
        assert_eq!(gates_circuit.perm(4), rep);
        assert_eq!(quantum_circuit.perm(4), rep);
        let counters = sched.counters();
        assert_eq!(
            counters.searches, 2,
            "same class under two models is two searches"
        );
        assert_eq!(counters.coalesced, 0, "kinds never share a ticket");
        assert!(cache.get_quiet(CostKind::Gates, rep).is_some());
        assert!(cache.get_quiet(CostKind::Quantum, rep).is_some());
        sched.shutdown();
    }

    #[test]
    fn traced_requests_record_spans_and_engine_metrics() {
        use revsynth_obs::Registry;
        let registry = Registry::default();
        let metrics = SchedulerMetrics {
            considered: registry.counter("considered", &[], "candidates considered"),
            gated: registry.counter("gated", &[], "candidates gated"),
            canonicalized: registry.counter("canonicalized", &[], "candidates canonicalized"),
            probed: registry.counter("probed", &[], "table probes"),
            batch_search_us: registry.histogram("batch_search_us", &[], "batch engine time"),
        };
        let suite = Arc::new(test_suite());
        let cache = Arc::new(ClassCache::new(256));
        let sched = Scheduler::with_options(
            Arc::clone(&suite),
            Arc::clone(&cache),
            1,
            SearchOptions::new().threads(1),
            SchedulerOptions {
                metrics: Some(metrics.clone()),
                ..SchedulerOptions::default()
            },
        );
        // A 4-gate class: with k = 2 tables this takes a real
        // meet-in-the-middle search, so the engine counters must move.
        let query = "TOF(a,b,d) CNOT(a,b) TOF(b,c,d) CNOT(b,c)"
            .parse::<revsynth_circuit::Circuit>()
            .unwrap()
            .perm(4);
        let rep = suite.sym().canonical(query);
        let mut trace = Trace::new(0xABCD);
        let circuit = sched
            .request_traced(CostKind::Gates, rep, None, &mut trace)
            .unwrap();
        assert_eq!(circuit.perm(4), rep);
        assert_eq!(metrics.batch_search_us.count(), 1, "one batched call");
        assert!(metrics.considered.get() > 0, "engine stats harvested");
        assert!(metrics.probed.get() > 0);
        assert!(metrics.considered.get() >= metrics.gated.get());
        // The search span never exceeds admission + wait accounting:
        // QueueWait and BatchSearch partition the observed ticket wait.
        assert!(trace.total_us == 0, "scheduler never touches total_us");
        // A repeat request is answered by the post-miss cache check:
        // no new batch, and no search/queue spans recorded.
        let mut again = Trace::new(0xABCE);
        let cached = sched
            .request_traced(CostKind::Gates, rep, None, &mut again)
            .unwrap();
        assert_eq!(cached, circuit);
        assert_eq!(metrics.batch_search_us.count(), 1, "no second batch");
        assert_eq!(again.stage_us(Stage::BatchSearch), 0);
        assert_eq!(again.stage_us(Stage::QueueWait), 0);
        sched.shutdown();
    }

    #[test]
    fn queue_depth_accessor_reports_admitted_work() {
        // A 400 ms injected search keeps the lone worker busy; a second
        // class queued behind it is visible through `queued()` until the
        // worker drains it.
        let plan = Arc::new(FaultPlan::new(0x0B5).with_search_delay(Duration::from_millis(400)));
        let (sched, suite) = chaos_scheduler(Arc::clone(&plan), 0);
        let reps = class_reps(&suite, 2);
        let sched_ref = &sched;
        std::thread::scope(|scope| {
            let first = reps[0];
            let a = scope.spawn(move || sched_ref.request(CostKind::Gates, first));
            std::thread::sleep(Duration::from_millis(100));
            let second = reps[1];
            let b = scope.spawn(move || sched_ref.request(CostKind::Gates, second));
            std::thread::sleep(Duration::from_millis(100));
            let depth = sched_ref.queued();
            assert_eq!(depth[CostKind::Gates.code() as usize], 1, "{depth:?}");
            assert!(a.join().unwrap().is_ok());
            assert!(b.join().unwrap().is_ok());
        });
        assert_eq!(sched.queued(), [0; MODELS], "drained queues report empty");
        sched.shutdown();
    }

    /// A scheduler whose single worker is slowed by `plan`, with the
    /// given per-model queue bound.
    fn chaos_scheduler(plan: Arc<FaultPlan>, max_queue: usize) -> (Scheduler, Arc<SynthesisSuite>) {
        let suite = Arc::new(test_suite());
        let sched = Scheduler::with_options(
            Arc::clone(&suite),
            Arc::new(ClassCache::new(256)),
            1,
            SearchOptions::new().threads(1),
            SchedulerOptions {
                max_queue,
                retry_after_ms: 42,
                faults: Some(plan),
                ..SchedulerOptions::default()
            },
        );
        (sched, suite)
    }

    /// Distinct class representatives, deterministic order.
    fn class_reps(suite: &SynthesisSuite, n: usize) -> Vec<Perm> {
        let sym = suite.sym();
        let reps: Vec<Perm> = GateLib::nct(4)
            .iter()
            .map(|(_, _, p)| sym.canonical(p))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .take(n)
            .collect();
        assert_eq!(reps.len(), n, "gate library has too few classes");
        reps
    }

    #[test]
    fn full_queue_sheds_new_classes_but_still_coalesces() {
        // Pinned seed; the 400 ms injected search latency keeps the lone
        // worker busy while the bounded queue fills behind it.
        let plan = Arc::new(FaultPlan::new(0xC4A0).with_search_delay(Duration::from_millis(400)));
        let (sched, suite) = chaos_scheduler(Arc::clone(&plan), 1);
        let reps = class_reps(&suite, 3);
        let (first, queued, refused) = (reps[0], reps[1], reps[2]);
        let sched_ref = &sched;
        std::thread::scope(|scope| {
            let a = scope.spawn(move || sched_ref.request(CostKind::Gates, first));
            // Let the worker drain `first` and start its injected delay.
            std::thread::sleep(Duration::from_millis(100));
            let b = scope.spawn(move || sched_ref.request(CostKind::Gates, queued));
            std::thread::sleep(Duration::from_millis(100));
            // Queue holds `queued` (1/1): a third class is shed with the
            // configured hint...
            assert_eq!(
                sched_ref.request(CostKind::Gates, refused),
                Err(ServeError::Overloaded { retry_after_ms: 42 })
            );
            // ...a *different model* has its own empty queue and admits...
            let c = scope.spawn(move || sched_ref.request(CostKind::Quantum, refused));
            // ...and coalescing onto the in-flight first search needs no
            // slot, so it must succeed even now.
            let a2 = scope.spawn(move || sched_ref.request(CostKind::Gates, first));
            assert!(a.join().unwrap().is_ok());
            assert!(a2.join().unwrap().is_ok());
            assert!(b.join().unwrap().is_ok());
            assert!(c.join().unwrap().is_ok());
        });
        let counters = sched.counters();
        assert_eq!(counters.shed[CostKind::Gates.code() as usize], 1);
        assert_eq!(counters.shed_total(), 1, "only the gates queue shed");
        assert!(counters.coalesced >= 1, "{counters:?}");
        assert_eq!(
            counters.searches, 3,
            "shed and coalesced requests never searched"
        );
        assert_eq!(counters.searches, plan.injected().delays, "plan reconciles");
        sched.shutdown();
    }

    #[test]
    fn deadline_expires_before_search_under_injected_latency() {
        let plan = Arc::new(FaultPlan::new(0xDEAD).with_search_delay(Duration::from_millis(300)));
        let (sched, suite) = chaos_scheduler(Arc::clone(&plan), 0);
        let reps = class_reps(&suite, 2);
        let sched_ref = &sched;
        std::thread::scope(|scope| {
            let first = reps[0];
            let a = scope.spawn(move || sched_ref.request(CostKind::Gates, first));
            std::thread::sleep(Duration::from_millis(100));
            // Queued behind a 300 ms search with only 50 ms of budget:
            // a worker reaches the ticket after the deadline and must
            // answer Expired without searching.
            let doomed = reps[1];
            let deadline = Instant::now() + Duration::from_millis(50);
            assert_eq!(
                sched_ref.request_with_deadline(CostKind::Gates, doomed, Some(deadline)),
                Err(ServeError::Expired)
            );
            assert!(a.join().unwrap().is_ok());
        });
        // An already-past deadline is expired at admission, before any
        // queue slot is taken.
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            sched.request_with_deadline(CostKind::Gates, reps[1], Some(past)),
            Err(ServeError::Expired)
        );
        let counters = sched.counters();
        assert_eq!(counters.expired[CostKind::Gates.code() as usize], 2);
        assert_eq!(
            counters.searches, 1,
            "expired tickets never reach the engine"
        );
        assert_eq!(plan.injected().delays, 1, "one search was delayed");
        sched.shutdown();
    }

    #[test]
    fn injected_failures_are_reported_and_never_cached() {
        let plan = Arc::new(FaultPlan::new(7).with_fail_every(1));
        let suite = Arc::new(test_suite());
        let cache = Arc::new(ClassCache::new(256));
        let sched = Scheduler::with_options(
            Arc::clone(&suite),
            Arc::clone(&cache),
            1,
            SearchOptions::new().threads(1),
            SchedulerOptions {
                faults: Some(Arc::clone(&plan)),
                ..SchedulerOptions::default()
            },
        );
        let rep = class_reps(&suite, 1)[0];
        match sched.request(CostKind::Gates, rep) {
            Err(ServeError::Synthesis(msg)) => assert!(msg.contains(INJECTED_FAILURE), "{msg}"),
            other => panic!("expected injected failure, got {other:?}"),
        }
        assert!(cache.get_quiet(CostKind::Gates, rep).is_none());
        let counters = sched.counters();
        assert_eq!(counters.searches, 0, "plan-failed searches never run");
        assert_eq!(plan.injected().failures, 1);
        sched.shutdown();
    }

    #[test]
    fn panicking_worker_is_respawned_and_waiters_get_a_clean_error() {
        // panic_every(2): the second drained search kills the worker.
        // Its waiter must receive WORKER_PANIC (not hang), the
        // supervisor must respawn the worker in place, and the
        // respawned worker must answer the next request normally.
        let plan = Arc::new(FaultPlan::new(11).with_panic_every(2));
        let suite = Arc::new(test_suite());
        let cache = Arc::new(ClassCache::new(256));
        let sched = Scheduler::with_options(
            Arc::clone(&suite),
            Arc::clone(&cache),
            1,
            SearchOptions::new().threads(1),
            SchedulerOptions {
                faults: Some(Arc::clone(&plan)),
                ..SchedulerOptions::default()
            },
        );
        let reps = class_reps(&suite, 3);
        // Search #1: no fault, answered normally.
        let first = sched.request(CostKind::Gates, reps[0]).unwrap();
        assert_eq!(first.perm(4), reps[0]);
        // Search #2: the injected panic. The drain guard answers the
        // waiter during unwinding; nothing reaches the cache.
        match sched.request(CostKind::Gates, reps[1]) {
            Err(ServeError::Synthesis(msg)) => assert!(msg.contains(WORKER_PANIC), "{msg}"),
            other => panic!("expected abandoned search, got {other:?}"),
        }
        assert!(cache.get_quiet(CostKind::Gates, reps[1]).is_none());
        // Search #3: served by the respawned worker.
        let third = sched.request(CostKind::Gates, reps[2]).unwrap();
        assert_eq!(third.perm(4), reps[2]);
        let counters = sched.counters();
        assert_eq!(counters.worker_restarts, 1, "{counters:?}");
        assert_eq!(plan.injected().panics, 1);
        assert_eq!(sched.live_workers(), 1, "pool self-healed to strength");
        sched.shutdown();
        assert_eq!(sched.live_workers(), 0);
    }

    /// A sharded scheduler (multiple miss-queue lanes) with one worker,
    /// so off-home lanes can only ever drain via stealing.
    fn sharded_scheduler(shards: usize) -> (Scheduler, Arc<SynthesisSuite>) {
        let suite = Arc::new(test_suite());
        let sched = Scheduler::with_options(
            Arc::clone(&suite),
            Arc::new(ClassCache::new(256)),
            1,
            SearchOptions::new().threads(1),
            SchedulerOptions {
                shards,
                ..SchedulerOptions::default()
            },
        );
        (sched, suite)
    }

    #[test]
    fn submit_resolves_without_blocking_and_reports_search_time() {
        let (sched, suite) = sharded_scheduler(2);
        let rep = class_reps(&suite, 1)[0];
        let handle = match sched.submit(CostKind::Gates, rep, None, 0) {
            Submission::Pending(handle) => handle,
            other => panic!("fresh class must queue, got {other:?}"),
        };
        // Poll until the worker answers — the caller never parks.
        let deadline = Instant::now() + Duration::from_secs(30);
        let result = loop {
            if let Some(result) = handle.try_result() {
                break result;
            }
            assert!(Instant::now() < deadline, "ticket never resolved");
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(result.unwrap().perm(4), rep);
        // A second submit short-circuits on the cache re-check.
        match sched.submit(CostKind::Gates, rep, None, 1) {
            Submission::Ready(Ok(c)) => assert_eq!(c.perm(4), rep),
            other => panic!("warm class must resolve at admission, got {other:?}"),
        }
        assert!(sched.drained(), "no queued or inflight work remains");
        sched.shutdown();
    }

    #[test]
    fn off_home_lanes_drain_via_steal() {
        let (sched, suite) = sharded_scheduler(4);
        let reps = class_reps(&suite, 3);
        // Every miss lands in lane 3; the lone worker's home lane (0)
        // stays empty, so the only path to an answer is a steal.
        let handles: Vec<TicketHandle> = reps
            .iter()
            .map(|&rep| match sched.submit(CostKind::Gates, rep, None, 3) {
                Submission::Pending(handle) => handle,
                other => panic!("fresh class must queue, got {other:?}"),
            })
            .collect();
        let deadline = Instant::now() + Duration::from_secs(30);
        for (handle, &rep) in handles.iter().zip(&reps) {
            loop {
                if let Some(result) = handle.try_result() {
                    assert_eq!(result.unwrap().perm(4), rep);
                    break;
                }
                assert!(Instant::now() < deadline, "stolen work never resolved");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let counters = sched.counters();
        assert!(counters.steals >= 1, "{counters:?}");
        assert_eq!(counters.searches, reps.len() as u64);
        assert!(sched.drained());
        sched.shutdown();
    }

    #[test]
    fn single_lane_schedulers_never_steal() {
        let (sched, suite, _cache) = scheduler(2);
        let reps = class_reps(&suite, 4);
        let sched_ref = &sched;
        std::thread::scope(|scope| {
            for &rep in &reps {
                scope.spawn(move || sched_ref.request(CostKind::Gates, rep).unwrap());
            }
        });
        assert_eq!(sched.counters().steals, 0, "one lane has no siblings");
        sched.shutdown();
    }

    #[test]
    fn drained_is_false_while_work_is_inflight() {
        let plan = Arc::new(FaultPlan::new(0xD3A1).with_search_delay(Duration::from_millis(300)));
        let (sched, suite) = chaos_scheduler(Arc::clone(&plan), 0);
        assert!(sched.drained(), "fresh scheduler is drained");
        let rep = class_reps(&suite, 1)[0];
        let handle = match sched.submit(CostKind::Gates, rep, None, 0) {
            Submission::Pending(handle) => handle,
            other => panic!("fresh class must queue, got {other:?}"),
        };
        // Queued or mid-search: either way, not drained.
        assert!(!sched.drained());
        let deadline = Instant::now() + Duration::from_secs(30);
        while handle.try_result().is_none() {
            assert!(Instant::now() < deadline, "ticket never resolved");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(sched.drained(), "resolution drains the inflight map");
        sched.shutdown();
    }
}
