//! Service counters: the [`ServeStats`] snapshot, the [`HealthReport`]
//! probe, and the shared field-name tables that keep the wire frame,
//! the JSON rendering, and the Prometheus exposition in lockstep.
//!
//! The latency histogram behind the p50/p99 fields lives in
//! `revsynth-obs` (re-exported here for compatibility).

pub use revsynth_obs::LatencyHistogram;

/// The Prometheus metric kind of a stats field (counters only go up;
/// gauges are point-in-time readings or watermarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// Monotonically increasing over the server's lifetime.
    Counter,
    /// A point-in-time reading (occupancy, quantile, watermark).
    Gauge,
}

impl FieldKind {
    /// The exposition `# TYPE` keyword.
    #[must_use]
    pub fn type_name(self) -> &'static str {
        match self {
            FieldKind::Counter => "counter",
            FieldKind::Gauge => "gauge",
        }
    }
}

/// A point-in-time snapshot of the server's counters, answered over the
/// wire by a stats request.
///
/// Every domain-valid query counts exactly one cache hit or miss, so
/// `cache_hits + cache_misses == requests − (domain-error requests)`
/// for any quiescent snapshot (in-flight requests may be counted on one
/// side but not yet the other). `searches` counts class representatives
/// submitted to the synthesizer — the number the warm path must keep
/// **flat**: a cache hit answers a query with zero searches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// The server's wire count (clients use it to build domain-valid
    /// queries, e.g. the load generator's pool).
    pub wires: u64,
    /// Query requests received (stats/shutdown frames are not counted).
    pub requests: u64,
    /// Queries answered by replaying a cached class circuit.
    pub cache_hits: u64,
    /// Queries whose class was not cached (each one reaches the
    /// scheduler).
    pub cache_misses: u64,
    /// Cache misses that attached to an already in-flight search for the
    /// same canonical representative instead of scheduling their own.
    pub coalesced: u64,
    /// Class representatives submitted to [`Synthesizer::synthesize_many`]
    /// (one per class actually searched, however many requests wanted it).
    ///
    /// [`Synthesizer::synthesize_many`]: revsynth_core::Synthesizer::synthesize_many
    pub searches: u64,
    /// Batches drained by the scheduler's workers.
    pub batches: u64,
    /// Largest batch drained so far.
    pub max_batch: u64,
    /// Cache entries evicted to make room.
    pub evictions: u64,
    /// Query requests answered with an error response.
    pub errors: u64,
    /// Classes currently resident in the cache.
    pub cached_classes: u64,
    /// The cache's configured capacity (entries).
    pub cache_capacity: u64,
    /// Median request service latency, microseconds (bucketed; see
    /// [`LatencyHistogram`]).
    pub p50_latency_us: u64,
    /// 99th-percentile request service latency, microseconds.
    pub p99_latency_us: u64,
    /// Cache misses shed at admission because the miss queue was full
    /// (answered with an `Overloaded` frame, no search queued).
    pub shed: u64,
    /// Queued searches expired because their deadline passed before a
    /// worker reached them (the search was never started).
    pub expired: u64,
    /// Connections refused at accept because the handler limit was
    /// reached (answered with an `Overloaded` frame, then closed).
    pub shed_conns: u64,
    /// Cache entries restored from the boot snapshot (each one a class
    /// whose first query costs zero searches after a restart).
    pub restored: u64,
    /// Complete snapshots written (periodic + shutdown), each one an
    /// atomic temp-file + fsync + rename.
    pub snapshot_writes: u64,
    /// Snapshot records rejected during restore (torn tail, failed
    /// checksum, failed replay validation) — skipped, never served.
    pub snapshot_skipped: u64,
    /// Scheduler workers respawned after a panic (one poisoned search
    /// no longer silently shrinks the worker pool).
    pub worker_restarts: u64,
    /// Cross-core miss-queue steals: an idle worker drained the newer
    /// half of a sibling core's lane instead of sleeping. Zero on a
    /// single-core (single-lane) server.
    pub steals: u64,
}

impl ServeStats {
    /// Number of `u64` words in the wire encoding.
    pub const FIELDS: usize = 22;

    /// Field names, in wire order. **The single source of truth** shared
    /// by [`to_words`](Self::to_words) (by construction — a test pins
    /// the correspondence), [`to_json`](Self::to_json), and the
    /// Prometheus exposition ([`to_prometheus`](Self::to_prometheus)),
    /// so the three renderings can never disagree on names or order.
    pub const FIELD_NAMES: [&'static str; Self::FIELDS] = [
        "wires",
        "requests",
        "cache_hits",
        "cache_misses",
        "coalesced",
        "searches",
        "batches",
        "max_batch",
        "evictions",
        "errors",
        "cached_classes",
        "cache_capacity",
        "p50_latency_us",
        "p99_latency_us",
        "shed",
        "expired",
        "shed_conns",
        "restored",
        "snapshot_writes",
        "snapshot_skipped",
        "worker_restarts",
        "steals",
    ];

    /// Metric kind per field, aligned with [`FIELD_NAMES`](Self::FIELD_NAMES).
    pub const FIELD_KINDS: [FieldKind; Self::FIELDS] = [
        FieldKind::Gauge,   // wires
        FieldKind::Counter, // requests
        FieldKind::Counter, // cache_hits
        FieldKind::Counter, // cache_misses
        FieldKind::Counter, // coalesced
        FieldKind::Counter, // searches
        FieldKind::Counter, // batches
        FieldKind::Gauge,   // max_batch (high-watermark)
        FieldKind::Counter, // evictions
        FieldKind::Counter, // errors
        FieldKind::Gauge,   // cached_classes
        FieldKind::Gauge,   // cache_capacity
        FieldKind::Gauge,   // p50_latency_us
        FieldKind::Gauge,   // p99_latency_us
        FieldKind::Counter, // shed
        FieldKind::Counter, // expired
        FieldKind::Counter, // shed_conns
        FieldKind::Counter, // restored
        FieldKind::Counter, // snapshot_writes
        FieldKind::Counter, // snapshot_skipped
        FieldKind::Counter, // worker_restarts
        FieldKind::Counter, // steals
    ];

    /// The wire encoding order (field order above).
    #[must_use]
    pub fn to_words(&self) -> [u64; Self::FIELDS] {
        [
            self.wires,
            self.requests,
            self.cache_hits,
            self.cache_misses,
            self.coalesced,
            self.searches,
            self.batches,
            self.max_batch,
            self.evictions,
            self.errors,
            self.cached_classes,
            self.cache_capacity,
            self.p50_latency_us,
            self.p99_latency_us,
            self.shed,
            self.expired,
            self.shed_conns,
            self.restored,
            self.snapshot_writes,
            self.snapshot_skipped,
            self.worker_restarts,
            self.steals,
        ]
    }

    /// Inverse of [`to_words`](Self::to_words).
    #[must_use]
    pub fn from_words(words: &[u64; Self::FIELDS]) -> Self {
        ServeStats {
            wires: words[0],
            requests: words[1],
            cache_hits: words[2],
            cache_misses: words[3],
            coalesced: words[4],
            searches: words[5],
            batches: words[6],
            max_batch: words[7],
            evictions: words[8],
            errors: words[9],
            cached_classes: words[10],
            cache_capacity: words[11],
            p50_latency_us: words[12],
            p99_latency_us: words[13],
            shed: words[14],
            expired: words[15],
            shed_conns: words[16],
            restored: words[17],
            snapshot_writes: words[18],
            snapshot_skipped: words[19],
            worker_restarts: words[20],
            steals: words[21],
        }
    }

    /// Cache hit rate over answered queries (0 when nothing was served).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let answered = self.cache_hits + self.cache_misses;
        if answered == 0 {
            0.0
        } else {
            self.cache_hits as f64 / answered as f64
        }
    }

    /// Renders the snapshot as a single-line JSON object, driven by
    /// [`FIELD_NAMES`](Self::FIELD_NAMES) so the key order always
    /// matches the wire encoding; `hit_rate` is appended for
    /// convenience.
    #[must_use]
    pub fn to_json(&self) -> String {
        let words = self.to_words();
        let mut out = String::from("{");
        for (name, value) in Self::FIELD_NAMES.iter().zip(words) {
            out.push_str(&format!("\"{name}\": {value}, "));
        }
        out.push_str(&format!("\"hit_rate\": {:.4}}}", self.hit_rate()));
        out
    }

    /// Appends the snapshot in Prometheus text exposition format, one
    /// `revsynth_<field>` series per wire field, driven by the same
    /// [`FIELD_NAMES`](Self::FIELD_NAMES)/[`FIELD_KINDS`](Self::FIELD_KINDS)
    /// tables as the JSON rendering and the [`FIELDS`](Self::FIELDS)-word
    /// stats frame.
    pub fn to_prometheus(&self, out: &mut String) {
        let words = self.to_words();
        for ((name, kind), value) in Self::FIELD_NAMES.iter().zip(Self::FIELD_KINDS).zip(words) {
            out.push_str(&format!(
                "# HELP revsynth_{name} ServeStats field `{name}` (see the stats frame docs).\n\
                 # TYPE revsynth_{name} {}\n\
                 revsynth_{name} {value}\n",
                kind.type_name()
            ));
        }
    }
}

/// The readiness probe a `0x05 Health` request answers: enough for an
/// external supervisor to tell a freshly booted warm server from a cold
/// one, and a live worker pool from a shrunken one, without parsing the
/// full stats snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Milliseconds since the server started serving.
    pub uptime_ms: u64,
    /// Cache entries restored from the boot snapshot.
    pub restored: u64,
    /// Scheduler workers currently alive (a panicked worker is respawned,
    /// so this should always equal the configured pool size).
    pub live_workers: u64,
    /// Milliseconds since the last complete snapshot write **or**
    /// restore; [`HealthReport::NO_SNAPSHOT`] when snapshotting is off
    /// or nothing has been written yet.
    pub snapshot_age_ms: u64,
}

impl HealthReport {
    /// Number of `u64` words in the wire encoding.
    pub const FIELDS: usize = 4;

    /// Field names, in wire order — same single-source scheme as
    /// [`ServeStats::FIELD_NAMES`].
    pub const FIELD_NAMES: [&'static str; Self::FIELDS] =
        ["uptime_ms", "restored", "live_workers", "snapshot_age_ms"];

    /// Sentinel `snapshot_age_ms`: no snapshot has ever been written.
    pub const NO_SNAPSHOT: u64 = u64::MAX;

    /// The wire encoding order (field order above).
    #[must_use]
    pub fn to_words(&self) -> [u64; Self::FIELDS] {
        [
            self.uptime_ms,
            self.restored,
            self.live_workers,
            self.snapshot_age_ms,
        ]
    }

    /// Inverse of [`to_words`](Self::to_words).
    #[must_use]
    pub fn from_words(words: &[u64; Self::FIELDS]) -> Self {
        HealthReport {
            uptime_ms: words[0],
            restored: words[1],
            live_workers: words[2],
            snapshot_age_ms: words[3],
        }
    }

    /// The age of the last snapshot write, decoded from the sentinel:
    /// `None` when this process has never written one.
    #[must_use]
    pub fn snapshot_age(&self) -> Option<u64> {
        (self.snapshot_age_ms != Self::NO_SNAPSHOT).then_some(self.snapshot_age_ms)
    }

    /// Renders the probe as a single-line JSON object, driven by
    /// [`FIELD_NAMES`](Self::FIELD_NAMES) (`snapshot_age_ms` becomes
    /// `null` when no snapshot exists).
    #[must_use]
    pub fn to_json(&self) -> String {
        let words = self.to_words();
        let rendered: Vec<String> = Self::FIELD_NAMES
            .iter()
            .zip(words)
            .map(|(name, value)| {
                if *name == "snapshot_age_ms" && value == Self::NO_SNAPSHOT {
                    format!("\"{name}\": null")
                } else {
                    format!("\"{name}\": {value}")
                }
            })
            .collect();
        format!("{{{}}}", rendered.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stats value whose fields are pairwise distinct, so any
    /// field-order mixup between renderings is detectable.
    fn distinct_stats() -> ServeStats {
        let mut words = [0u64; ServeStats::FIELDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = 1000 + i as u64;
        }
        ServeStats::from_words(&words)
    }

    #[test]
    fn stats_words_roundtrip() {
        let stats = distinct_stats();
        assert_eq!(ServeStats::from_words(&stats.to_words()), stats);
        let json = stats.to_json();
        for (i, name) in ServeStats::FIELD_NAMES.iter().enumerate() {
            assert!(
                json.contains(&format!("\"{name}\": {}", 1000 + i)),
                "{json}"
            );
        }
    }

    /// Satellite guarantee: the wire frame, the JSON rendering, and the
    /// Prometheus exposition are all driven by `FIELD_NAMES` — same
    /// names, same order, same values — so they can never disagree.
    #[test]
    fn stats_renderings_share_names_order_and_values() {
        let stats = distinct_stats();
        let words = stats.to_words();
        assert_eq!(words.len(), ServeStats::FIELD_NAMES.len());
        assert_eq!(ServeStats::FIELD_KINDS.len(), ServeStats::FIELD_NAMES.len());

        let json = stats.to_json();
        let mut prom = String::new();
        stats.to_prometheus(&mut prom);

        let mut last_json_pos = 0;
        let mut last_prom_pos = 0;
        for (name, value) in ServeStats::FIELD_NAMES.iter().zip(words) {
            // JSON: key present with the wire value, in wire order.
            let key = format!("\"{name}\": {value}");
            let jpos = json.find(&key).unwrap_or_else(|| panic!("{key} in {json}"));
            assert!(jpos >= last_json_pos, "JSON order diverges at {name}");
            last_json_pos = jpos;
            // Exposition: sample line with the wire value, in wire order.
            let line = format!("revsynth_{name} {value}\n");
            let ppos = prom
                .find(&line)
                .unwrap_or_else(|| panic!("{line} in {prom}"));
            assert!(ppos >= last_prom_pos, "exposition order diverges at {name}");
            last_prom_pos = ppos;
        }
        // Every field also carries HELP/TYPE metadata.
        for (name, kind) in ServeStats::FIELD_NAMES.iter().zip(ServeStats::FIELD_KINDS) {
            assert!(prom.contains(&format!("# TYPE revsynth_{name} {}\n", kind.type_name())));
        }
        // from_words really is the inverse mapping for each field —
        // pins FIELD_NAMES[i] to the i-th wire word by perturbation.
        for i in 0..ServeStats::FIELDS {
            let mut perturbed = words;
            perturbed[i] += 1;
            let re = ServeStats::from_words(&perturbed).to_words();
            assert_eq!(
                re,
                perturbed,
                "field {} not positional",
                ServeStats::FIELD_NAMES[i]
            );
        }
    }

    #[test]
    fn health_words_roundtrip_and_render() {
        let health = HealthReport {
            uptime_ms: 12_345,
            restored: 512,
            live_workers: 4,
            snapshot_age_ms: 900,
        };
        assert_eq!(HealthReport::from_words(&health.to_words()), health);
        let json = health.to_json();
        let mut last = 0;
        for (name, value) in HealthReport::FIELD_NAMES.iter().zip(health.to_words()) {
            let key = format!("\"{name}\": {value}");
            let pos = json.find(&key).unwrap_or_else(|| panic!("{key} in {json}"));
            assert!(pos >= last, "health JSON order diverges at {name}");
            last = pos;
        }
        let never = HealthReport {
            snapshot_age_ms: HealthReport::NO_SNAPSHOT,
            ..health
        };
        assert_eq!(HealthReport::from_words(&never.to_words()), never);
        assert!(never.to_json().contains("\"snapshot_age_ms\": null"));
    }

    #[test]
    fn hit_rate_handles_empty_and_full() {
        assert_eq!(ServeStats::default().hit_rate(), 0.0);
        let stats = ServeStats {
            cache_hits: 3,
            cache_misses: 1,
            ..ServeStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }
}
