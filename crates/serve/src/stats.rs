//! Service counters: the [`ServeStats`] snapshot and the latency
//! histogram behind its p50/p99 fields.

use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time snapshot of the server's counters, answered over the
/// wire by a stats request.
///
/// Every domain-valid query counts exactly one cache hit or miss, so
/// `cache_hits + cache_misses == requests − (domain-error requests)`
/// for any quiescent snapshot (in-flight requests may be counted on one
/// side but not yet the other). `searches` counts class representatives
/// submitted to the synthesizer — the number the warm path must keep
/// **flat**: a cache hit answers a query with zero searches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// The server's wire count (clients use it to build domain-valid
    /// queries, e.g. the load generator's pool).
    pub wires: u64,
    /// Query requests received (stats/shutdown frames are not counted).
    pub requests: u64,
    /// Queries answered by replaying a cached class circuit.
    pub cache_hits: u64,
    /// Queries whose class was not cached (each one reaches the
    /// scheduler).
    pub cache_misses: u64,
    /// Cache misses that attached to an already in-flight search for the
    /// same canonical representative instead of scheduling their own.
    pub coalesced: u64,
    /// Class representatives submitted to [`Synthesizer::synthesize_many`]
    /// (one per class actually searched, however many requests wanted it).
    ///
    /// [`Synthesizer::synthesize_many`]: revsynth_core::Synthesizer::synthesize_many
    pub searches: u64,
    /// Batches drained by the scheduler's workers.
    pub batches: u64,
    /// Largest batch drained so far.
    pub max_batch: u64,
    /// Cache entries evicted to make room.
    pub evictions: u64,
    /// Query requests answered with an error response.
    pub errors: u64,
    /// Classes currently resident in the cache.
    pub cached_classes: u64,
    /// The cache's configured capacity (entries).
    pub cache_capacity: u64,
    /// Median request service latency, microseconds (bucketed; see
    /// [`LatencyHistogram`]).
    pub p50_latency_us: u64,
    /// 99th-percentile request service latency, microseconds.
    pub p99_latency_us: u64,
    /// Cache misses shed at admission because the miss queue was full
    /// (answered with an `Overloaded` frame, no search queued).
    pub shed: u64,
    /// Queued searches expired because their deadline passed before a
    /// worker reached them (the search was never started).
    pub expired: u64,
    /// Connections refused at accept because the handler limit was
    /// reached (answered with an `Overloaded` frame, then closed).
    pub shed_conns: u64,
    /// Cache entries restored from the boot snapshot (each one a class
    /// whose first query costs zero searches after a restart).
    pub restored: u64,
    /// Complete snapshots written (periodic + shutdown), each one an
    /// atomic temp-file + fsync + rename.
    pub snapshot_writes: u64,
    /// Snapshot records rejected during restore (torn tail, failed
    /// checksum, failed replay validation) — skipped, never served.
    pub snapshot_skipped: u64,
    /// Scheduler workers respawned after a panic (one poisoned search
    /// no longer silently shrinks the worker pool).
    pub worker_restarts: u64,
}

impl ServeStats {
    /// Number of `u64` words in the wire encoding.
    pub const FIELDS: usize = 21;

    /// The wire encoding order (field order above).
    #[must_use]
    pub fn to_words(&self) -> [u64; Self::FIELDS] {
        [
            self.wires,
            self.requests,
            self.cache_hits,
            self.cache_misses,
            self.coalesced,
            self.searches,
            self.batches,
            self.max_batch,
            self.evictions,
            self.errors,
            self.cached_classes,
            self.cache_capacity,
            self.p50_latency_us,
            self.p99_latency_us,
            self.shed,
            self.expired,
            self.shed_conns,
            self.restored,
            self.snapshot_writes,
            self.snapshot_skipped,
            self.worker_restarts,
        ]
    }

    /// Inverse of [`to_words`](Self::to_words).
    #[must_use]
    pub fn from_words(words: &[u64; Self::FIELDS]) -> Self {
        ServeStats {
            wires: words[0],
            requests: words[1],
            cache_hits: words[2],
            cache_misses: words[3],
            coalesced: words[4],
            searches: words[5],
            batches: words[6],
            max_batch: words[7],
            evictions: words[8],
            errors: words[9],
            cached_classes: words[10],
            cache_capacity: words[11],
            p50_latency_us: words[12],
            p99_latency_us: words[13],
            shed: words[14],
            expired: words[15],
            shed_conns: words[16],
            restored: words[17],
            snapshot_writes: words[18],
            snapshot_skipped: words[19],
            worker_restarts: words[20],
        }
    }

    /// Cache hit rate over answered queries (0 when nothing was served).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let answered = self.cache_hits + self.cache_misses;
        if answered == 0 {
            0.0
        } else {
            self.cache_hits as f64 / answered as f64
        }
    }

    /// Renders the snapshot as a single-line JSON object (field order
    /// matches the wire encoding; `hit_rate` is appended for
    /// convenience).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"wires\": {}, \"requests\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"coalesced\": {}, \"searches\": {}, \"batches\": {}, \
             \"max_batch\": {}, \"evictions\": {}, \"errors\": {}, \
             \"cached_classes\": {}, \"cache_capacity\": {}, \
             \"p50_latency_us\": {}, \"p99_latency_us\": {}, \
             \"shed\": {}, \"expired\": {}, \"shed_conns\": {}, \
             \"restored\": {}, \"snapshot_writes\": {}, \
             \"snapshot_skipped\": {}, \"worker_restarts\": {}, \
             \"hit_rate\": {:.4}}}",
            self.wires,
            self.requests,
            self.cache_hits,
            self.cache_misses,
            self.coalesced,
            self.searches,
            self.batches,
            self.max_batch,
            self.evictions,
            self.errors,
            self.cached_classes,
            self.cache_capacity,
            self.p50_latency_us,
            self.p99_latency_us,
            self.shed,
            self.expired,
            self.shed_conns,
            self.restored,
            self.snapshot_writes,
            self.snapshot_skipped,
            self.worker_restarts,
            self.hit_rate()
        )
    }
}

/// The readiness probe a `0x05 Health` request answers: enough for an
/// external supervisor to tell a freshly booted warm server from a cold
/// one, and a live worker pool from a shrunken one, without parsing the
/// full stats snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Milliseconds since the server started serving.
    pub uptime_ms: u64,
    /// Cache entries restored from the boot snapshot.
    pub restored: u64,
    /// Scheduler workers currently alive (a panicked worker is respawned,
    /// so this should always equal the configured pool size).
    pub live_workers: u64,
    /// Milliseconds since the last complete snapshot write **or**
    /// restore; [`HealthReport::NO_SNAPSHOT`] when snapshotting is off
    /// or nothing has been written yet.
    pub snapshot_age_ms: u64,
}

impl HealthReport {
    /// Number of `u64` words in the wire encoding.
    pub const FIELDS: usize = 4;

    /// Sentinel `snapshot_age_ms`: no snapshot has ever been written.
    pub const NO_SNAPSHOT: u64 = u64::MAX;

    /// The wire encoding order (field order above).
    #[must_use]
    pub fn to_words(&self) -> [u64; Self::FIELDS] {
        [
            self.uptime_ms,
            self.restored,
            self.live_workers,
            self.snapshot_age_ms,
        ]
    }

    /// Inverse of [`to_words`](Self::to_words).
    #[must_use]
    pub fn from_words(words: &[u64; Self::FIELDS]) -> Self {
        HealthReport {
            uptime_ms: words[0],
            restored: words[1],
            live_workers: words[2],
            snapshot_age_ms: words[3],
        }
    }

    /// The age of the last snapshot write, decoded from the sentinel:
    /// `None` when this process has never written one.
    #[must_use]
    pub fn snapshot_age(&self) -> Option<u64> {
        (self.snapshot_age_ms != Self::NO_SNAPSHOT).then_some(self.snapshot_age_ms)
    }

    /// Renders the probe as a single-line JSON object (`snapshot_age_ms`
    /// becomes `null` when no snapshot exists).
    #[must_use]
    pub fn to_json(&self) -> String {
        let age = if self.snapshot_age_ms == Self::NO_SNAPSHOT {
            "null".to_owned()
        } else {
            self.snapshot_age_ms.to_string()
        };
        format!(
            "{{\"uptime_ms\": {}, \"restored\": {}, \"live_workers\": {}, \
             \"snapshot_age_ms\": {age}}}",
            self.uptime_ms, self.restored, self.live_workers
        )
    }
}

/// Number of sub-buckets per power-of-two octave: values within an
/// octave are resolved to 1/8 of the octave, bounding the quantile
/// error at ~12.5%.
const SUBS: u64 = 8;

/// Values below this are direct-indexed (exact, one bucket per value).
const DIRECT: u64 = 16;

/// First octave handled log-linearly (`2^FIRST_OCTAVE == DIRECT`).
const FIRST_OCTAVE: u64 = 4;

/// Bucket count: 16 direct + 60 octaves × 8 sub-buckets covers u64.
const BUCKETS: usize = (DIRECT + (64 - FIRST_OCTAVE) * SUBS) as usize;

/// A lock-free log-linear histogram of microsecond latencies
/// (HDR-histogram-shaped: power-of-two octaves split into `SUBS`
/// linear sub-buckets).
///
/// Recording is one atomic increment; quantiles scan the 496 buckets.
/// Quantile values are bucket **upper bounds**, so reported p50/p99
/// never understate the true quantile by more than one sub-bucket.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }

    fn bucket_of(value_us: u64) -> usize {
        if value_us < DIRECT {
            return value_us as usize;
        }
        let octave = 63 - u64::from(value_us.leading_zeros());
        let sub = (value_us >> (octave - 3)) & (SUBS - 1);
        (DIRECT + (octave - FIRST_OCTAVE) * SUBS + sub) as usize
    }

    /// The largest value mapping to `bucket` (what quantiles report).
    fn bucket_upper_bound(bucket: usize) -> u64 {
        let bucket = bucket as u64;
        if bucket < DIRECT {
            return bucket;
        }
        let rel = bucket - DIRECT;
        let octave = rel / SUBS + FIRST_OCTAVE;
        let sub = rel % SUBS;
        // Sub-bucket `sub` of octave `o` covers
        // [(8+sub)·2^(o−3), (9+sub)·2^(o−3)); widen to u128 because the
        // top octave's bound brushes against 2^64.
        let bound = (u128::from(SUBS + sub + 1) << (octave - 3)) - 1;
        u64::try_from(bound).unwrap_or(u64::MAX)
    }

    /// Records one latency observation.
    pub fn record(&self, value_us: u64) {
        self.buckets[Self::bucket_of(value_us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The value at quantile `q` (0.0..=1.0), or 0 when empty. Reported
    /// as the containing bucket's upper bound.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, clamped into range.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(BUCKETS - 1)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LatencyHistogram({} observations, p50 {} µs, p99 {} µs)",
            self.count(),
            self.quantile(0.5),
            self.quantile(0.99)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_words_roundtrip() {
        let stats = ServeStats {
            wires: 4,
            requests: 1,
            cache_hits: 2,
            cache_misses: 3,
            coalesced: 4,
            searches: 5,
            batches: 6,
            max_batch: 7,
            evictions: 8,
            errors: 9,
            cached_classes: 10,
            cache_capacity: 11,
            p50_latency_us: 12,
            p99_latency_us: 13,
            shed: 14,
            expired: 15,
            shed_conns: 16,
            restored: 17,
            snapshot_writes: 18,
            snapshot_skipped: 19,
            worker_restarts: 20,
        };
        assert_eq!(ServeStats::from_words(&stats.to_words()), stats);
        let json = stats.to_json();
        for field in [
            "\"wires\": 4",
            "\"requests\": 1",
            "\"coalesced\": 4",
            "\"p99_latency_us\": 13",
            "\"shed\": 14",
            "\"expired\": 15",
            "\"shed_conns\": 16",
            "\"restored\": 17",
            "\"snapshot_writes\": 18",
            "\"snapshot_skipped\": 19",
            "\"worker_restarts\": 20",
        ] {
            assert!(json.contains(field), "{json}");
        }
    }

    #[test]
    fn health_words_roundtrip_and_render() {
        let health = HealthReport {
            uptime_ms: 12_345,
            restored: 512,
            live_workers: 4,
            snapshot_age_ms: 900,
        };
        assert_eq!(HealthReport::from_words(&health.to_words()), health);
        let json = health.to_json();
        for field in [
            "\"uptime_ms\": 12345",
            "\"restored\": 512",
            "\"live_workers\": 4",
            "\"snapshot_age_ms\": 900",
        ] {
            assert!(json.contains(field), "{json}");
        }
        let never = HealthReport {
            snapshot_age_ms: HealthReport::NO_SNAPSHOT,
            ..health
        };
        assert_eq!(HealthReport::from_words(&never.to_words()), never);
        assert!(never.to_json().contains("\"snapshot_age_ms\": null"));
    }

    #[test]
    fn hit_rate_handles_empty_and_full() {
        assert_eq!(ServeStats::default().hit_rate(), 0.0);
        let stats = ServeStats {
            cache_hits: 3,
            cache_misses: 1,
            ..ServeStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev_bound = 0;
        for b in 1..BUCKETS {
            let bound = LatencyHistogram::bucket_upper_bound(b);
            assert!(bound > prev_bound, "bucket {b}");
            prev_bound = bound;
        }
        for v in [0u64, 1, 7, 8, 9, 100, 1_000, 1_000_000, u64::MAX] {
            let b = LatencyHistogram::bucket_of(v);
            assert!(b < BUCKETS, "value {v}");
            assert!(LatencyHistogram::bucket_upper_bound(b) >= v, "value {v}");
        }
    }

    #[test]
    fn quantiles_bracket_the_true_value() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        // True p50 is 500; log-linear resolution is 1/8 of the octave.
        assert!((500..=575).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1151).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(0.0) >= 1);
        assert!(h.quantile(1.0) >= 1000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
    }
}
