//! The TCP synthesis server: thread-per-core event loops, non-blocking
//! connection state machines, the stats endpoint and graceful shutdown.
//!
//! A query's hot path is: read frame → decode → canonicalize
//! ([`Symmetries::canonicalize`], ~750 instructions) → [`ClassCache`]
//! lookup → replay the cached representative circuit through the
//! witness ([`replay_for_witness`]) → write frame. No search, no table
//! probe: the warm path's cost is two syscalls and a few microseconds of
//! CPU. Only cache misses reach the [`Scheduler`], where concurrent
//! misses for one class coalesce into a single batched search.
//!
//! # Horizontal structure
//!
//! The server runs [`ServeConfig::cores`] independent **event loops**,
//! each pinned to its CPU and owning its own listener. On Linux the
//! listeners share one port via `SO_REUSEPORT` (raw syscalls in
//! `revsynth_mmap::net`, same std-only pattern as the mmap path) so the
//! kernel load-balances accepts across cores; elsewhere the loops share
//! a single std listener. Readiness comes from `epoll(7)` where
//! available, with a portable scan-loop fallback over non-blocking
//! sockets ([`ServeConfig::portable_poll`] forces it for tests).
//!
//! Connections are non-blocking state machines, not threads: a
//! [`FrameReader`] reassembles trickled request frames across readiness
//! ticks, a [`FrameWriter`] resumes partially written responses, and a
//! cache miss parks the connection on a scheduler ticket
//! ([`Scheduler::submit`]) instead of blocking the loop — the core
//! keeps serving its other connections while the batch search runs.
//! Each core submits misses to its own scheduler lane; an idle worker
//! steals from the longest sibling lane only on imbalance.
//!
//! **Warm restarts**: with a snapshot path configured, [`Server::bind`]
//! restores the class cache from the checksummed on-disk snapshot
//! before accepting a single connection — every record is validated
//! (checksum, then replay against its representative) and corrupt ones
//! are skipped and counted; an unreadable snapshot is quarantined to
//! `<path>.corrupt` and the server boots cold. A background thread
//! re-snapshots the cache on an interval, and graceful shutdown writes
//! one final snapshot after the scheduler drains, so the next boot is
//! as warm as this one was. Every write is atomic (temp file + fsync +
//! rename), so a SIGKILL at any instant costs at most the work since
//! the previous snapshot — never the snapshot itself.
//!
//! Shutdown: any client may send a shutdown frame. The flag flips and
//! every core loop winds down: no new accepts, no new frames read,
//! in-flight tickets are served to completion and their responses
//! flushed. Only after **every** core's loop has exited — no core holds
//! a queued or in-flight ticket — does the scheduler drain and the
//! final snapshot get written, so the file on disk reflects every
//! search any core completed. [`Server::run`] then returns the final
//! [`ServeStats`].
//!
//! [`Symmetries::canonicalize`]: revsynth_canon::Symmetries::canonicalize
//! [`replay_for_witness`]: revsynth_canon::replay_for_witness

use std::io;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use revsynth_canon::{replay_for_witness, Canonicalized};
use revsynth_circuit::CostKind;
use revsynth_core::{SearchOptions, SynthesisSuite};
use revsynth_mmap::net;
use revsynth_obs::{Counter, Gauge, Histogram, Registry, SpanIds, Stage, Trace, TraceRing};
use revsynth_perm::Perm;

use crate::cache::ClassCache;
use crate::fault::FaultPlan;
use crate::protocol::{self, write_frame, FrameReader, FrameWriter, Request, Response};
use crate::scheduler::{
    Scheduler, SchedulerMetrics, SchedulerOptions, ServeError, Submission, TicketHandle,
};
use crate::snapshot::{self, RestoreOutcome, SnapshotRecord};
use crate::stats::{HealthReport, LatencyHistogram, ServeStats};

/// How long an idle event loop sleeps in `epoll_wait` before re-checking
/// the shutdown flag. Bounds shutdown latency; incoming traffic wakes
/// the loop immediately regardless.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Wait bound during shutdown wind-down: the loop must keep re-checking
/// the write-stall grace clock even with no readiness events.
const BUSY_WAIT_MS: i32 = 1;

/// Tick while any connection holds an in-flight ticket: tickets are
/// resolved by polling (they have no file descriptor epoll could watch),
/// and a millisecond-granularity `epoll_wait` timeout would add up to a
/// full millisecond of latency to every cache miss. Instead the loop
/// polls readiness without blocking and sleeps this long when idle —
/// short enough to keep miss latency close to the search time, long
/// enough that the poll steals only a few percent of the CPU a search
/// worker needs on a saturated host.
const TICKET_POLL_TICK: Duration = Duration::from_micros(100);

/// The scan-fallback tick: without epoll the loop cannot be woken by
/// readiness, so it polls every socket at this cadence.
const SCAN_TICK: Duration = Duration::from_millis(1);

/// Scan-fallback tick with no connections at all (accept latency only).
const SCAN_IDLE_TICK: Duration = Duration::from_millis(10);

/// How long shutdown waits for a write-stalled peer (queued response
/// bytes, no in-flight ticket) to drain before force-closing it. A
/// connection waiting on a ticket is never force-closed — searches
/// terminate, and its answer belongs in the final snapshot.
const SHUTDOWN_WRITE_GRACE: Duration = Duration::from_secs(5);

/// The readiness token registered for a core's listener.
const LISTENER_TOKEN: u64 = u64::MAX;

/// Capacity of the rolling all-requests trace ring (served by the
/// `Traces` frame; [`render_trace_json`] bounds the reply to the frame
/// cap, so the ring may hold more traces than one reply can carry).
const TRACE_RING_CAPACITY: usize = 1024;

/// Capacity of the slow-query trace ring (served by the `SlowQueries`
/// frame, bounded the same way).
const SLOW_RING_CAPACITY: usize = 256;

/// The unified server configuration: one builder covering core count,
/// listeners, cache, queues, deadlines, faults, snapshots and
/// observability.
///
/// Construct with [`ServeConfig::new`] (or `default()`) and chain
/// setters; every field is also public for struct-literal updates.
/// [`Server::bind`] accepts `&ServeConfig`, `ServeConfig`, or (for one
/// release) the deprecated [`ServerConfig`].
///
/// ```
/// # use revsynth_serve::ServeConfig;
/// let config = ServeConfig::new().cores(2).cache_capacity(1 << 16).max_queue(64);
/// assert_eq!(config.cores, 2);
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Loopback port to bind (0 picks a free port; see
    /// [`Server::local_addr`]).
    pub port: u16,
    /// Core-pinned event loops, each with its own listener and its own
    /// scheduler miss lane. `1` (the default) serves everything from a
    /// single loop; values are clamped up to 1. See
    /// [`available_parallelism`](std::thread::available_parallelism)
    /// for a hardware-matched choice.
    pub cores: usize,
    /// Scheduler worker threads (each runs batched searches).
    pub workers: usize,
    /// Class-cache capacity in entries. The shard count scales with
    /// [`cores`](Self::cores) so per-core loops don't serialize on
    /// cache locks.
    pub cache_capacity: usize,
    /// Search options for the batched synthesizer calls (thread count,
    /// invariant gate, probe depth).
    pub search: SearchOptions,
    /// Scheduler group-commit window: a worker that finds a queued miss
    /// waits this long before draining, so near-simultaneous misses
    /// form one batch and same-class misses reliably coalesce. Zero
    /// (the default) drains immediately — lowest cold latency, batches
    /// only form under genuine queueing.
    pub batch_linger: Duration,
    /// Maximum queued (not yet drained) class searches per cost model;
    /// misses beyond this are shed with an `Overloaded` frame instead
    /// of queueing unboundedly. `0` (the default) = unbounded. Cache
    /// hits are unaffected — the warm path keeps serving at any queue
    /// depth.
    pub max_queue: usize,
    /// Maximum concurrently served connections across all cores;
    /// accepts beyond this are answered with one serialized
    /// `Overloaded` frame and closed. `0` (the default) = unbounded.
    pub max_conns: usize,
    /// The retry hint carried by `Overloaded` responses, milliseconds.
    pub retry_after_ms: u32,
    /// Deterministic fault injection at the scheduler's search boundary
    /// (chaos tests, `loadgen --overload`); `None` in production.
    pub faults: Option<Arc<FaultPlan>>,
    /// Snapshot path: restore the cache from it at boot (tolerating
    /// torn tails and bitflips), snapshot to it on graceful shutdown
    /// and, when [`snapshot_interval`](Self::snapshot_interval) is set,
    /// periodically. `None` (the default) disables persistence.
    pub snapshot: Option<PathBuf>,
    /// How often the background snapshotter re-writes the snapshot;
    /// `None` (the default) snapshots only at graceful shutdown.
    /// Ignored without a [`snapshot`](Self::snapshot) path.
    pub snapshot_interval: Option<Duration>,
    /// Requests whose total handling time reaches this many microseconds
    /// are copied into the slow-query ring (retrievable with a
    /// `SlowQueries` frame). `0` (the default) captures none. Has no
    /// effect when [`instrumentation`](Self::instrumentation) is off.
    pub slow_query_us: u64,
    /// Master switch for per-request observability: trace spans, the
    /// per-stage latency histograms, engine profiling counters and the
    /// trace rings. On by default; turning it off removes every
    /// per-request `Instant` read and ring write from the hot path (the
    /// `bench_serve` `obs_overhead` phase measures the difference). The
    /// metrics endpoint itself keeps working either way — the
    /// [`ServeStats`] view is maintained regardless.
    pub instrumentation: bool,
    /// Forces the portable scan-poll readiness backend even where epoll
    /// is available. The fallback is automatic on platforms without
    /// epoll; this knob exists so tests exercise that path everywhere.
    pub portable_poll: bool,
}

impl Default for ServeConfig {
    /// One core, one worker, a 64k-class cache, serial searches, no
    /// linger, unbounded queue and connections, a 100 ms retry hint, no
    /// fault injection, an ephemeral port.
    fn default() -> Self {
        ServeConfig {
            port: 0,
            cores: 1,
            workers: 1,
            cache_capacity: 1 << 16,
            search: SearchOptions::new().threads(1),
            batch_linger: Duration::ZERO,
            max_queue: 0,
            max_conns: 0,
            retry_after_ms: 100,
            faults: None,
            snapshot: None,
            snapshot_interval: None,
            slow_query_us: 0,
            instrumentation: true,
            portable_poll: false,
        }
    }
}

impl ServeConfig {
    /// The default configuration (see [`Default`]).
    #[must_use]
    pub fn new() -> Self {
        ServeConfig::default()
    }

    /// Sets the loopback port ([`port`](Self::port)).
    #[must_use]
    pub fn port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Sets the event-loop count ([`cores`](Self::cores)).
    #[must_use]
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the scheduler worker count ([`workers`](Self::workers)).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the class-cache capacity
    /// ([`cache_capacity`](Self::cache_capacity)).
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the search options ([`search`](Self::search)).
    #[must_use]
    pub fn search(mut self, search: SearchOptions) -> Self {
        self.search = search;
        self
    }

    /// Sets the group-commit window ([`batch_linger`](Self::batch_linger)).
    #[must_use]
    pub fn batch_linger(mut self, linger: Duration) -> Self {
        self.batch_linger = linger;
        self
    }

    /// Sets the per-model miss-queue bound ([`max_queue`](Self::max_queue)).
    #[must_use]
    pub fn max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    /// Sets the connection cap ([`max_conns`](Self::max_conns)).
    #[must_use]
    pub fn max_conns(mut self, max_conns: usize) -> Self {
        self.max_conns = max_conns;
        self
    }

    /// Sets the overload retry hint ([`retry_after_ms`](Self::retry_after_ms)).
    #[must_use]
    pub fn retry_after_ms(mut self, ms: u32) -> Self {
        self.retry_after_ms = ms;
        self
    }

    /// Sets the fault-injection plan ([`faults`](Self::faults)).
    #[must_use]
    pub fn faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the snapshot path ([`snapshot`](Self::snapshot)).
    #[must_use]
    pub fn snapshot(mut self, path: Option<PathBuf>) -> Self {
        self.snapshot = path;
        self
    }

    /// Sets the periodic snapshot interval
    /// ([`snapshot_interval`](Self::snapshot_interval)).
    #[must_use]
    pub fn snapshot_interval(mut self, every: Option<Duration>) -> Self {
        self.snapshot_interval = every;
        self
    }

    /// Sets the slow-query capture threshold
    /// ([`slow_query_us`](Self::slow_query_us)).
    #[must_use]
    pub fn slow_query_us(mut self, us: u64) -> Self {
        self.slow_query_us = us;
        self
    }

    /// Toggles per-request observability
    /// ([`instrumentation`](Self::instrumentation)).
    #[must_use]
    pub fn instrumentation(mut self, on: bool) -> Self {
        self.instrumentation = on;
        self
    }

    /// Forces the scan-poll readiness backend
    /// ([`portable_poll`](Self::portable_poll)).
    #[must_use]
    pub fn portable_poll(mut self, on: bool) -> Self {
        self.portable_poll = on;
        self
    }
}

impl From<&ServeConfig> for ServeConfig {
    fn from(config: &ServeConfig) -> ServeConfig {
        config.clone()
    }
}

/// The pre-PR-10 server configuration, superseded by [`ServeConfig`]
/// (every field carries over by name; `ServeConfig` adds `cores` and
/// the readiness-backend knob). [`Server::bind`] still accepts it
/// directly for one release.
#[deprecated(note = "use `ServeConfig`; every field carries over by name")]
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// See [`ServeConfig::port`].
    pub port: u16,
    /// See [`ServeConfig::workers`].
    pub workers: usize,
    /// See [`ServeConfig::cache_capacity`].
    pub cache_capacity: usize,
    /// See [`ServeConfig::search`].
    pub search: SearchOptions,
    /// See [`ServeConfig::batch_linger`].
    pub batch_linger: Duration,
    /// See [`ServeConfig::max_queue`].
    pub max_queue: usize,
    /// See [`ServeConfig::max_conns`].
    pub max_conns: usize,
    /// See [`ServeConfig::retry_after_ms`].
    pub retry_after_ms: u32,
    /// See [`ServeConfig::faults`].
    pub faults: Option<Arc<FaultPlan>>,
    /// See [`ServeConfig::snapshot`].
    pub snapshot: Option<PathBuf>,
    /// See [`ServeConfig::snapshot_interval`].
    pub snapshot_interval: Option<Duration>,
    /// See [`ServeConfig::slow_query_us`].
    pub slow_query_us: u64,
    /// See [`ServeConfig::instrumentation`].
    pub instrumentation: bool,
}

#[allow(deprecated)]
impl Default for ServerConfig {
    /// Matches [`ServeConfig::default`] field for field.
    fn default() -> Self {
        let d = ServeConfig::default();
        ServerConfig {
            port: d.port,
            workers: d.workers,
            cache_capacity: d.cache_capacity,
            search: d.search,
            batch_linger: d.batch_linger,
            max_queue: d.max_queue,
            max_conns: d.max_conns,
            retry_after_ms: d.retry_after_ms,
            faults: d.faults,
            snapshot: d.snapshot,
            snapshot_interval: d.snapshot_interval,
            slow_query_us: d.slow_query_us,
            instrumentation: d.instrumentation,
        }
    }
}

#[allow(deprecated)]
impl From<&ServerConfig> for ServeConfig {
    fn from(old: &ServerConfig) -> ServeConfig {
        ServeConfig {
            port: old.port,
            cores: 1,
            workers: old.workers,
            cache_capacity: old.cache_capacity,
            search: old.search,
            batch_linger: old.batch_linger,
            max_queue: old.max_queue,
            max_conns: old.max_conns,
            retry_after_ms: old.retry_after_ms,
            faults: old.faults.clone(),
            snapshot: old.snapshot.clone(),
            snapshot_interval: old.snapshot_interval,
            slow_query_us: old.slow_query_us,
            instrumentation: old.instrumentation,
            portable_poll: false,
        }
    }
}

#[allow(deprecated)]
impl From<ServerConfig> for ServeConfig {
    fn from(old: ServerConfig) -> ServeConfig {
        ServeConfig::from(&old)
    }
}

/// Observability state shared by every core: the metrics registry
/// and its handles, the trace rings and the span-id generator.
struct Observability {
    /// Per-request tracing on/off ([`ServeConfig::instrumentation`]).
    enabled: bool,
    /// Slow-query threshold, µs; `0` captures none.
    slow_query_us: u64,
    registry: Registry,
    /// Per-stage span durations, indexed by [`Stage::index`]. Only
    /// stages that actually ran (nonzero µs) are recorded, so a cache
    /// hit does not drag the search stages' quantiles to zero.
    stage_latency: [Histogram; Stage::COUNT],
    /// Snapshot write durations (one sample per completed write).
    snapshot_write_us: Histogram,
    /// Duration of the restore-at-boot pass, µs (0 = cold boot).
    snapshot_restore_us: Gauge,
    /// Admitted-but-undrained searches per cost model, refreshed at
    /// scrape time; indexed by [`CostKind::code`].
    queue_depth: [Gauge; CostKind::ALL.len()],
    /// Scheduler workers inside their supervised loop, refreshed at
    /// scrape time.
    live_workers: Gauge,
    /// Resident cache entries per shard, refreshed at scrape time.
    shard_entries: Vec<Gauge>,
    /// Rolling ring of the most recent request traces, slow or not
    /// (retrievable with a `Traces` frame).
    traces: TraceRing,
    /// Ring of requests that crossed the slow-query threshold.
    slow: TraceRing,
    span_ids: SpanIds,
}

impl Observability {
    fn new(config: &ServeConfig, shards: usize, seed: u64) -> Self {
        let registry = Registry::default();
        let stage_latency = Stage::ALL.map(|stage| {
            registry.histogram(
                "revsynth_stage_latency_us",
                &[("stage", stage.name())],
                "Per-request pipeline span duration by stage, microseconds",
            )
        });
        let queue_depth = CostKind::ALL.map(|kind| {
            registry.gauge(
                "revsynth_queue_depth",
                &[("model", kind.as_str())],
                "Admitted but not yet drained class searches per cost model",
            )
        });
        let shard_entries = (0..shards)
            .map(|i| {
                let shard = i.to_string();
                registry.gauge(
                    "revsynth_cache_shard_entries",
                    &[("shard", &shard)],
                    "Resident class-cache entries per shard",
                )
            })
            .collect();
        Observability {
            enabled: config.instrumentation,
            slow_query_us: config.slow_query_us,
            stage_latency,
            snapshot_write_us: registry.histogram(
                "revsynth_snapshot_write_us",
                &[],
                "Duration of each completed cache snapshot write, microseconds",
            ),
            snapshot_restore_us: registry.gauge(
                "revsynth_snapshot_restore_us",
                &[],
                "Duration of the restore-at-boot pass, microseconds (0 on a cold boot)",
            ),
            queue_depth,
            live_workers: registry.gauge(
                "revsynth_live_workers",
                &[],
                "Scheduler workers currently inside their supervised loop",
            ),
            shard_entries,
            traces: TraceRing::new(TRACE_RING_CAPACITY),
            slow: TraceRing::new(SLOW_RING_CAPACITY),
            span_ids: SpanIds::new(seed),
            registry,
        }
    }

    /// Registry handles for the scheduler's engine profiling, when
    /// instrumentation is on.
    fn scheduler_metrics(&self) -> Option<SchedulerMetrics> {
        self.enabled.then(|| SchedulerMetrics {
            considered: self.registry.counter(
                "revsynth_search_considered",
                &[],
                "Candidate circuits considered by the engine's frame scans",
            ),
            gated: self.registry.counter(
                "revsynth_search_gated",
                &[],
                "Candidates rejected by the invariant gate before canonicalization",
            ),
            canonicalized: self.registry.counter(
                "revsynth_search_canonicalized",
                &[],
                "Candidates canonicalized (survived the invariant gate)",
            ),
            probed: self.registry.counter(
                "revsynth_search_probed",
                &[],
                "Meet-in-the-middle table probes issued",
            ),
            batch_search_us: self.registry.histogram(
                "revsynth_batch_search_us",
                &[],
                "Wall-clock duration of each batched engine call, microseconds",
            ),
        })
    }

    /// Records a completed request trace: per-stage histograms, the
    /// rolling ring, and — past the threshold — the slow-query ring.
    fn finish(&self, trace: &Trace) {
        for stage in Stage::ALL {
            let us = trace.stage_us(stage);
            if us > 0 {
                self.stage_latency[stage.index()].record(us);
            }
        }
        self.traces.push(trace);
        if self.slow_query_us > 0 && trace.total_us >= self.slow_query_us {
            self.slow.push(trace);
        }
    }
}

/// Per-core metric handles, each in its **own** registry so the hot
/// path touches core-local atomics only; [`render_metrics`] merges the
/// per-core registries with the shared one at scrape time
/// ([`Registry::render_merged`]), deduplicating family headers.
struct CoreObs {
    registry: Registry,
    /// Query requests handled by this core's event loop.
    requests: Counter,
    /// Connections this core's listener accepted.
    accepted: Counter,
}

impl CoreObs {
    fn new(core: usize) -> Self {
        let registry = Registry::new();
        let label = core.to_string();
        let requests = registry.counter(
            "revsynth_core_requests",
            &[("core", &label)],
            "Query requests handled per event-loop core",
        );
        let accepted = registry.counter(
            "revsynth_core_accepted",
            &[("core", &label)],
            "Connections accepted per event-loop core",
        );
        CoreObs {
            registry,
            requests,
            accepted,
        }
    }
}

/// Microseconds elapsed since `start`, saturating.
fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Microseconds from `a` to `b` (zero if `b` is not later), saturating.
/// Used to chain span boundaries without re-reading the clock.
fn us_between(a: Instant, b: Instant) -> u64 {
    u64::try_from(b.duration_since(a).as_micros()).unwrap_or(u64::MAX)
}

/// What restore-on-boot found at the snapshot path (for operator
/// display; the same numbers feed [`ServeStats::restored`] and
/// [`ServeStats::snapshot_skipped`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RestoreSummary {
    /// Records validated and inserted into the cache.
    pub restored: u64,
    /// Records rejected (torn tail, failed checksum, failed replay or
    /// canonicality validation) — skipped, never served.
    pub skipped: u64,
    /// Where an unreadable snapshot was quarantined, if it was; the
    /// server booted cold.
    pub quarantined: Option<PathBuf>,
    /// The rendered reason for quarantine, when one happened.
    pub quarantine_reason: Option<String>,
}

/// Shared state every core's event loop sees.
struct Shared {
    suite: Arc<SynthesisSuite>,
    cache: Arc<ClassCache>,
    scheduler: Scheduler,
    requests: AtomicU64,
    errors: AtomicU64,
    shed_conns: AtomicU64,
    /// Connections currently open across all cores (the `max_conns`
    /// accounting).
    open_conns: AtomicU64,
    max_conns: usize,
    retry_after_ms: u32,
    latency: LatencyHistogram,
    shutdown: AtomicBool,
    addr: SocketAddr,
    started: Instant,
    /// Snapshot path when persistence is on; `None` makes every
    /// snapshot call a no-op.
    snapshot_path: Option<PathBuf>,
    /// Fault plan, consulted for injected snapshot-write pauses.
    faults: Option<Arc<FaultPlan>>,
    restored: AtomicU64,
    snapshot_writes: AtomicU64,
    snapshot_skipped: AtomicU64,
    /// When the last successful snapshot write finished (`None` until
    /// the first one; restore-at-boot does not count — the probe
    /// reports the age of *this process's* persistence, not the
    /// previous incarnation's).
    last_snapshot: Mutex<Option<Instant>>,
    /// Metrics registry, trace rings and span-id state.
    obs: Observability,
    /// Per-core counters, one registry per event loop.
    core_obs: Vec<CoreObs>,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn snapshot(&self) -> ServeStats {
        let cache = self.cache.counters();
        let sched = self.scheduler.counters();
        ServeStats {
            wires: self.suite.wires() as u64,
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            coalesced: sched.coalesced,
            searches: sched.searches,
            batches: sched.batches,
            max_batch: sched.max_batch,
            evictions: cache.evictions,
            errors: self.errors.load(Ordering::Relaxed),
            cached_classes: cache.len,
            cache_capacity: cache.capacity,
            p50_latency_us: self.latency.quantile(0.5),
            p99_latency_us: self.latency.quantile(0.99),
            shed: sched.shed_total(),
            expired: sched.expired_total(),
            shed_conns: self.shed_conns.load(Ordering::Relaxed),
            restored: self.restored.load(Ordering::Relaxed),
            snapshot_writes: self.snapshot_writes.load(Ordering::Relaxed),
            snapshot_skipped: self.snapshot_skipped.load(Ordering::Relaxed),
            worker_restarts: sched.worker_restarts,
            steals: sched.steals,
        }
    }

    fn health(&self) -> HealthReport {
        let snapshot_age_ms = lock(&self.last_snapshot).map_or(HealthReport::NO_SNAPSHOT, |t| {
            t.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
        });
        HealthReport {
            uptime_ms: self.started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
            restored: self.restored.load(Ordering::Relaxed),
            live_workers: self.scheduler.live_workers(),
            snapshot_age_ms,
        }
    }
}

/// Writes one snapshot of the current cache contents, if persistence is
/// on. A write failure is counted as a server error and the previous
/// snapshot (if any) stays in place — persistence degrades, serving
/// does not.
fn write_snapshot_now(shared: &Shared) {
    let Some(path) = shared.snapshot_path.as_deref() else {
        return;
    };
    let records: Vec<SnapshotRecord> = shared
        .cache
        .export()
        .into_iter()
        .map(|(kind, rep, circuit)| SnapshotRecord { kind, rep, circuit })
        .collect();
    let pause = shared
        .faults
        .as_deref()
        .and_then(FaultPlan::next_snapshot_delay);
    let write_start = Instant::now();
    match snapshot::write_snapshot_paced(path, shared.suite.wires(), &records, pause) {
        Ok(_) => {
            shared.obs.snapshot_write_us.record(elapsed_us(write_start));
            shared.snapshot_writes.fetch_add(1, Ordering::Relaxed);
            *lock(&shared.last_snapshot) = Some(Instant::now());
        }
        Err(_) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A bound (not yet running) synthesis server.
pub struct Server {
    /// One listener per core: distinct `SO_REUSEPORT` sockets where
    /// available, clones of a single std listener otherwise.
    listeners: Vec<TcpListener>,
    shared: Arc<Shared>,
    snapshot_interval: Option<Duration>,
    portable_poll: bool,
    restore_summary: RestoreSummary,
}

/// Handle to a server running on a background thread
/// ([`Server::spawn`]); joining returns the final stats.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: JoinHandle<io::Result<ServeStats>>,
}

impl ServerHandle {
    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down and returns its final stats.
    ///
    /// # Errors
    ///
    /// Propagates a core loop's I/O error, if one died on it; a
    /// panicked server thread is reported as a typed I/O error (and
    /// counted), never re-panicked into the caller.
    pub fn join(self) -> io::Result<ServeStats> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => {
                self.shared.errors.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::other("server thread panicked"))
            }
        }
    }
}

/// Binds one listener per core. Multi-core servers try `SO_REUSEPORT`
/// first (kernel-balanced accepts, no shared accept lock); if any
/// listener in the set cannot be created that way — non-Linux, or the
/// kernel refused — every core falls back to a clone of one std
/// listener and shares its accept queue.
fn bind_listeners(port: u16, cores: usize) -> io::Result<(Vec<TcpListener>, SocketAddr)> {
    let mut listeners: Vec<TcpListener> = Vec::with_capacity(cores);
    if cores > 1 {
        if let Some(first) = net::reuseport_listener(port) {
            if let Ok(addr) = first.local_addr() {
                let mut rest = Vec::with_capacity(cores - 1);
                for _ in 1..cores {
                    match net::reuseport_listener(addr.port()) {
                        Some(l) => rest.push(l),
                        None => {
                            rest.clear();
                            break;
                        }
                    }
                }
                if rest.len() == cores - 1 {
                    listeners.push(first);
                    listeners.append(&mut rest);
                }
            }
        }
    }
    let addr = if listeners.is_empty() {
        let first = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
        let addr = first.local_addr()?;
        for _ in 1..cores {
            listeners.push(first.try_clone()?);
        }
        listeners.insert(0, first);
        addr
    } else {
        listeners[0].local_addr()?
    };
    for listener in &listeners {
        listener.set_nonblocking(true)?;
    }
    Ok((listeners, addr))
}

impl Server {
    /// Binds one listener per configured core and starts the scheduler
    /// workers. Accepts a [`ServeConfig`] by value or reference (or,
    /// for one release, the deprecated [`ServerConfig`]).
    ///
    /// Queries carry a per-request cost model; the suite's quantum and
    /// depth engines are generated lazily on the first query that needs
    /// them, so a gates-only workload pays nothing for the siblings.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (e.g. the port is taken).
    pub fn bind(suite: Arc<SynthesisSuite>, config: impl Into<ServeConfig>) -> io::Result<Server> {
        let config: ServeConfig = config.into();
        let cores = config.cores.max(1);
        let (listeners, addr) = bind_listeners(config.port, cores)?;
        // Cache shards scale with cores so per-core loops don't
        // serialize on shard mutexes (8 shards per core, the pre-PR-10
        // default at one core).
        let cache = Arc::new(ClassCache::with_shards(config.cache_capacity, cores * 8));
        // Restore before the first accept: a warm restart serves its
        // first query from the restored cache. Nothing here can fail
        // the boot — a missing snapshot is a cold start, an unreadable
        // one is quarantined and *then* a cold start.
        let obs = Observability::new(&config, cache.shard_lens().len(), u64::from(addr.port()));
        let mut restore_summary = RestoreSummary::default();
        let restore_start = Instant::now();
        if let Some(path) = config.snapshot.as_deref() {
            match snapshot::restore(path, suite.wires()) {
                RestoreOutcome::Missing => {}
                RestoreOutcome::Restored { records, skipped } => {
                    restore_summary.skipped = skipped;
                    for record in records {
                        // Belt over the format's suspenders: only
                        // canonical representatives are legal cache
                        // keys (a non-canonical key would never be
                        // looked up, and a *forged* one must not be).
                        if suite.sym().canonical(record.rep) == record.rep {
                            cache.insert(record.kind, record.rep, record.circuit);
                            restore_summary.restored += 1;
                        } else {
                            restore_summary.skipped += 1;
                        }
                    }
                }
                RestoreOutcome::Quarantined { error, quarantine } => {
                    restore_summary.quarantine_reason = Some(error.to_string());
                    restore_summary.quarantined = quarantine;
                }
            }
            obs.snapshot_restore_us.set(elapsed_us(restore_start));
        }
        let scheduler = Scheduler::with_options(
            Arc::clone(&suite),
            Arc::clone(&cache),
            config.workers,
            config.search,
            SchedulerOptions {
                linger: config.batch_linger,
                max_queue: config.max_queue,
                retry_after_ms: config.retry_after_ms,
                faults: config.faults.clone(),
                metrics: obs.scheduler_metrics(),
                // One miss lane per core: each event loop enqueues to
                // its own lane; workers steal across lanes only on
                // imbalance.
                shards: cores,
            },
        );
        Ok(Server {
            listeners,
            snapshot_interval: config.snapshot_interval,
            portable_poll: config.portable_poll,
            shared: Arc::new(Shared {
                suite,
                cache,
                scheduler,
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                shed_conns: AtomicU64::new(0),
                open_conns: AtomicU64::new(0),
                max_conns: config.max_conns,
                retry_after_ms: config.retry_after_ms,
                latency: LatencyHistogram::new(),
                shutdown: AtomicBool::new(false),
                addr,
                started: Instant::now(),
                snapshot_path: config.snapshot.clone(),
                faults: config.faults.clone(),
                restored: AtomicU64::new(restore_summary.restored),
                snapshot_writes: AtomicU64::new(0),
                snapshot_skipped: AtomicU64::new(restore_summary.skipped),
                last_snapshot: Mutex::new(None),
                obs,
                core_obs: (0..cores).map(CoreObs::new).collect(),
            }),
            restore_summary,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// What restore-on-boot found (all zeroes when no snapshot path was
    /// configured or no snapshot existed).
    #[must_use]
    pub fn restore_summary(&self) -> &RestoreSummary {
        &self.restore_summary
    }

    /// Runs the per-core event loops until a shutdown request arrives,
    /// then drains every core, the scheduler, and the snapshotter, and
    /// returns the final stats snapshot.
    ///
    /// # Errors
    ///
    /// Propagates a core loop's fatal I/O failure (per-connection
    /// errors are contained in their state machines).
    pub fn run(self) -> io::Result<ServeStats> {
        let Server {
            listeners,
            shared,
            snapshot_interval,
            portable_poll,
            restore_summary: _,
        } = self;
        // The background snapshotter: wakes every poll tick (so
        // shutdown is prompt), writes when the interval has elapsed.
        let snapshotter: Option<JoinHandle<()>> = match snapshot_interval {
            Some(every) if shared.snapshot_path.is_some() => {
                let shared = Arc::clone(&shared);
                Some(std::thread::spawn(move || {
                    let mut last = Instant::now();
                    loop {
                        std::thread::sleep(POLL_INTERVAL.min(every));
                        if shared.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        if last.elapsed() >= every {
                            write_snapshot_now(&shared);
                            last = Instant::now();
                        }
                    }
                }))
            }
            _ => None,
        };
        let cores = listeners.len();
        let mut loops = Vec::with_capacity(cores);
        for (core, listener) in listeners.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            loops.push(std::thread::spawn(move || {
                core_loop(&shared, listener, core, cores, portable_poll)
            }));
        }
        let mut accept_error: Option<io::Error> = None;
        for handle in loops {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => accept_error = Some(e),
                Err(_) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Drain order is the crash-safety contract: every core's loop
        // has exited — no core still holds an in-flight ticket or an
        // unread frame — before the scheduler drains and fails what
        // remains queued, and only THEN is the final snapshot cut. The
        // snapshot therefore sees every search any core completed, and
        // the file on disk is the warmest state this process ever had.
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.scheduler.shutdown();
        debug_assert!(
            shared.scheduler.drained(),
            "scheduler still holds tickets after every core drained"
        );
        if let Some(handle) = snapshotter {
            let _ = handle.join();
        }
        write_snapshot_now(&shared);
        match accept_error {
            Some(e) => Err(e),
            None => Ok(shared.snapshot()),
        }
    }

    /// Runs the server on a background thread; the returned handle
    /// exposes the bound address and joins to the final stats.
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shared = Arc::clone(&self.shared);
        ServerHandle {
            addr,
            shared,
            thread: std::thread::spawn(move || self.run()),
        }
    }
}

/// The raw descriptor for epoll registration (unix only; the epoll
/// backend cannot be constructed elsewhere, so the stub is never
/// meaningfully called).
#[cfg(unix)]
fn raw_fd<T: std::os::fd::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}
#[cfg(not(unix))]
fn raw_fd<T>(_t: &T) -> i32 {
    -1
}

/// A cache miss parked on a scheduler ticket: everything needed to
/// finish the query when the batch search resolves.
struct PendingQuery {
    handle: TicketHandle,
    witness: Canonicalized,
    /// When the query frame finished decoding (latency epoch).
    start: Instant,
    /// When the miss was submitted (queue-wait epoch).
    submitted: Instant,
    trace: Option<Trace>,
}

/// One non-blocking connection state machine.
struct Conn {
    stream: TcpStream,
    reader: FrameReader<TcpStream>,
    writer: FrameWriter,
    /// The query parked on a scheduler ticket, if any. While set, no
    /// further frames are read — responses stay in request order and
    /// a flooding client cannot queue unbounded misses.
    inflight: Option<PendingQuery>,
    /// Close once the writer drains (protocol error or shutdown frame).
    closing: bool,
    /// Whether the epoll registration currently includes write
    /// interest (kept in sync with `writer.has_pending()`).
    want_write: bool,
}

impl Conn {
    /// Flushes queued response bytes until drained or the socket stops
    /// accepting. `Ok(true)` = fully drained.
    fn pump_write(&mut self) -> io::Result<bool> {
        let mut sink = &self.stream;
        self.writer.flush_into(&mut sink)
    }
}

/// What a query decode produced: an answer to deliver now, or a ticket
/// to park the connection on.
enum QueryOutcome {
    Ready(Response, Option<Trace>),
    Pending(PendingQuery),
}

/// One core's event loop: accept on this core's listener, pump every
/// connection's reader/writer on readiness, poll parked tickets, and
/// wind down gracefully on shutdown. Fatal listener errors flip the
/// global shutdown flag (so sibling cores exit too) and propagate.
fn core_loop(
    shared: &Shared,
    listener: TcpListener,
    core: usize,
    cores: usize,
    portable_poll: bool,
) -> io::Result<()> {
    if cores > 1 {
        // Best-effort: an unpinned loop is correct, just migratable.
        let _ = net::pin_to_cpu(core);
    }
    let poller = if portable_poll {
        None
    } else {
        net::Poller::new()
    };
    if let Some(p) = &poller {
        // A failed listener registration would mean never seeing
        // accepts; fall back to scanning in that case by dropping the
        // poller (registration failures are kernel-resource errors).
        if !p.add(raw_fd(&listener), LISTENER_TOKEN, false) {
            return core_loop_inner(shared, &listener, core, None);
        }
    }
    core_loop_inner(shared, &listener, core, poller.as_ref())
}

fn core_loop_inner(
    shared: &Shared,
    listener: &TcpListener,
    core: usize,
    poller: Option<&net::Poller>,
) -> io::Result<()> {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut events: Vec<net::Event> = Vec::new();
    let mut shutdown_seen: Option<Instant> = None;
    loop {
        let shutdown = shared.shutdown.load(Ordering::SeqCst);
        if shutdown {
            // Wind down: drop connections with nothing left to deliver;
            // give write-stalled peers a bounded grace, but wait
            // indefinitely on in-flight tickets — searches terminate,
            // and their answers belong in the final snapshot.
            let since = *shutdown_seen.get_or_insert_with(Instant::now);
            let grace_expired = since.elapsed() >= SHUTDOWN_WRITE_GRACE;
            for slot in &mut conns {
                let done = slot.as_ref().is_some_and(|c| {
                    c.inflight.is_none() && (!c.writer.has_pending() || grace_expired)
                });
                if done {
                    close_conn(shared, poller, slot);
                }
            }
            if conns.iter().all(Option::is_none) {
                return Ok(());
            }
        }
        // Write-stalled connections are watched by epoll (write
        // interest is reconciled below), so only ticket-holders force
        // the loop to tick: sub-millisecond via poll-then-nap, because
        // `epoll_wait`'s millisecond timeout floor would tax every
        // cache miss with up to 1 ms of resolution latency.
        let ticket_wait = conns.iter().flatten().any(|c| c.inflight.is_some());
        match poller {
            Some(p) => {
                let timeout = if ticket_wait {
                    0
                } else if shutdown {
                    BUSY_WAIT_MS
                } else {
                    POLL_INTERVAL.as_millis() as i32
                };
                if !p.wait(&mut events, timeout) {
                    // A broken epoll fd is unrecoverable for this loop.
                    shared.shutdown.store(true, Ordering::SeqCst);
                    return Err(io::Error::other("epoll wait failed"));
                }
                if ticket_wait && events.is_empty() {
                    std::thread::sleep(TICKET_POLL_TICK);
                }
            }
            None => {
                // Scan fallback: synthesize readiness for everything
                // each tick; non-blocking I/O makes spurious readiness
                // harmless (it costs one WouldBlock).
                let tick = if ticket_wait || conns.iter().any(Option::is_some) {
                    SCAN_TICK
                } else {
                    SCAN_IDLE_TICK
                };
                std::thread::sleep(tick);
                events.clear();
                events.push(net::Event {
                    token: LISTENER_TOKEN,
                    readable: true,
                    writable: false,
                });
                for (i, slot) in conns.iter().enumerate() {
                    if slot.is_some() {
                        events.push(net::Event {
                            token: i as u64,
                            readable: true,
                            writable: true,
                        });
                    }
                }
            }
        }
        for event in &events {
            if event.token == LISTENER_TOKEN {
                if !shutdown {
                    accept_ready(shared, listener, core, poller, &mut conns)?;
                }
                continue;
            }
            let idx = event.token as usize;
            let Some(Some(conn)) = conns.get_mut(idx) else {
                continue; // closed earlier this round
            };
            if event.readable {
                pump_read(shared, core, conn);
            }
        }
        // Poll parked tickets: a resolved batch search finishes its
        // query here, on the core that owns the connection.
        for slot in conns.iter_mut() {
            let Some(conn) = slot else { continue };
            let resolved = conn.inflight.as_ref().and_then(|p| p.handle.try_result());
            if let Some(result) = resolved {
                let pending = conn.inflight.take().expect("checked above");
                finish_query(shared, conn, pending, result);
                // A frame pipelined behind the parked query may already
                // sit in the reader's buffer — no readiness event will
                // ever re-announce it, so parse it now.
                pump_read(shared, core, conn);
            }
        }
        // Flush writers, reconcile epoll write interest, reap closed
        // connections.
        for (i, slot) in conns.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else { continue };
            let mut dead = false;
            if conn.writer.has_pending() {
                dead = conn.pump_write().is_err();
            }
            let want = conn.writer.has_pending();
            if !dead && want != conn.want_write {
                if let Some(p) = poller {
                    let _ = p.modify(raw_fd(&conn.stream), i as u64, want);
                }
                conn.want_write = want;
            }
            if dead || (conn.closing && conn.inflight.is_none() && !conn.writer.has_pending()) {
                close_conn(shared, poller, slot);
            }
        }
    }
}

/// Accepts until the listener would block. Fatal accept errors flip the
/// global shutdown flag so sibling cores exit too.
fn accept_ready(
    shared: &Shared,
    listener: &TcpListener,
    core: usize,
    poller: Option<&net::Poller>,
    conns: &mut Vec<Option<Conn>>,
) -> io::Result<()> {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            // Transient accept errors (e.g. a peer that reset before
            // the handshake finished) must not kill the server.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionAborted | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(e) => {
                shared.shutdown.store(true, Ordering::SeqCst);
                return Err(e);
            }
        };
        shared.core_obs[core].accepted.inc();
        // The connection cap is global across cores: slots freed by any
        // core are immediately visible to every acceptor.
        if shared.max_conns > 0
            && shared.open_conns.load(Ordering::Relaxed) >= shared.max_conns as u64
        {
            shed_connection(shared, stream);
            continue;
        }
        let _ = stream.set_nodelay(true);
        let reader = match stream.set_nonblocking(true).and(stream.try_clone()) {
            Ok(clone) => FrameReader::new(clone),
            Err(_) => continue,
        };
        shared.open_conns.fetch_add(1, Ordering::Relaxed);
        let idx = conns.iter().position(Option::is_none).unwrap_or_else(|| {
            conns.push(None);
            conns.len() - 1
        });
        if let Some(p) = poller {
            if !p.add(raw_fd(&stream), idx as u64, false) {
                // Unregisterable: close rather than serve a socket the
                // loop would never hear from again.
                shared.open_conns.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
        }
        conns[idx] = Some(Conn {
            stream,
            reader,
            writer: FrameWriter::new(),
            inflight: None,
            closing: false,
            want_write: false,
        });
    }
}

/// Deregisters and drops one connection, releasing its cap slot.
fn close_conn(shared: &Shared, poller: Option<&net::Poller>, slot: &mut Option<Conn>) {
    if let Some(conn) = slot.take() {
        if let Some(p) = poller {
            let _ = p.remove(raw_fd(&conn.stream));
        }
        shared.open_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Sheds one accepted connection at the cap: writes a single serialized
/// `Overloaded` frame (bounded by a write timeout so a glacial peer
/// cannot stall the acceptor) and closes the socket.
fn shed_connection(shared: &Shared, stream: TcpStream) {
    shared.shed_conns.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut writer = io::BufWriter::new(stream);
    let _ = write_frame(
        &mut writer,
        &protocol::encode_response(&Response::Overloaded {
            retry_after_ms: shared.retry_after_ms,
        }),
    );
}

/// Drains every complete frame currently buffered on `conn`. Reading
/// stops while a query is parked on a ticket (responses stay in
/// request order) and resumes when it resolves. Reading also stops on
/// a *short* read — the socket buffer is drained for now, and paying
/// the classic drain-until-would-block syscall per wakeup is wasted
/// work under level-triggered readiness (and under the scan fallback,
/// which synthesizes readiness every tick regardless).
fn pump_read(shared: &Shared, core: usize, conn: &mut Conn) {
    let mut socket_drained = false;
    loop {
        if conn.closing || conn.inflight.is_some() || shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match conn.reader.buffered_frame() {
            Ok(Some(payload)) => {
                handle_frame(shared, core, conn, &payload);
                continue;
            }
            Ok(None) => {}
            Err(e) => {
                // A hostile length prefix: the stream cannot be
                // resynchronized — answer and drop the connection.
                conn.writer
                    .queue(&protocol::encode_response(&Response::Error(e.to_string())));
                conn.closing = true;
                return;
            }
        }
        if socket_drained {
            return;
        }
        match conn.reader.fill() {
            Ok(protocol::Fill::Data { more_pending }) => socket_drained = !more_pending,
            // WouldBlock mid-frame is just a trickling peer — the
            // reader holds the partial frame for the next tick.
            Ok(protocol::Fill::Empty) => return,
            Err(e) => {
                // Truncated framing or a socket error: answer when the
                // peer may still be reading, then drop the connection.
                // A clean close between frames is just a hang-up.
                if !(e.is_clean_eof() && conn.reader.at_frame_boundary()) {
                    conn.writer
                        .queue(&protocol::encode_response(&Response::Error(e.to_string())));
                }
                conn.closing = true;
                return;
            }
        }
    }
}

/// Decodes and serves one request frame.
fn handle_frame(shared: &Shared, core: usize, conn: &mut Conn, payload: &[u8]) {
    // Decode is timed only when instrumentation is on, and the span is
    // attributed only if the frame turns out to be a query.
    let decode_start = shared.obs.enabled.then(Instant::now);
    let request = match protocol::decode_request(payload) {
        Ok(r) => r,
        Err(e) => {
            // The frame boundary is intact: report and keep serving.
            conn.writer
                .queue(&protocol::encode_response(&Response::Error(e.to_string())));
            return;
        }
    };
    let response = match request {
        Request::Query(f, kind, deadline_ms) => {
            shared.requests.fetch_add(1, Ordering::Relaxed);
            shared.core_obs[core].requests.inc();
            let start = Instant::now();
            // Spans are computed by *chaining* timestamps — one clock
            // read per stage boundary, with each boundary shared by the
            // stage it ends and the stage it starts — because on hosts
            // without a cheap vDSO clock the reads themselves are the
            // dominant tracing cost.
            let trace = decode_start.map(|decoded_at| {
                let mut t = Trace::new(shared.obs.span_ids.next_id());
                t.record(Stage::Decode, us_between(decoded_at, start));
                t
            });
            // The deadline clock starts when the frame is decoded — the
            // budget covers queueing and search, not network transit.
            let deadline = deadline_ms.map(|ms| start + Duration::from_millis(u64::from(ms)));
            match begin_query(shared, f, kind, start, deadline, trace, core) {
                QueryOutcome::Ready(response, trace) => {
                    deliver(shared, conn, response, start, trace);
                }
                QueryOutcome::Pending(pending) => {
                    conn.inflight = Some(pending);
                }
            }
            return;
        }
        Request::Stats => Response::Stats(shared.snapshot()),
        Request::Health => Response::Health(shared.health()),
        Request::Metrics => Response::Metrics(render_metrics(shared)),
        Request::SlowQueries => Response::SlowQueries(render_trace_json(&shared.obs.slow)),
        Request::Traces => Response::Traces(render_trace_json(&shared.obs.traces)),
        Request::Shutdown => {
            conn.writer
                .queue(&protocol::encode_response(&Response::ShuttingDown));
            conn.closing = true;
            initiate_shutdown(shared);
            return;
        }
    };
    conn.writer.queue(&protocol::encode_response(&response));
}

/// Books a finished query response: service latency, the error counter,
/// the Encode/Write trace spans (Write covers the synchronous flush
/// attempt; remaining bytes drain on later readiness ticks), and the
/// frame bytes into the connection's writer.
fn deliver(
    shared: &Shared,
    conn: &mut Conn,
    response: Response,
    start: Instant,
    trace: Option<Trace>,
) {
    let answered = Instant::now();
    shared.latency.record(us_between(start, answered));
    if matches!(response, Response::Error(_)) {
        shared.errors.fetch_add(1, Ordering::Relaxed);
    }
    let payload = protocol::encode_response(&response);
    conn.writer.queue(&payload);
    match trace {
        Some(mut trace) => {
            let encoded = Instant::now();
            trace.record(Stage::Encode, us_between(answered, encoded));
            let flush = conn.pump_write();
            let written = Instant::now();
            trace.record(Stage::Write, us_between(encoded, written));
            trace.total_us = us_between(start, written);
            shared.obs.finish(&trace);
            if flush.is_err() {
                conn.closing = true;
            }
        }
        None => {
            if conn.pump_write().is_err() {
                conn.closing = true;
            }
        }
    }
}

/// The query hot path: canonicalize, cache (keyed by cost model +
/// class), replay — scheduler only on a miss, and even then without
/// blocking: a genuine miss parks the connection on a ticket.
///
/// One canonicalization serves every model (all three cost kinds are
/// class functions), and witness replay is cost-preserving under all of
/// them, so the warm path is model-independent work plus a model-tagged
/// cache key.
///
/// The cache lookup runs *before* admission control ever gets a say:
/// that ordering is the graceful-degradation contract — a saturated
/// miss queue sheds new searches while cache hits keep being answered
/// at full speed.
fn begin_query(
    shared: &Shared,
    f: Perm,
    kind: CostKind,
    start: Instant,
    deadline: Option<Instant>,
    mut trace: Option<Trace>,
    lane: usize,
) -> QueryOutcome {
    let n = shared.suite.wires();
    for x in (1u8 << n)..16 {
        if f.apply(x) != x {
            let response = Response::Error(format!(
                "function moves point {x}, outside the {n}-wire domain"
            ));
            return QueryOutcome::Ready(response, trace);
        }
    }
    let w = shared.suite.sym().canonicalize(f);
    let cached = shared.cache.get(kind, w.rep);
    // Timestamp chain: `start` ends Decode, `probed` ends CacheProbe
    // (which therefore includes the domain check and canonicalization —
    // everything between decode and the cache's answer).
    let mut probed = None;
    if let Some(t) = trace.as_mut() {
        let now = Instant::now();
        t.model = kind.code();
        t.rep = w.rep.packed();
        t.cache_hit = cached.is_some();
        t.record(Stage::CacheProbe, us_between(start, now));
        probed = Some(now);
    }
    if let Some(circuit) = cached {
        let answer = replay_for_witness(&circuit, &w);
        if let (Some(t), Some(s)) = (trace.as_mut(), probed) {
            t.record(Stage::Replay, us_between(s, Instant::now()));
        }
        return QueryOutcome::Ready(Response::Circuit(answer), trace);
    }
    let submission = shared.scheduler.submit(kind, w.rep, deadline, lane);
    let admitted = Instant::now();
    if let (Some(t), Some(s)) = (trace.as_mut(), probed) {
        t.record(Stage::Admission, us_between(s, admitted));
    }
    match submission {
        // The admission re-check hit (another core's search landed
        // between our probe and the queue lock): answer immediately.
        Submission::Ready(Ok(circuit)) => {
            let answer = replay_for_witness(&circuit, &w);
            if let Some(t) = trace.as_mut() {
                t.record(Stage::Replay, us_between(admitted, Instant::now()));
            }
            QueryOutcome::Ready(Response::Circuit(answer), trace)
        }
        Submission::Ready(Err(ServeError::Overloaded { retry_after_ms })) => {
            QueryOutcome::Ready(Response::Overloaded { retry_after_ms }, trace)
        }
        Submission::Ready(Err(e)) => QueryOutcome::Ready(Response::Error(e.to_string()), trace),
        Submission::Pending(handle) => QueryOutcome::Pending(PendingQuery {
            handle,
            witness: w,
            start,
            submitted: admitted,
            trace,
        }),
    }
}

/// Finishes a query whose ticket resolved: splits the wait into
/// QueueWait/BatchSearch spans (the search time is the scheduler's own
/// measurement, clamped to the observed wait), replays the class
/// circuit for this witness, and delivers the response.
fn finish_query(
    shared: &Shared,
    conn: &mut Conn,
    pending: PendingQuery,
    result: Result<revsynth_circuit::Circuit, ServeError>,
) {
    let PendingQuery {
        handle,
        witness,
        start,
        submitted,
        mut trace,
    } = pending;
    let resolved = Instant::now();
    if let Some(t) = trace.as_mut() {
        let waited = us_between(submitted, resolved);
        let search = handle.search_us().min(waited);
        t.record(Stage::QueueWait, waited - search);
        t.record(Stage::BatchSearch, search);
    }
    let response = match result {
        Ok(circuit) => {
            let answer = replay_for_witness(&circuit, &witness);
            if let Some(t) = trace.as_mut() {
                t.record(Stage::Replay, us_between(resolved, Instant::now()));
            }
            Response::Circuit(answer)
        }
        Err(ServeError::Overloaded { retry_after_ms }) => Response::Overloaded { retry_after_ms },
        Err(e) => Response::Error(e.to_string()),
    };
    deliver(shared, conn, response, start, trace);
}

/// Renders the full metrics scrape: every [`ServeStats`] field as a
/// `revsynth_`-prefixed series (shared field-name table — the text
/// frame and this exposition cannot drift), then the shared registry —
/// per-stage latency histograms, engine profiling, snapshot timings,
/// the point-in-time gauges refreshed here — and finally the per-core
/// registries, merged so family headers appear exactly once.
fn render_metrics(shared: &Shared) -> String {
    let obs = &shared.obs;
    for (kind, depth) in CostKind::ALL.iter().zip(shared.scheduler.queued()) {
        obs.queue_depth[kind.code() as usize].set(depth as u64);
    }
    obs.live_workers.set(shared.scheduler.live_workers());
    for (gauge, len) in obs.shard_entries.iter().zip(shared.cache.shard_lens()) {
        gauge.set(len as u64);
    }
    let mut out = String::new();
    shared.snapshot().to_prometheus(&mut out);
    let mut parts: Vec<&Registry> = Vec::with_capacity(1 + shared.core_obs.len());
    parts.push(&obs.registry);
    parts.extend(shared.core_obs.iter().map(|c| &c.registry));
    Registry::render_merged(&parts, &mut out);
    out
}

/// Renders a trace ring as a JSON array, oldest first, bounded so the
/// encoded response frame (one opcode byte + the JSON) always fits
/// [`protocol::MAX_FRAME_LEN`]. A full ring of worst-case traces
/// overflows the frame cap (`write_frame` asserts on oversized
/// payloads), so traces are admitted newest-first until the budget is
/// spent and the oldest are dropped from the array.
fn render_trace_json(ring: &TraceRing) -> String {
    // Opcode byte plus the enclosing brackets come off the top.
    let budget = protocol::MAX_FRAME_LEN as usize - 1 - 2;
    let snapshot = ring.snapshot();
    let mut kept: Vec<String> = Vec::with_capacity(snapshot.len());
    let mut used = 0;
    for trace in snapshot.iter().rev() {
        let model = CostKind::from_code(trace.model).map_or("unknown", CostKind::as_str);
        let json = trace.to_json(model);
        let sep = usize::from(!kept.is_empty());
        if used + sep + json.len() > budget {
            break;
        }
        used += sep + json.len();
        kept.push(json);
    }
    kept.reverse();
    format!("[{}]", kept.join(","))
}

/// Flips the shutdown flag and nudges the acceptor with a
/// self-connection — every core loop also re-checks the flag on its
/// own wait timeout, so the nudge only sharpens latency.
fn initiate_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trace whose every numeric field renders at its widest (20
    /// decimal digits / 16 hex digits) with an unknown model byte.
    fn worst_case_trace() -> Trace {
        let mut t = Trace::new(u64::MAX);
        t.model = u8::MAX;
        t.rep = u64::MAX;
        t.total_us = u64::MAX;
        for s in Stage::ALL {
            t.record(s, u64::MAX);
        }
        t
    }

    #[test]
    fn full_worst_case_ring_renders_within_the_frame_cap() {
        // The regression: a full SLOW_RING_CAPACITY ring of wide traces
        // is ~95 KiB of JSON, past MAX_FRAME_LEN, and write_frame
        // asserts on oversized payloads — rendering must drop the
        // oldest traces instead of panicking the handler thread.
        let ring = TraceRing::new(SLOW_RING_CAPACITY);
        for _ in 0..SLOW_RING_CAPACITY {
            ring.push(&worst_case_trace());
        }
        let json = render_trace_json(&ring);
        let payload = protocol::encode_response(&Response::SlowQueries(json.clone()));
        assert!(
            payload.len() <= protocol::MAX_FRAME_LEN as usize,
            "payload is {} bytes",
            payload.len()
        );
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("bounded frame writes");
        // The reply is still a well-formed, non-trivial array: a prefix
        // of the ring was dropped, not mangled.
        assert!(json.starts_with("[{") && json.ends_with("}]"), "{json}");
        let traces = json.matches("\"span_id\"").count();
        assert!(
            (1..SLOW_RING_CAPACITY).contains(&traces),
            "kept {traces} of {SLOW_RING_CAPACITY} worst-case traces"
        );
        assert!(json.contains("\"model\": \"unknown\""), "{json}");
    }

    #[test]
    fn trace_rendering_keeps_the_newest_and_stays_oldest_first() {
        let ring = TraceRing::new(SLOW_RING_CAPACITY);
        for i in 0..SLOW_RING_CAPACITY as u64 {
            let mut t = worst_case_trace();
            t.span_id = i;
            ring.push(&t);
        }
        let json = render_trace_json(&ring);
        // The newest trace always survives the bounding...
        let newest = format!("\"span_id\": \"{:016x}\"", SLOW_RING_CAPACITY as u64 - 1);
        assert!(json.contains(&newest), "newest trace dropped");
        // ...and the kept suffix renders oldest first.
        let mut last = None;
        for (pos, _) in json.match_indices("\"span_id\"") {
            assert!(last.is_none_or(|p| p < pos));
            last = Some(pos);
        }
    }

    #[test]
    fn small_rings_render_completely() {
        let ring = TraceRing::new(SLOW_RING_CAPACITY);
        assert_eq!(render_trace_json(&ring), "[]");
        ring.push(&worst_case_trace());
        ring.push(&worst_case_trace());
        let json = render_trace_json(&ring);
        assert_eq!(json.matches("\"span_id\"").count(), 2);
    }

    #[test]
    fn serve_config_builder_and_shims_agree() {
        let built = ServeConfig::new()
            .port(7878)
            .cores(4)
            .workers(2)
            .cache_capacity(512)
            .batch_linger(Duration::from_millis(3))
            .max_queue(9)
            .max_conns(17)
            .retry_after_ms(250)
            .slow_query_us(1_000)
            .instrumentation(false)
            .portable_poll(true);
        assert_eq!(built.port, 7878);
        assert_eq!(built.cores, 4);
        assert_eq!(built.workers, 2);
        assert_eq!(built.cache_capacity, 512);
        assert_eq!(built.batch_linger, Duration::from_millis(3));
        assert_eq!(built.max_queue, 9);
        assert_eq!(built.max_conns, 17);
        assert_eq!(built.retry_after_ms, 250);
        assert_eq!(built.slow_query_us, 1_000);
        assert!(!built.instrumentation);
        assert!(built.portable_poll);
        // The deprecated shim maps field-for-field onto the new config
        // with single-core defaults for the fields it lacks.
        #[allow(deprecated)]
        let from_old = ServeConfig::from(ServerConfig {
            port: 7878,
            max_queue: 9,
            ..ServerConfig::default()
        });
        assert_eq!(from_old.port, 7878);
        assert_eq!(from_old.max_queue, 9);
        assert_eq!(from_old.cores, 1);
        assert!(!from_old.portable_poll);
    }
}
