//! The TCP synthesis server: accept loop, per-connection handlers, the
//! stats endpoint and graceful shutdown.
//!
//! A query's hot path is: read frame → decode → canonicalize
//! ([`Symmetries::canonicalize`], ~750 instructions) → [`ClassCache`]
//! lookup → replay the cached representative circuit through the
//! witness ([`replay_for_witness`]) → write frame. No search, no table
//! probe: the warm path's cost is two syscalls and a few microseconds of
//! CPU. Only cache misses reach the [`Scheduler`], where concurrent
//! misses for one class coalesce into a single batched search.
//!
//! Each accepted connection gets its own handler thread; handlers read
//! with a short poll timeout so a quiescent connection notices server
//! shutdown within [`POLL_INTERVAL`] rather than holding the join. A
//! malformed frame produces one error response (when the violation is
//! recoverable in-stream) or a dropped connection — the accept loop
//! itself never sees client bytes and cannot be hung or crashed by
//! them.
//!
//! Shutdown: any client may send a shutdown frame. The flag flips, the
//! acceptor is unblocked with a self-connection, handlers drain, the
//! scheduler completes in-flight batches and fails queued ones, and
//! [`Server::run`] returns the final [`ServeStats`].
//!
//! [`Symmetries::canonicalize`]: revsynth_canon::Symmetries::canonicalize
//! [`replay_for_witness`]: revsynth_canon::replay_for_witness

use std::io;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use revsynth_canon::replay_for_witness;
use revsynth_circuit::CostKind;
use revsynth_core::{SearchOptions, SynthesisSuite};
use revsynth_perm::Perm;

use crate::cache::ClassCache;
use crate::fault::FaultPlan;
use crate::protocol::{self, write_frame, FrameReader, Request, Response};
use crate::scheduler::{Scheduler, SchedulerOptions, ServeError};
use crate::stats::{LatencyHistogram, ServeStats};

/// How often an idle connection handler re-checks the shutdown flag.
/// Bounds both shutdown latency and the cost of parked connections.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Loopback port to bind (0 picks a free port; see
    /// [`Server::local_addr`]).
    pub port: u16,
    /// Scheduler worker threads (each runs batched searches).
    pub workers: usize,
    /// Class-cache capacity in entries.
    pub cache_capacity: usize,
    /// Search options for the batched synthesizer calls (thread count,
    /// invariant gate, probe depth).
    pub search: SearchOptions,
    /// Scheduler group-commit window: a worker that finds a queued miss
    /// waits this long before draining, so near-simultaneous misses
    /// form one batch and same-class misses reliably coalesce. Zero
    /// (the default) drains immediately — lowest cold latency, batches
    /// only form under genuine queueing.
    pub batch_linger: Duration,
    /// Maximum queued (not yet drained) class searches per cost model;
    /// misses beyond this are shed with an `Overloaded` frame instead
    /// of queueing unboundedly. `0` (the default) = unbounded. Cache
    /// hits are unaffected — the warm path keeps serving at any queue
    /// depth.
    pub max_queue: usize,
    /// Maximum concurrently served connections; accepts beyond this are
    /// answered with one serialized `Overloaded` frame and closed, so
    /// the handler list cannot grow without bound. `0` (the default) =
    /// unbounded.
    pub max_conns: usize,
    /// The retry hint carried by `Overloaded` responses, milliseconds.
    pub retry_after_ms: u32,
    /// Deterministic fault injection at the scheduler's search boundary
    /// (chaos tests, `loadgen --overload`); `None` in production.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    /// One worker, a 64k-class cache, serial searches, no linger,
    /// unbounded queue and connections, a 100 ms retry hint, no fault
    /// injection, an ephemeral port.
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: 1,
            cache_capacity: 1 << 16,
            search: SearchOptions::new().threads(1),
            batch_linger: Duration::ZERO,
            max_queue: 0,
            max_conns: 0,
            retry_after_ms: 100,
            faults: None,
        }
    }
}

/// Shared state every connection handler sees.
struct Shared {
    suite: Arc<SynthesisSuite>,
    cache: Arc<ClassCache>,
    scheduler: Scheduler,
    requests: AtomicU64,
    errors: AtomicU64,
    shed_conns: AtomicU64,
    retry_after_ms: u32,
    latency: LatencyHistogram,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn snapshot(&self) -> ServeStats {
        let cache = self.cache.counters();
        let sched = self.scheduler.counters();
        ServeStats {
            wires: self.suite.wires() as u64,
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            coalesced: sched.coalesced,
            searches: sched.searches,
            batches: sched.batches,
            max_batch: sched.max_batch,
            evictions: cache.evictions,
            errors: self.errors.load(Ordering::Relaxed),
            cached_classes: cache.len,
            cache_capacity: cache.capacity,
            p50_latency_us: self.latency.quantile(0.5),
            p99_latency_us: self.latency.quantile(0.99),
            shed: sched.shed_total(),
            expired: sched.expired_total(),
            shed_conns: self.shed_conns.load(Ordering::Relaxed),
        }
    }
}

/// A bound (not yet running) synthesis server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    max_conns: usize,
}

/// Handle to a server running on a background thread
/// ([`Server::spawn`]); joining returns the final stats.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: JoinHandle<io::Result<ServeStats>>,
}

impl ServerHandle {
    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down and returns its final stats.
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's I/O error, if it died on one.
    ///
    /// # Panics
    ///
    /// Panics if the server thread itself panicked.
    pub fn join(self) -> io::Result<ServeStats> {
        self.thread.join().expect("server thread must not panic")
    }
}

impl Server {
    /// Binds the loopback listener and starts the scheduler workers.
    ///
    /// Queries carry a per-request cost model; the suite's quantum and
    /// depth engines are generated lazily on the first query that needs
    /// them, so a gates-only workload pays nothing for the siblings.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (e.g. the port is taken).
    pub fn bind(suite: Arc<SynthesisSuite>, config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, config.port))?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(ClassCache::new(config.cache_capacity));
        let scheduler = Scheduler::with_options(
            Arc::clone(&suite),
            Arc::clone(&cache),
            config.workers,
            config.search,
            SchedulerOptions {
                linger: config.batch_linger,
                max_queue: config.max_queue,
                retry_after_ms: config.retry_after_ms,
                faults: config.faults.clone(),
            },
        );
        Ok(Server {
            listener,
            max_conns: config.max_conns,
            shared: Arc::new(Shared {
                suite,
                cache,
                scheduler,
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                shed_conns: AtomicU64::new(0),
                retry_after_ms: config.retry_after_ms,
                latency: LatencyHistogram::new(),
                shutdown: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Runs the accept loop on the calling thread until a shutdown
    /// request arrives, then drains handlers and workers and returns
    /// the final stats snapshot.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (per-connection errors are
    /// contained in their handlers).
    pub fn run(self) -> io::Result<ServeStats> {
        let Server {
            listener,
            shared,
            max_conns,
        } = self;
        // Only the accept loop touches this list; handlers are joined
        // after the loop exits.
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // Transient accept errors (e.g. a peer that reset before
                // the handshake finished) must not kill the server.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            // Reap finished handlers so long-running servers don't
            // accumulate join handles — and JOIN them, so a handler
            // panic is observed (counted as an error) instead of being
            // silently discarded with the handle.
            let mut running = Vec::with_capacity(handlers.len());
            for handle in handlers {
                if handle.is_finished() {
                    join_handler(&shared, handle);
                } else {
                    running.push(handle);
                }
            }
            handlers = running;
            // The connection cap is enforced after reaping, so finished
            // handlers always free their slots first.
            if max_conns > 0 && handlers.len() >= max_conns {
                shed_connection(&shared, stream);
                continue;
            }
            let shared = Arc::clone(&shared);
            handlers.push(std::thread::spawn(move || {
                handle_connection(&shared, stream)
            }));
        }
        for handle in handlers {
            join_handler(&shared, handle);
        }
        shared.scheduler.shutdown();
        Ok(shared.snapshot())
    }

    /// Runs the server on a background thread; the returned handle
    /// exposes the bound address and joins to the final stats.
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        ServerHandle {
            addr,
            thread: std::thread::spawn(move || self.run()),
        }
    }
}

/// Joins a handler thread, counting a panic as a server error (a
/// handler must never panic on client bytes; if one does, the counter
/// makes it visible instead of vanishing with the handle).
fn join_handler(shared: &Shared, handle: JoinHandle<()>) {
    if handle.join().is_err() {
        shared.errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Sheds one accepted connection at the cap: writes a single serialized
/// `Overloaded` frame (bounded by a write timeout so a glacial peer
/// cannot stall the accept loop) and closes the socket.
fn shed_connection(shared: &Shared, stream: TcpStream) {
    shared.shed_conns.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut writer = io::BufWriter::new(stream);
    let _ = write_frame(
        &mut writer,
        &protocol::encode_response(&Response::Overloaded {
            retry_after_ms: shared.retry_after_ms,
        }),
    );
}

/// Serves one connection until the peer hangs up, a fatal protocol
/// violation occurs, or the server shuts down. Never panics on client
/// bytes.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    // Short read timeouts turn a parked read into a periodic
    // shutdown-flag check (the FrameReader buffers partial frames across
    // timeouts, so polling never desynchronizes the stream); NODELAY
    // because frames are tiny and latency-sensitive.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut reader = FrameReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = io::BufWriter::new(stream);

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match reader.poll_frame() {
            Ok(Some(p)) => p,
            // Poll tick on an idle (or trickling) connection.
            Ok(None) => continue,
            Err(e) => {
                // Truncated/oversized framing: answer when the peer may
                // still be reading, then drop the connection — an
                // arbitrary byte stream cannot be resynchronized. A
                // clean close between frames is just a hang-up.
                if !(e.is_clean_eof() && reader.at_frame_boundary()) {
                    let _ = write_frame(
                        &mut writer,
                        &protocol::encode_response(&Response::Error(e.to_string())),
                    );
                }
                return;
            }
        };
        let request = match protocol::decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // The frame boundary is intact: report and keep serving.
                let _ = write_frame(
                    &mut writer,
                    &protocol::encode_response(&Response::Error(e.to_string())),
                );
                continue;
            }
        };
        let response = match request {
            Request::Query(f, kind, deadline_ms) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let start = Instant::now();
                // The deadline clock starts when the frame is decoded —
                // the budget covers queueing and search, not network
                // transit.
                let deadline = deadline_ms.map(|ms| start + Duration::from_millis(u64::from(ms)));
                let response = answer_query(shared, f, kind, deadline);
                let elapsed = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                shared.latency.record(elapsed);
                if matches!(response, Response::Error(_)) {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                }
                response
            }
            Request::Stats => Response::Stats(shared.snapshot()),
            Request::Shutdown => {
                let _ = write_frame(
                    &mut writer,
                    &protocol::encode_response(&Response::ShuttingDown),
                );
                initiate_shutdown(shared);
                return;
            }
        };
        if write_frame(&mut writer, &protocol::encode_response(&response)).is_err() {
            return;
        }
    }
}

/// The query hot path: canonicalize, cache (keyed by cost model +
/// class), replay — scheduler only on a miss. One canonicalization
/// serves every model (all three cost kinds are class functions), and
/// witness replay is cost-preserving under all of them, so the warm
/// path is model-independent work plus a model-tagged cache key.
///
/// The cache lookup runs *before* admission control ever gets a say:
/// that ordering is the graceful-degradation contract — a saturated
/// miss queue sheds new searches while cache hits keep being answered
/// at full speed.
fn answer_query(shared: &Shared, f: Perm, kind: CostKind, deadline: Option<Instant>) -> Response {
    let n = shared.suite.wires();
    for x in (1u8 << n)..16 {
        if f.apply(x) != x {
            return Response::Error(format!(
                "function moves point {x}, outside the {n}-wire domain"
            ));
        }
    }
    let w = shared.suite.sym().canonicalize(f);
    let rep_circuit = match shared.cache.get(kind, w.rep) {
        Some(circuit) => circuit,
        None => match shared
            .scheduler
            .request_with_deadline(kind, w.rep, deadline)
        {
            Ok(circuit) => circuit,
            Err(ServeError::Overloaded { retry_after_ms }) => {
                return Response::Overloaded { retry_after_ms }
            }
            Err(e) => return Response::Error(e.to_string()),
        },
    };
    Response::Circuit(replay_for_witness(&rep_circuit, &w))
}

/// Flips the shutdown flag and unblocks the acceptor with a
/// self-connection (the accept loop re-checks the flag per accept).
fn initiate_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
}
