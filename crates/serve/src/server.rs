//! The TCP synthesis server: accept loop, per-connection handlers, the
//! stats endpoint and graceful shutdown.
//!
//! A query's hot path is: read frame → decode → canonicalize
//! ([`Symmetries::canonicalize`], ~750 instructions) → [`ClassCache`]
//! lookup → replay the cached representative circuit through the
//! witness ([`replay_for_witness`]) → write frame. No search, no table
//! probe: the warm path's cost is two syscalls and a few microseconds of
//! CPU. Only cache misses reach the [`Scheduler`], where concurrent
//! misses for one class coalesce into a single batched search.
//!
//! Each accepted connection gets its own handler thread; handlers read
//! with a short poll timeout so a quiescent connection notices server
//! shutdown within [`POLL_INTERVAL`] rather than holding the join. A
//! malformed frame produces one error response (when the violation is
//! recoverable in-stream) or a dropped connection — the accept loop
//! itself never sees client bytes and cannot be hung or crashed by
//! them.
//!
//! **Warm restarts**: with a snapshot path configured, [`Server::bind`]
//! restores the class cache from the checksummed on-disk snapshot
//! before accepting a single connection — every record is validated
//! (checksum, then replay against its representative) and corrupt ones
//! are skipped and counted; an unreadable snapshot is quarantined to
//! `<path>.corrupt` and the server boots cold. A background thread
//! re-snapshots the cache on an interval, and graceful shutdown writes
//! one final snapshot after the scheduler drains, so the next boot is
//! as warm as this one was. Every write is atomic (temp file + fsync +
//! rename), so a SIGKILL at any instant costs at most the work since
//! the previous snapshot — never the snapshot itself.
//!
//! Shutdown: any client may send a shutdown frame. The flag flips, the
//! acceptor is unblocked with a self-connection, handlers drain, the
//! scheduler completes in-flight batches and fails queued ones, the
//! final snapshot is written, and [`Server::run`] returns the final
//! [`ServeStats`].
//!
//! [`Symmetries::canonicalize`]: revsynth_canon::Symmetries::canonicalize
//! [`replay_for_witness`]: revsynth_canon::replay_for_witness

use std::io;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use revsynth_canon::replay_for_witness;
use revsynth_circuit::CostKind;
use revsynth_core::{SearchOptions, SynthesisSuite};
use revsynth_obs::{Gauge, Histogram, Registry, SpanIds, Stage, Trace, TraceRing};
use revsynth_perm::Perm;

use crate::cache::ClassCache;
use crate::fault::FaultPlan;
use crate::protocol::{self, write_frame, FrameReader, Request, Response};
use crate::scheduler::{Scheduler, SchedulerMetrics, SchedulerOptions, ServeError};
use crate::snapshot::{self, RestoreOutcome, SnapshotRecord};
use crate::stats::{HealthReport, LatencyHistogram, ServeStats};

/// How often an idle connection handler re-checks the shutdown flag.
/// Bounds both shutdown latency and the cost of parked connections.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Capacity of the rolling all-requests trace ring (served by the
/// `Traces` frame; [`render_trace_json`] bounds the reply to the frame
/// cap, so the ring may hold more traces than one reply can carry).
const TRACE_RING_CAPACITY: usize = 1024;

/// Capacity of the slow-query trace ring (served by the `SlowQueries`
/// frame, bounded the same way).
const SLOW_RING_CAPACITY: usize = 256;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Loopback port to bind (0 picks a free port; see
    /// [`Server::local_addr`]).
    pub port: u16,
    /// Scheduler worker threads (each runs batched searches).
    pub workers: usize,
    /// Class-cache capacity in entries.
    pub cache_capacity: usize,
    /// Search options for the batched synthesizer calls (thread count,
    /// invariant gate, probe depth).
    pub search: SearchOptions,
    /// Scheduler group-commit window: a worker that finds a queued miss
    /// waits this long before draining, so near-simultaneous misses
    /// form one batch and same-class misses reliably coalesce. Zero
    /// (the default) drains immediately — lowest cold latency, batches
    /// only form under genuine queueing.
    pub batch_linger: Duration,
    /// Maximum queued (not yet drained) class searches per cost model;
    /// misses beyond this are shed with an `Overloaded` frame instead
    /// of queueing unboundedly. `0` (the default) = unbounded. Cache
    /// hits are unaffected — the warm path keeps serving at any queue
    /// depth.
    pub max_queue: usize,
    /// Maximum concurrently served connections; accepts beyond this are
    /// answered with one serialized `Overloaded` frame and closed, so
    /// the handler list cannot grow without bound. `0` (the default) =
    /// unbounded.
    pub max_conns: usize,
    /// The retry hint carried by `Overloaded` responses, milliseconds.
    pub retry_after_ms: u32,
    /// Deterministic fault injection at the scheduler's search boundary
    /// (chaos tests, `loadgen --overload`); `None` in production.
    pub faults: Option<Arc<FaultPlan>>,
    /// Snapshot path: restore the cache from it at boot (tolerating
    /// torn tails and bitflips), snapshot to it on graceful shutdown
    /// and, when [`snapshot_interval`](Self::snapshot_interval) is set,
    /// periodically. `None` (the default) disables persistence.
    pub snapshot: Option<PathBuf>,
    /// How often the background snapshotter re-writes the snapshot;
    /// `None` (the default) snapshots only at graceful shutdown.
    /// Ignored without a [`snapshot`](Self::snapshot) path.
    pub snapshot_interval: Option<Duration>,
    /// Requests whose total handling time reaches this many microseconds
    /// are copied into the slow-query ring (retrievable with a
    /// `SlowQueries` frame). `0` (the default) captures none. Has no
    /// effect when [`instrumentation`](Self::instrumentation) is off.
    pub slow_query_us: u64,
    /// Master switch for per-request observability: trace spans, the
    /// per-stage latency histograms, engine profiling counters and the
    /// trace rings. On by default; turning it off removes every
    /// per-request `Instant` read and ring write from the hot path (the
    /// `bench_serve` `obs_overhead` phase measures the difference). The
    /// metrics endpoint itself keeps working either way — the
    /// [`ServeStats`] view is maintained regardless.
    pub instrumentation: bool,
}

impl Default for ServerConfig {
    /// One worker, a 64k-class cache, serial searches, no linger,
    /// unbounded queue and connections, a 100 ms retry hint, no fault
    /// injection, an ephemeral port.
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: 1,
            cache_capacity: 1 << 16,
            search: SearchOptions::new().threads(1),
            batch_linger: Duration::ZERO,
            max_queue: 0,
            max_conns: 0,
            retry_after_ms: 100,
            faults: None,
            snapshot: None,
            snapshot_interval: None,
            slow_query_us: 0,
            instrumentation: true,
        }
    }
}

/// Observability state shared by every handler: the metrics registry
/// and its handles, the trace rings and the span-id generator.
struct Observability {
    /// Per-request tracing on/off ([`ServerConfig::instrumentation`]).
    enabled: bool,
    /// Slow-query threshold, µs; `0` captures none.
    slow_query_us: u64,
    registry: Registry,
    /// Per-stage span durations, indexed by [`Stage::index`]. Only
    /// stages that actually ran (nonzero µs) are recorded, so a cache
    /// hit does not drag the search stages' quantiles to zero.
    stage_latency: [Histogram; Stage::COUNT],
    /// Snapshot write durations (one sample per completed write).
    snapshot_write_us: Histogram,
    /// Duration of the restore-at-boot pass, µs (0 = cold boot).
    snapshot_restore_us: Gauge,
    /// Admitted-but-undrained searches per cost model, refreshed at
    /// scrape time; indexed by [`CostKind::code`].
    queue_depth: [Gauge; CostKind::ALL.len()],
    /// Scheduler workers inside their supervised loop, refreshed at
    /// scrape time.
    live_workers: Gauge,
    /// Resident cache entries per shard, refreshed at scrape time.
    shard_entries: Vec<Gauge>,
    /// Rolling ring of the most recent request traces, slow or not
    /// (retrievable with a `Traces` frame).
    traces: TraceRing,
    /// Ring of requests that crossed the slow-query threshold.
    slow: TraceRing,
    span_ids: SpanIds,
}

impl Observability {
    fn new(config: &ServerConfig, shards: usize, seed: u64) -> Self {
        let registry = Registry::default();
        let stage_latency = Stage::ALL.map(|stage| {
            registry.histogram(
                "revsynth_stage_latency_us",
                &[("stage", stage.name())],
                "Per-request pipeline span duration by stage, microseconds",
            )
        });
        let queue_depth = CostKind::ALL.map(|kind| {
            registry.gauge(
                "revsynth_queue_depth",
                &[("model", kind.as_str())],
                "Admitted but not yet drained class searches per cost model",
            )
        });
        let shard_entries = (0..shards)
            .map(|i| {
                let shard = i.to_string();
                registry.gauge(
                    "revsynth_cache_shard_entries",
                    &[("shard", &shard)],
                    "Resident class-cache entries per shard",
                )
            })
            .collect();
        Observability {
            enabled: config.instrumentation,
            slow_query_us: config.slow_query_us,
            stage_latency,
            snapshot_write_us: registry.histogram(
                "revsynth_snapshot_write_us",
                &[],
                "Duration of each completed cache snapshot write, microseconds",
            ),
            snapshot_restore_us: registry.gauge(
                "revsynth_snapshot_restore_us",
                &[],
                "Duration of the restore-at-boot pass, microseconds (0 on a cold boot)",
            ),
            queue_depth,
            live_workers: registry.gauge(
                "revsynth_live_workers",
                &[],
                "Scheduler workers currently inside their supervised loop",
            ),
            shard_entries,
            traces: TraceRing::new(TRACE_RING_CAPACITY),
            slow: TraceRing::new(SLOW_RING_CAPACITY),
            span_ids: SpanIds::new(seed),
            registry,
        }
    }

    /// Registry handles for the scheduler's engine profiling, when
    /// instrumentation is on.
    fn scheduler_metrics(&self) -> Option<SchedulerMetrics> {
        self.enabled.then(|| SchedulerMetrics {
            considered: self.registry.counter(
                "revsynth_search_considered",
                &[],
                "Candidate circuits considered by the engine's frame scans",
            ),
            gated: self.registry.counter(
                "revsynth_search_gated",
                &[],
                "Candidates rejected by the invariant gate before canonicalization",
            ),
            canonicalized: self.registry.counter(
                "revsynth_search_canonicalized",
                &[],
                "Candidates canonicalized (survived the invariant gate)",
            ),
            probed: self.registry.counter(
                "revsynth_search_probed",
                &[],
                "Meet-in-the-middle table probes issued",
            ),
            batch_search_us: self.registry.histogram(
                "revsynth_batch_search_us",
                &[],
                "Wall-clock duration of each batched engine call, microseconds",
            ),
        })
    }

    /// Records a completed request trace: per-stage histograms, the
    /// rolling ring, and — past the threshold — the slow-query ring.
    fn finish(&self, trace: &Trace) {
        for stage in Stage::ALL {
            let us = trace.stage_us(stage);
            if us > 0 {
                self.stage_latency[stage.index()].record(us);
            }
        }
        self.traces.push(trace);
        if self.slow_query_us > 0 && trace.total_us >= self.slow_query_us {
            self.slow.push(trace);
        }
    }
}

/// Microseconds elapsed since `start`, saturating.
fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Microseconds from `a` to `b` (zero if `b` is not later), saturating.
/// Used to chain span boundaries without re-reading the clock.
fn us_between(a: Instant, b: Instant) -> u64 {
    u64::try_from(b.duration_since(a).as_micros()).unwrap_or(u64::MAX)
}

/// What restore-on-boot found at the snapshot path (for operator
/// display; the same numbers feed [`ServeStats::restored`] and
/// [`ServeStats::snapshot_skipped`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RestoreSummary {
    /// Records validated and inserted into the cache.
    pub restored: u64,
    /// Records rejected (torn tail, failed checksum, failed replay or
    /// canonicality validation) — skipped, never served.
    pub skipped: u64,
    /// Where an unreadable snapshot was quarantined, if it was; the
    /// server booted cold.
    pub quarantined: Option<PathBuf>,
    /// The rendered reason for quarantine, when one happened.
    pub quarantine_reason: Option<String>,
}

/// Shared state every connection handler sees.
struct Shared {
    suite: Arc<SynthesisSuite>,
    cache: Arc<ClassCache>,
    scheduler: Scheduler,
    requests: AtomicU64,
    errors: AtomicU64,
    shed_conns: AtomicU64,
    retry_after_ms: u32,
    latency: LatencyHistogram,
    shutdown: AtomicBool,
    addr: SocketAddr,
    started: Instant,
    /// Snapshot path when persistence is on; `None` makes every
    /// snapshot call a no-op.
    snapshot_path: Option<PathBuf>,
    /// Fault plan, consulted for injected snapshot-write pauses.
    faults: Option<Arc<FaultPlan>>,
    restored: AtomicU64,
    snapshot_writes: AtomicU64,
    snapshot_skipped: AtomicU64,
    /// When the last successful snapshot write finished (`None` until
    /// the first one; restore-at-boot does not count — the probe
    /// reports the age of *this process's* persistence, not the
    /// previous incarnation's).
    last_snapshot: Mutex<Option<Instant>>,
    /// Metrics registry, trace rings and span-id state.
    obs: Observability,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn snapshot(&self) -> ServeStats {
        let cache = self.cache.counters();
        let sched = self.scheduler.counters();
        ServeStats {
            wires: self.suite.wires() as u64,
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            coalesced: sched.coalesced,
            searches: sched.searches,
            batches: sched.batches,
            max_batch: sched.max_batch,
            evictions: cache.evictions,
            errors: self.errors.load(Ordering::Relaxed),
            cached_classes: cache.len,
            cache_capacity: cache.capacity,
            p50_latency_us: self.latency.quantile(0.5),
            p99_latency_us: self.latency.quantile(0.99),
            shed: sched.shed_total(),
            expired: sched.expired_total(),
            shed_conns: self.shed_conns.load(Ordering::Relaxed),
            restored: self.restored.load(Ordering::Relaxed),
            snapshot_writes: self.snapshot_writes.load(Ordering::Relaxed),
            snapshot_skipped: self.snapshot_skipped.load(Ordering::Relaxed),
            worker_restarts: sched.worker_restarts,
        }
    }

    fn health(&self) -> HealthReport {
        let snapshot_age_ms = lock(&self.last_snapshot).map_or(HealthReport::NO_SNAPSHOT, |t| {
            t.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
        });
        HealthReport {
            uptime_ms: self.started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
            restored: self.restored.load(Ordering::Relaxed),
            live_workers: self.scheduler.live_workers(),
            snapshot_age_ms,
        }
    }
}

/// Writes one snapshot of the current cache contents, if persistence is
/// on. A write failure is counted as a server error and the previous
/// snapshot (if any) stays in place — persistence degrades, serving
/// does not.
fn write_snapshot_now(shared: &Shared) {
    let Some(path) = shared.snapshot_path.as_deref() else {
        return;
    };
    let records: Vec<SnapshotRecord> = shared
        .cache
        .export()
        .into_iter()
        .map(|(kind, rep, circuit)| SnapshotRecord { kind, rep, circuit })
        .collect();
    let pause = shared
        .faults
        .as_deref()
        .and_then(FaultPlan::next_snapshot_delay);
    let write_start = Instant::now();
    match snapshot::write_snapshot_paced(path, shared.suite.wires(), &records, pause) {
        Ok(_) => {
            shared.obs.snapshot_write_us.record(elapsed_us(write_start));
            shared.snapshot_writes.fetch_add(1, Ordering::Relaxed);
            *lock(&shared.last_snapshot) = Some(Instant::now());
        }
        Err(_) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A bound (not yet running) synthesis server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    max_conns: usize,
    snapshot_interval: Option<Duration>,
    restore_summary: RestoreSummary,
}

/// Handle to a server running on a background thread
/// ([`Server::spawn`]); joining returns the final stats.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: JoinHandle<io::Result<ServeStats>>,
}

impl ServerHandle {
    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down and returns its final stats.
    ///
    /// # Errors
    ///
    /// Propagates the accept loop's I/O error, if it died on one; a
    /// panicked server thread is reported as a typed I/O error (and
    /// counted), never re-panicked into the caller.
    pub fn join(self) -> io::Result<ServeStats> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => {
                self.shared.errors.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::other("server thread panicked"))
            }
        }
    }
}

impl Server {
    /// Binds the loopback listener and starts the scheduler workers.
    ///
    /// Queries carry a per-request cost model; the suite's quantum and
    /// depth engines are generated lazily on the first query that needs
    /// them, so a gates-only workload pays nothing for the siblings.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (e.g. the port is taken).
    pub fn bind(suite: Arc<SynthesisSuite>, config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, config.port))?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(ClassCache::new(config.cache_capacity));
        // Restore before the first accept: a warm restart serves its
        // first query from the restored cache. Nothing here can fail
        // the boot — a missing snapshot is a cold start, an unreadable
        // one is quarantined and *then* a cold start.
        let obs = Observability::new(config, cache.shard_lens().len(), u64::from(addr.port()));
        let mut restore_summary = RestoreSummary::default();
        let restore_start = Instant::now();
        if let Some(path) = config.snapshot.as_deref() {
            match snapshot::restore(path, suite.wires()) {
                RestoreOutcome::Missing => {}
                RestoreOutcome::Restored { records, skipped } => {
                    restore_summary.skipped = skipped;
                    for record in records {
                        // Belt over the format's suspenders: only
                        // canonical representatives are legal cache
                        // keys (a non-canonical key would never be
                        // looked up, and a *forged* one must not be).
                        if suite.sym().canonical(record.rep) == record.rep {
                            cache.insert(record.kind, record.rep, record.circuit);
                            restore_summary.restored += 1;
                        } else {
                            restore_summary.skipped += 1;
                        }
                    }
                }
                RestoreOutcome::Quarantined { error, quarantine } => {
                    restore_summary.quarantine_reason = Some(error.to_string());
                    restore_summary.quarantined = quarantine;
                }
            }
            obs.snapshot_restore_us.set(elapsed_us(restore_start));
        }
        let scheduler = Scheduler::with_options(
            Arc::clone(&suite),
            Arc::clone(&cache),
            config.workers,
            config.search,
            SchedulerOptions {
                linger: config.batch_linger,
                max_queue: config.max_queue,
                retry_after_ms: config.retry_after_ms,
                faults: config.faults.clone(),
                metrics: obs.scheduler_metrics(),
            },
        );
        Ok(Server {
            listener,
            max_conns: config.max_conns,
            snapshot_interval: config.snapshot_interval,
            shared: Arc::new(Shared {
                suite,
                cache,
                scheduler,
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                shed_conns: AtomicU64::new(0),
                retry_after_ms: config.retry_after_ms,
                latency: LatencyHistogram::new(),
                shutdown: AtomicBool::new(false),
                addr,
                started: Instant::now(),
                snapshot_path: config.snapshot.clone(),
                faults: config.faults.clone(),
                restored: AtomicU64::new(restore_summary.restored),
                snapshot_writes: AtomicU64::new(0),
                snapshot_skipped: AtomicU64::new(restore_summary.skipped),
                last_snapshot: Mutex::new(None),
                obs,
            }),
            restore_summary,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// What restore-on-boot found (all zeroes when no snapshot path was
    /// configured or no snapshot existed).
    #[must_use]
    pub fn restore_summary(&self) -> &RestoreSummary {
        &self.restore_summary
    }

    /// Runs the accept loop on the calling thread until a shutdown
    /// request arrives, then drains handlers and workers and returns
    /// the final stats snapshot.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (per-connection errors are
    /// contained in their handlers).
    pub fn run(self) -> io::Result<ServeStats> {
        let Server {
            listener,
            shared,
            max_conns,
            snapshot_interval,
            restore_summary: _,
        } = self;
        // The background snapshotter: wakes every poll tick (so
        // shutdown is prompt), writes when the interval has elapsed.
        let snapshotter: Option<JoinHandle<()>> = match snapshot_interval {
            Some(every) if shared.snapshot_path.is_some() => {
                let shared = Arc::clone(&shared);
                Some(std::thread::spawn(move || {
                    let mut last = Instant::now();
                    loop {
                        std::thread::sleep(POLL_INTERVAL.min(every));
                        if shared.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        if last.elapsed() >= every {
                            write_snapshot_now(&shared);
                            last = Instant::now();
                        }
                    }
                }))
            }
            _ => None,
        };
        // Only the accept loop touches this list; handlers are joined
        // after the loop exits.
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        let mut accept_error: Option<io::Error> = None;
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // Transient accept errors (e.g. a peer that reset before
                // the handshake finished) must not kill the server.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    accept_error = Some(e);
                    break;
                }
            };
            // Reap finished handlers so long-running servers don't
            // accumulate join handles — and JOIN them, so a handler
            // panic is observed (counted as an error) instead of being
            // silently discarded with the handle.
            let mut running = Vec::with_capacity(handlers.len());
            for handle in handlers {
                if handle.is_finished() {
                    join_handler(&shared, handle);
                } else {
                    running.push(handle);
                }
            }
            handlers = running;
            // The connection cap is enforced after reaping, so finished
            // handlers always free their slots first.
            if max_conns > 0 && handlers.len() >= max_conns {
                shed_connection(&shared, stream);
                continue;
            }
            let shared = Arc::clone(&shared);
            handlers.push(std::thread::spawn(move || {
                handle_connection(&shared, stream)
            }));
        }
        // Drain order is the crash-safety contract: stop accepting,
        // drain handlers, fail queued tickets, THEN write the final
        // snapshot — so the snapshot sees every search the drain
        // completed and the file on disk is the warmest state this
        // process ever had.
        shared.shutdown.store(true, Ordering::SeqCst);
        for handle in handlers {
            join_handler(&shared, handle);
        }
        shared.scheduler.shutdown();
        if let Some(handle) = snapshotter {
            let _ = handle.join();
        }
        write_snapshot_now(&shared);
        match accept_error {
            Some(e) => Err(e),
            None => Ok(shared.snapshot()),
        }
    }

    /// Runs the server on a background thread; the returned handle
    /// exposes the bound address and joins to the final stats.
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shared = Arc::clone(&self.shared);
        ServerHandle {
            addr,
            shared,
            thread: std::thread::spawn(move || self.run()),
        }
    }
}

/// Joins a handler thread, counting a panic as a server error (a
/// handler must never panic on client bytes; if one does, the counter
/// makes it visible instead of vanishing with the handle).
fn join_handler(shared: &Shared, handle: JoinHandle<()>) {
    if handle.join().is_err() {
        shared.errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Sheds one accepted connection at the cap: writes a single serialized
/// `Overloaded` frame (bounded by a write timeout so a glacial peer
/// cannot stall the accept loop) and closes the socket.
fn shed_connection(shared: &Shared, stream: TcpStream) {
    shared.shed_conns.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut writer = io::BufWriter::new(stream);
    let _ = write_frame(
        &mut writer,
        &protocol::encode_response(&Response::Overloaded {
            retry_after_ms: shared.retry_after_ms,
        }),
    );
}

/// Serves one connection until the peer hangs up, a fatal protocol
/// violation occurs, or the server shuts down. Never panics on client
/// bytes.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    // Short read timeouts turn a parked read into a periodic
    // shutdown-flag check (the FrameReader buffers partial frames across
    // timeouts, so polling never desynchronizes the stream); NODELAY
    // because frames are tiny and latency-sensitive.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut reader = FrameReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = io::BufWriter::new(stream);

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match reader.poll_frame() {
            Ok(Some(p)) => p,
            // Poll tick on an idle (or trickling) connection.
            Ok(None) => continue,
            Err(e) => {
                // Truncated/oversized framing: answer when the peer may
                // still be reading, then drop the connection — an
                // arbitrary byte stream cannot be resynchronized. A
                // clean close between frames is just a hang-up.
                if !(e.is_clean_eof() && reader.at_frame_boundary()) {
                    let _ = write_frame(
                        &mut writer,
                        &protocol::encode_response(&Response::Error(e.to_string())),
                    );
                }
                return;
            }
        };
        // Decode is timed only when instrumentation is on, and the span
        // is attributed only if the frame turns out to be a query.
        let decode_start = shared.obs.enabled.then(Instant::now);
        let request = match protocol::decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // The frame boundary is intact: report and keep serving.
                let _ = write_frame(
                    &mut writer,
                    &protocol::encode_response(&Response::Error(e.to_string())),
                );
                continue;
            }
        };
        let response = match request {
            Request::Query(f, kind, deadline_ms) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let start = Instant::now();
                // Spans are computed by *chaining* timestamps — one
                // clock read per stage boundary, with each boundary
                // shared by the stage it ends and the stage it starts —
                // because on hosts without a cheap vDSO clock the reads
                // themselves are the dominant tracing cost.
                let mut trace = decode_start.map(|decoded_at| {
                    let mut t = Trace::new(shared.obs.span_ids.next_id());
                    t.record(Stage::Decode, us_between(decoded_at, start));
                    t
                });
                // The deadline clock starts when the frame is decoded —
                // the budget covers queueing and search, not network
                // transit.
                let deadline = deadline_ms.map(|ms| start + Duration::from_millis(u64::from(ms)));
                let response = answer_query(shared, f, kind, start, deadline, trace.as_mut());
                let answered = Instant::now();
                shared.latency.record(us_between(start, answered));
                if matches!(response, Response::Error(_)) {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(mut trace) = trace {
                    // Traced requests encode and write inside the span
                    // so the trace covers the full pipeline.
                    let payload = protocol::encode_response(&response);
                    let encoded = Instant::now();
                    trace.record(Stage::Encode, us_between(answered, encoded));
                    let write_ok = write_frame(&mut writer, &payload).is_ok();
                    let written = Instant::now();
                    trace.record(Stage::Write, us_between(encoded, written));
                    trace.total_us = us_between(start, written);
                    shared.obs.finish(&trace);
                    if !write_ok {
                        return;
                    }
                    continue;
                }
                response
            }
            Request::Stats => Response::Stats(shared.snapshot()),
            Request::Health => Response::Health(shared.health()),
            Request::Metrics => Response::Metrics(render_metrics(shared)),
            Request::SlowQueries => Response::SlowQueries(render_trace_json(&shared.obs.slow)),
            Request::Traces => Response::Traces(render_trace_json(&shared.obs.traces)),
            Request::Shutdown => {
                let _ = write_frame(
                    &mut writer,
                    &protocol::encode_response(&Response::ShuttingDown),
                );
                initiate_shutdown(shared);
                return;
            }
        };
        if write_frame(&mut writer, &protocol::encode_response(&response)).is_err() {
            return;
        }
    }
}

/// Renders the full metrics scrape: every [`ServeStats`] field as a
/// `revsynth_`-prefixed series (shared field-name table — the text
/// frame and this exposition cannot drift), then the registry —
/// per-stage latency histograms, engine profiling, snapshot timings,
/// and the point-in-time gauges refreshed here.
fn render_metrics(shared: &Shared) -> String {
    let obs = &shared.obs;
    for (kind, depth) in CostKind::ALL.iter().zip(shared.scheduler.queued()) {
        obs.queue_depth[kind.code() as usize].set(depth as u64);
    }
    obs.live_workers.set(shared.scheduler.live_workers());
    for (gauge, len) in obs.shard_entries.iter().zip(shared.cache.shard_lens()) {
        gauge.set(len as u64);
    }
    let mut out = String::new();
    shared.snapshot().to_prometheus(&mut out);
    obs.registry.render_into(&mut out);
    out
}

/// Renders a trace ring as a JSON array, oldest first, bounded so the
/// encoded response frame (one opcode byte + the JSON) always fits
/// [`protocol::MAX_FRAME_LEN`]. A full ring of worst-case traces
/// overflows the frame cap (`write_frame` asserts on oversized
/// payloads), so traces are admitted newest-first until the budget is
/// spent and the oldest are dropped from the array.
fn render_trace_json(ring: &TraceRing) -> String {
    // Opcode byte plus the enclosing brackets come off the top.
    let budget = protocol::MAX_FRAME_LEN as usize - 1 - 2;
    let snapshot = ring.snapshot();
    let mut kept: Vec<String> = Vec::with_capacity(snapshot.len());
    let mut used = 0;
    for trace in snapshot.iter().rev() {
        let model = CostKind::from_code(trace.model).map_or("unknown", CostKind::as_str);
        let json = trace.to_json(model);
        let sep = usize::from(!kept.is_empty());
        if used + sep + json.len() > budget {
            break;
        }
        used += sep + json.len();
        kept.push(json);
    }
    kept.reverse();
    format!("[{}]", kept.join(","))
}

/// The query hot path: canonicalize, cache (keyed by cost model +
/// class), replay — scheduler only on a miss. One canonicalization
/// serves every model (all three cost kinds are class functions), and
/// witness replay is cost-preserving under all of them, so the warm
/// path is model-independent work plus a model-tagged cache key.
///
/// The cache lookup runs *before* admission control ever gets a say:
/// that ordering is the graceful-degradation contract — a saturated
/// miss queue sheds new searches while cache hits keep being answered
/// at full speed.
fn answer_query(
    shared: &Shared,
    f: Perm,
    kind: CostKind,
    start: Instant,
    deadline: Option<Instant>,
    mut trace: Option<&mut Trace>,
) -> Response {
    let n = shared.suite.wires();
    for x in (1u8 << n)..16 {
        if f.apply(x) != x {
            return Response::Error(format!(
                "function moves point {x}, outside the {n}-wire domain"
            ));
        }
    }
    let w = shared.suite.sym().canonicalize(f);
    let cached = shared.cache.get(kind, w.rep);
    // Timestamp chain: `start` ends Decode, `probed` ends CacheProbe
    // (which therefore includes the domain check and canonicalization —
    // everything between decode and the cache's answer).
    let mut probed = None;
    if let Some(t) = trace.as_deref_mut() {
        let now = Instant::now();
        t.model = kind.code();
        t.rep = w.rep.packed();
        t.cache_hit = cached.is_some();
        t.record(Stage::CacheProbe, us_between(start, now));
        probed = Some(now);
    }
    let rep_circuit = match cached {
        Some(circuit) => circuit,
        None => {
            let result = match trace.as_deref_mut() {
                Some(t) => shared.scheduler.request_traced(kind, w.rep, deadline, t),
                None => shared
                    .scheduler
                    .request_with_deadline(kind, w.rep, deadline),
            };
            // The scheduler timed its own stages; restart the chain at
            // the fulfilment boundary so Replay excludes the wait.
            if probed.is_some() {
                probed = Some(Instant::now());
            }
            match result {
                Ok(circuit) => circuit,
                Err(ServeError::Overloaded { retry_after_ms }) => {
                    return Response::Overloaded { retry_after_ms }
                }
                Err(e) => return Response::Error(e.to_string()),
            }
        }
    };
    let answer = replay_for_witness(&rep_circuit, &w);
    if let (Some(t), Some(s)) = (trace, probed) {
        t.record(Stage::Replay, us_between(s, Instant::now()));
    }
    Response::Circuit(answer)
}

/// Flips the shutdown flag and unblocks the acceptor with a
/// self-connection (the accept loop re-checks the flag per accept).
fn initiate_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trace whose every numeric field renders at its widest (20
    /// decimal digits / 16 hex digits) with an unknown model byte.
    fn worst_case_trace() -> Trace {
        let mut t = Trace::new(u64::MAX);
        t.model = u8::MAX;
        t.rep = u64::MAX;
        t.total_us = u64::MAX;
        for s in Stage::ALL {
            t.record(s, u64::MAX);
        }
        t
    }

    #[test]
    fn full_worst_case_ring_renders_within_the_frame_cap() {
        // The regression: a full SLOW_RING_CAPACITY ring of wide traces
        // is ~95 KiB of JSON, past MAX_FRAME_LEN, and write_frame
        // asserts on oversized payloads — rendering must drop the
        // oldest traces instead of panicking the handler thread.
        let ring = TraceRing::new(SLOW_RING_CAPACITY);
        for _ in 0..SLOW_RING_CAPACITY {
            ring.push(&worst_case_trace());
        }
        let json = render_trace_json(&ring);
        let payload = protocol::encode_response(&Response::SlowQueries(json.clone()));
        assert!(
            payload.len() <= protocol::MAX_FRAME_LEN as usize,
            "payload is {} bytes",
            payload.len()
        );
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("bounded frame writes");
        // The reply is still a well-formed, non-trivial array: a prefix
        // of the ring was dropped, not mangled.
        assert!(json.starts_with("[{") && json.ends_with("}]"), "{json}");
        let traces = json.matches("\"span_id\"").count();
        assert!(
            (1..SLOW_RING_CAPACITY).contains(&traces),
            "kept {traces} of {SLOW_RING_CAPACITY} worst-case traces"
        );
        assert!(json.contains("\"model\": \"unknown\""), "{json}");
    }

    #[test]
    fn trace_rendering_keeps_the_newest_and_stays_oldest_first() {
        let ring = TraceRing::new(SLOW_RING_CAPACITY);
        for i in 0..SLOW_RING_CAPACITY as u64 {
            let mut t = worst_case_trace();
            t.span_id = i;
            ring.push(&t);
        }
        let json = render_trace_json(&ring);
        // The newest trace always survives the bounding...
        let newest = format!("\"span_id\": \"{:016x}\"", SLOW_RING_CAPACITY as u64 - 1);
        assert!(json.contains(&newest), "newest trace dropped");
        // ...and the kept suffix renders oldest first.
        let mut last = None;
        for (pos, _) in json.match_indices("\"span_id\"") {
            assert!(last.is_none_or(|p| p < pos));
            last = Some(pos);
        }
    }

    #[test]
    fn small_rings_render_completely() {
        let ring = TraceRing::new(SLOW_RING_CAPACITY);
        assert_eq!(render_trace_json(&ring), "[]");
        ring.push(&worst_case_trace());
        ring.push(&worst_case_trace());
        let json = render_trace_json(&ring);
        assert_eq!(json.matches("\"span_id\"").count(), 2);
    }
}
