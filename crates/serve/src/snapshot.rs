//! Crash-safe persistence of the [`ClassCache`]: checksummed, versioned
//! snapshots so a restarted server comes up **warm** instead of
//! re-running millions of meet-in-the-middle searches.
//!
//! The format reuses the v4 table store's durability discipline
//! (`revsynth-bfs/src/store.rs`): FNV-1a checksums over every region,
//! validated before any byte is trusted. Layout:
//!
//! ```text
//! magic    8 B  "RVSYNSS1"
//! wires    1 B  wire count (2..=4)
//! reserved 7 B  zero
//! count    8 B  number of records (LE)
//! hdr_fnv  8 B  FNV-1a of every preceding byte (LE)
//! records  count times:
//!   model    1 B  cost-model discriminant (CostKind::code)
//!   rep      8 B  packed canonical representative (LE)
//!   len      2 B  gate count (LE)
//!   gates    len B  (controls << 2) | target, bit 7 clear
//!   rec_fnv  8 B  FNV-1a of this record's preceding bytes (LE)
//! ```
//!
//! **Atomicity**: a snapshot is written to `<path>.tmp`, fsynced, and
//! atomically renamed over `<path>` — so the file at `<path>` is either
//! a complete previous snapshot or a complete new one, never a torn
//! write. A SIGKILL mid-write leaves a stale `.tmp` (ignored on boot)
//! and the previous complete snapshot intact.
//!
//! **Corruption contract** ([`restore`]): a snapshot damaged *after*
//! the rename (bitflips, truncation) is degraded record by record —
//! a record whose checksum fails is skipped and counted; a torn tail
//! skips the unreadable remainder; an unreadable header quarantines the
//! whole file to `<path>.corrupt` and the caller boots cold. Restore
//! never panics, and every surviving record is **revalidated by
//! replay** — the circuit must compute its claimed representative on
//! the declared wire count — so a corrupt snapshot can cost warmth but
//! can never poison an answer.
//!
//! [`ClassCache`]: crate::ClassCache

use std::error::Error;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};

use revsynth_circuit::{Circuit, CostKind, Gate};
use revsynth_perm::Perm;

/// Snapshot format magic ("revsynth serve snapshot v1").
const MAGIC: &[u8; 8] = b"RVSYNSS1";

/// Fixed header length: magic + wires + reserved + count + header FNV.
const HEADER_LEN: usize = 8 + 1 + 7 + 8 + 8;

/// Per-record overhead around the gate bytes: model + rep + len + FNV.
const RECORD_OVERHEAD: usize = 1 + 8 + 2 + 8;

/// One cached class as persisted: the cost model, the canonical
/// representative, and its optimal circuit under that model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRecord {
    /// Cost model the circuit is optimal under.
    pub kind: CostKind,
    /// The class's canonical representative.
    pub rep: Perm,
    /// The representative's cached circuit.
    pub circuit: Circuit,
}

/// Error raised while writing or reading a snapshot; always names the
/// file so operators can tell which artifact is bad.
#[derive(Debug)]
pub struct SnapshotError {
    path: PathBuf,
    kind: SnapshotErrorKind,
}

/// What went wrong with a snapshot file.
#[derive(Debug)]
pub enum SnapshotErrorKind {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// A header field is out of range or its checksum fails.
    BadHeader(String),
}

impl SnapshotError {
    fn new(path: &Path, kind: SnapshotErrorKind) -> Self {
        SnapshotError {
            path: path.to_path_buf(),
            kind,
        }
    }

    /// The file the failed operation was touching.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The failure itself.
    #[must_use]
    pub fn kind(&self) -> &SnapshotErrorKind {
        &self.kind
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot {}: ", self.path.display())?;
        match &self.kind {
            SnapshotErrorKind::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotErrorKind::BadMagic => write!(f, "not a cache snapshot (bad magic)"),
            SnapshotErrorKind::BadHeader(msg) => write!(f, "invalid header: {msg}"),
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            SnapshotErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Incremental FNV-1a, the same construction the v4 table store uses.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn value(&self) -> u64 {
        self.0
    }
}

fn fnv1a_of(bytes: &[u8]) -> u64 {
    let mut fnv = Fnv1a::new();
    fnv.update(bytes);
    fnv.value()
}

/// Serializes one record (without its trailing FNV) into `out`.
fn encode_record(record: &SnapshotRecord, out: &mut Vec<u8>) {
    out.push(record.kind.code());
    out.extend_from_slice(&record.rep.packed().to_le_bytes());
    let len = u16::try_from(record.circuit.len()).expect("snapshot circuit fits u16");
    out.extend_from_slice(&len.to_le_bytes());
    for g in record.circuit.iter() {
        out.push((g.controls() << 2) | g.target());
    }
}

/// Writes a complete snapshot of `records` to `path`, atomically.
///
/// The bytes go to `<path>.tmp` first, are fsynced, and the temp file
/// is renamed over `path` — a crash (or SIGKILL) at any instant leaves
/// `path` holding either the previous complete snapshot or the new one.
/// Returns the number of records written.
///
/// # Errors
///
/// [`SnapshotErrorKind::Io`] on any filesystem failure; the temp file
/// is removed best-effort on error.
pub fn write_snapshot(
    path: &Path,
    wires: usize,
    records: &[SnapshotRecord],
) -> Result<u64, SnapshotError> {
    write_snapshot_paced(path, wires, records, None)
}

/// [`write_snapshot`] with an injected pause between the temp file
/// becoming durable and the rename publishing it — the chaos hook that
/// widens the "killed mid-snapshot" window to something a test can
/// reliably hit. A kill during the pause leaves a complete `.tmp`
/// beside the previous snapshot; [`restore`] ignores temp files, so the
/// previous snapshot still boots.
///
/// # Errors
///
/// As [`write_snapshot`].
pub fn write_snapshot_paced(
    path: &Path,
    wires: usize,
    records: &[SnapshotRecord],
    mid_write_pause: Option<std::time::Duration>,
) -> Result<u64, SnapshotError> {
    let tmp = tmp_path(path);
    let io_err = |e: io::Error| SnapshotError::new(&tmp, SnapshotErrorKind::Io(e));
    let result = (|| {
        let file = File::create(&tmp).map_err(io_err)?;
        let mut w = BufWriter::new(file);
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.push(u8::try_from(wires).expect("wire count fits a byte"));
        header.extend_from_slice(&[0u8; 7]);
        header.extend_from_slice(&(records.len() as u64).to_le_bytes());
        header.extend_from_slice(&fnv1a_of(&header).to_le_bytes());
        debug_assert_eq!(header.len(), HEADER_LEN);
        w.write_all(&header).map_err(io_err)?;
        let mut buf = Vec::new();
        for record in records {
            buf.clear();
            encode_record(record, &mut buf);
            let fnv = fnv1a_of(&buf);
            buf.extend_from_slice(&fnv.to_le_bytes());
            w.write_all(&buf).map_err(io_err)?;
        }
        // Flush + fsync the temp file BEFORE the rename: the rename must
        // only ever expose fully durable bytes.
        w.flush().map_err(io_err)?;
        w.into_inner()
            .map_err(|e| io_err(e.into_error()))?
            .sync_all()
            .map_err(io_err)?;
        if let Some(pause) = mid_write_pause {
            std::thread::sleep(pause);
        }
        fs::rename(&tmp, path).map_err(|e| SnapshotError::new(path, SnapshotErrorKind::Io(e)))?;
        // Best-effort directory fsync so the rename itself is durable.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(records.len() as u64)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// The temp-file path a snapshot write stages through.
#[must_use]
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// The quarantine path an unreadable snapshot is moved to.
#[must_use]
pub fn quarantine_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".corrupt");
    PathBuf::from(os)
}

/// What [`restore`] found at the snapshot path.
#[derive(Debug)]
pub enum RestoreOutcome {
    /// No snapshot exists; boot cold (not an error).
    Missing,
    /// The snapshot's header validated; `records` passed per-record
    /// checksum and replay validation, `skipped` records did not (torn
    /// tail, bitflip, or a circuit that does not compute its rep).
    Restored {
        /// Records safe to insert into the cache, oldest-first (so
        /// re-insertion reproduces the snapshot's recency order).
        records: Vec<SnapshotRecord>,
        /// Records declared by the header but not restored.
        skipped: u64,
    },
    /// The header itself was unreadable (bad magic, wrong wire count,
    /// checksum mismatch, I/O failure): the file was moved to
    /// `<path>.corrupt` (when the move succeeded) and the caller must
    /// boot cold.
    Quarantined {
        /// Why the snapshot was rejected.
        error: SnapshotError,
        /// Where the bad file was moved, if the move succeeded.
        quarantine: Option<PathBuf>,
    },
}

/// Reads one record body (after the header) from `r`. Returns
/// `Ok(None)` for a record that is individually corrupt but leaves the
/// stream positioned at the next record; `Err(())` when framing is lost
/// (torn tail / unreadable length) and nothing further can be read.
fn read_record(r: &mut impl Read, wires: usize) -> Result<Option<SnapshotRecord>, ()> {
    let mut fixed = [0u8; 11];
    read_exact_or_tear(r, &mut fixed)?;
    let len = usize::from(u16::from_le_bytes([fixed[9], fixed[10]]));
    let mut gates = vec![0u8; len];
    read_exact_or_tear(r, &mut gates)?;
    let mut fnv_bytes = [0u8; 8];
    read_exact_or_tear(r, &mut fnv_bytes)?;
    let mut fnv = Fnv1a::new();
    fnv.update(&fixed);
    fnv.update(&gates);
    if fnv.value() != u64::from_le_bytes(fnv_bytes) {
        return Ok(None);
    }
    // Checksum holds: decode, then revalidate by replay. Any failure
    // past this point is a skip, never a crash.
    let Some(kind) = CostKind::from_code(fixed[0]) else {
        return Ok(None);
    };
    let packed = u64::from_le_bytes(fixed[1..9].try_into().expect("8 rep bytes"));
    let Ok(rep) = Perm::from_packed(packed) else {
        return Ok(None);
    };
    let mut circuit = Circuit::new();
    for &byte in &gates {
        if byte & 0x80 != 0 {
            return Ok(None);
        }
        match Gate::new(byte >> 2, byte & 0x03) {
            Ok(gate) => circuit.push(gate),
            Err(_) => return Ok(None),
        }
    }
    // Replay validation: the circuit must compute its claimed rep, and
    // the rep must live on the declared wire domain.
    for x in (1u8 << wires)..16 {
        if rep.apply(x) != x {
            return Ok(None);
        }
    }
    if circuit.perm(wires) != rep {
        return Ok(None);
    }
    Ok(Some(SnapshotRecord { kind, rep, circuit }))
}

fn read_exact_or_tear(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ()> {
    r.read_exact(buf).map_err(|_| ())
}

/// Restores a snapshot from `path`, degrading instead of failing:
/// corrupt records are skipped and counted, a torn tail truncates the
/// restore, and a snapshot whose *header* cannot be trusted is
/// quarantined to `<path>.corrupt` so the next boot is a clean cold
/// start. Never panics on file contents.
#[must_use]
pub fn restore(path: &Path, wires: usize) -> RestoreOutcome {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == ErrorKind::NotFound => return RestoreOutcome::Missing,
        Err(e) => return quarantine(path, SnapshotErrorKind::Io(e)),
    };
    let mut r = BufReader::new(file);
    let mut header = [0u8; HEADER_LEN];
    if let Err(e) = r.read_exact(&mut header) {
        return quarantine(path, SnapshotErrorKind::Io(e));
    }
    if &header[..8] != MAGIC {
        return quarantine(path, SnapshotErrorKind::BadMagic);
    }
    let fnv = u64::from_le_bytes(header[HEADER_LEN - 8..].try_into().expect("8 bytes"));
    if fnv != fnv1a_of(&header[..HEADER_LEN - 8]) {
        return quarantine(
            path,
            SnapshotErrorKind::BadHeader("header checksum mismatch".into()),
        );
    }
    if usize::from(header[8]) != wires {
        return quarantine(
            path,
            SnapshotErrorKind::BadHeader(format!(
                "snapshot is for {} wires, server runs {wires}",
                header[8]
            )),
        );
    }
    let count = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let mut records = Vec::new();
    for _ in 0..count {
        match read_record(&mut r, wires) {
            Ok(Some(record)) => records.push(record),
            Ok(None) => {}    // individually corrupt: skip, keep reading
            Err(()) => break, // torn tail: the remainder is unreadable
        }
    }
    // Every record the header declared but we could not restore —
    // individually corrupt or lost in a torn tail — counts as skipped.
    let skipped = count - records.len() as u64;
    RestoreOutcome::Restored { records, skipped }
}

fn quarantine(path: &Path, kind: SnapshotErrorKind) -> RestoreOutcome {
    let error = SnapshotError::new(path, kind);
    let target = quarantine_path(path);
    let quarantine = fs::rename(path, &target).ok().map(|()| target);
    RestoreOutcome::Quarantined { error, quarantine }
}

/// Approximate serialized size of `records`, for pre-sizing buffers.
#[must_use]
pub fn serialized_size(records: &[SnapshotRecord]) -> usize {
    HEADER_LEN
        + records
            .iter()
            .map(|r| RECORD_OVERHEAD + r.circuit.len())
            .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use revsynth_circuit::GateLib;

    fn records_on(n: usize, count: usize) -> Vec<SnapshotRecord> {
        let lib = GateLib::nct(n);
        let gates: Vec<Gate> = lib.iter().map(|(_, g, _)| g).collect();
        (0..count)
            .map(|i| {
                let circuit =
                    Circuit::from_gates((0..=(i % 3)).map(|j| gates[(i + j) % gates.len()]));
                SnapshotRecord {
                    kind: CostKind::ALL[i % CostKind::ALL.len()],
                    rep: circuit.perm(n),
                    circuit,
                }
            })
            .collect()
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("revsynth-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let dir = tempdir("roundtrip");
        let path = dir.join("cache.snap");
        let records = records_on(4, 24);
        assert_eq!(write_snapshot(&path, 4, &records).unwrap(), 24);
        match restore(&path, 4) {
            RestoreOutcome::Restored {
                records: restored,
                skipped,
            } => {
                assert_eq!(skipped, 0);
                assert_eq!(restored, records, "bit-identical restore");
            }
            other => panic!("expected restore, got {other:?}"),
        }
        assert!(!tmp_path(&path).exists(), "temp file renamed away");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_cold_boot_not_an_error() {
        let dir = tempdir("missing");
        assert!(matches!(
            restore(&dir.join("nope.snap"), 4),
            RestoreOutcome::Missing
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_restores_the_intact_prefix() {
        let dir = tempdir("torn");
        let path = dir.join("cache.snap");
        let records = records_on(4, 12);
        write_snapshot(&path, 4, &records).unwrap();
        // Cut the file mid-record: everything before the cut restores,
        // the remainder is counted skipped.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 13]).unwrap();
        match restore(&path, 4) {
            RestoreOutcome::Restored {
                records: restored,
                skipped,
            } => {
                assert!(skipped >= 1, "the torn record is counted");
                assert_eq!(restored.len() as u64 + skipped, 12);
                assert_eq!(restored[..], records[..restored.len()]);
            }
            other => panic!("expected degraded restore, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_bitflip_skips_only_that_record() {
        let dir = tempdir("bitflip");
        let path = dir.join("cache.snap");
        let records = records_on(4, 10);
        write_snapshot(&path, 4, &records).unwrap();
        // Flip one bit inside the first record's rep field (offset:
        // header + model byte + 3). Framing survives, the checksum
        // catches it, and every later record still restores.
        let mut bytes = fs::read(&path).unwrap();
        bytes[HEADER_LEN + 4] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        match restore(&path, 4) {
            RestoreOutcome::Restored {
                records: restored,
                skipped,
            } => {
                assert_eq!(skipped, 1, "exactly the flipped record");
                assert_eq!(restored[..], records[1..]);
            }
            other => panic!("expected degraded restore, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_header_quarantines_and_leaves_a_cold_boot() {
        let dir = tempdir("quarantine");
        let path = dir.join("cache.snap");
        write_snapshot(&path, 4, &records_on(4, 5)).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[3] ^= 0xFF; // corrupt the magic
        fs::write(&path, &bytes).unwrap();
        match restore(&path, 4) {
            RestoreOutcome::Quarantined { error, quarantine } => {
                assert!(matches!(error.kind(), SnapshotErrorKind::BadMagic));
                let q = quarantine.expect("rename succeeded");
                assert!(q.exists(), "bad file preserved for forensics");
                assert!(!path.exists(), "snapshot path cleared");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // The next restore is a clean cold boot.
        assert!(matches!(restore(&path, 4), RestoreOutcome::Missing));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_wire_count_is_quarantined() {
        let dir = tempdir("wires");
        let path = dir.join("cache.snap");
        write_snapshot(&path, 3, &records_on(3, 4)).unwrap();
        assert!(matches!(
            restore(&path, 4),
            RestoreOutcome::Quarantined { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_failing_replay_are_skipped() {
        let dir = tempdir("replay");
        let path = dir.join("cache.snap");
        // A record whose circuit does NOT compute its claimed rep, with
        // a *valid* checksum — the replay validation must reject it.
        let lib = GateLib::nct(4);
        let gate = lib.iter().next().unwrap().1;
        let lying = SnapshotRecord {
            kind: CostKind::Gates,
            rep: Perm::identity(),
            circuit: Circuit::from_gates([gate]),
        };
        let honest = records_on(4, 1);
        write_snapshot(&path, 4, &[lying, honest[0].clone()]).unwrap();
        match restore(&path, 4) {
            RestoreOutcome::Restored {
                records: restored,
                skipped,
            } => {
                assert_eq!(skipped, 1, "the lying record is rejected");
                assert_eq!(restored, honest);
            }
            other => panic!("expected degraded restore, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_from_a_killed_writer_is_ignored() {
        let dir = tempdir("staletmp");
        let path = dir.join("cache.snap");
        let records = records_on(4, 6);
        write_snapshot(&path, 4, &records).unwrap();
        // A SIGKILL mid-write leaves a partial temp file; the complete
        // snapshot at `path` must restore untouched.
        fs::write(tmp_path(&path), b"partial garbage from a dead writer").unwrap();
        match restore(&path, 4) {
            RestoreOutcome::Restored {
                records: restored,
                skipped,
            } => {
                assert_eq!(skipped, 0);
                assert_eq!(restored, records);
            }
            other => panic!("expected restore, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let dir = tempdir("empty");
        let path = dir.join("cache.snap");
        assert_eq!(write_snapshot(&path, 4, &[]).unwrap(), 0);
        match restore(&path, 4) {
            RestoreOutcome::Restored { records, skipped } => {
                assert!(records.is_empty());
                assert_eq!(skipped, 0);
            }
            other => panic!("expected restore, got {other:?}"),
        }
        assert!(serialized_size(&[]) == HEADER_LEN);
        let _ = fs::remove_dir_all(&dir);
    }
}
