//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message is one **frame**:
//!
//! ```text
//! length   4 B  little-endian u32, length of the payload that follows
//! payload  length B
//! ```
//!
//! The payload's first byte is an opcode; the rest is the opcode's body.
//! Frames are capped at [`MAX_FRAME_LEN`] bytes — an oversized length
//! prefix is rejected *before* any allocation or read, so a hostile
//! 4-byte header cannot balloon memory or stall a connection. Requests:
//!
//! | opcode | body | meaning |
//! |---|---|---|
//! | `0x01` Query | 16 B `f(0)..f(15)` + 1 B cost model | synthesize this permutation |
//! | `0x02` Stats | empty | snapshot the server counters |
//! | `0x03` Shutdown | empty | gracefully stop the server |
//! | `0x05` Health | empty | readiness probe (uptime, restored entries, live workers, snapshot age) |
//! | `0x06` Metrics | empty | scrape the metrics registry (Prometheus text exposition) |
//! | `0x07` SlowQueries | empty | fetch the captured slow-query traces as JSON |
//! | `0x08` Traces | empty | fetch the rolling ring of recent request traces as JSON |
//!
//! The cost-model byte is [`CostKind::code`] (0 = gates, 1 = quantum,
//! 2 = depth). Query bodies come in three compatible lengths: 16 bytes
//! (the pre-cost-model wire form, meaning gate count), 17 bytes (the
//! PR4 form with a cost-model byte), or 21 bytes (model byte followed
//! by a u32 LE **deadline** in milliseconds — the client's total
//! latency budget for this request; the server expires the work instead
//! of running a search whose answer nobody is waiting for). Old clients
//! keep working; any other length or an unknown model byte is a
//! [`ProtocolError`].
//!
//! Responses:
//!
//! | opcode | body | meaning |
//! |---|---|---|
//! | `0x80` Circuit | u16 LE gate count, then 1 B per gate | the optimal circuit |
//! | `0x81` Error | UTF-8 message | request-level failure |
//! | `0x82` Stats | 21 × u64 LE | [`ServeStats`] snapshot |
//! | `0x83` ShuttingDown | empty | shutdown acknowledged |
//! | `0x84` Overloaded | u32 LE retry-after ms | load shed: retry later with backoff |
//! | `0x85` Health | 4 × u64 LE | [`HealthReport`]: uptime ms, restored entries, live workers, snapshot age ms |
//! | `0x86` Metrics | UTF-8 text | the Prometheus text exposition |
//! | `0x87` SlowQueries | UTF-8 text | JSON array of slow-query traces |
//! | `0x88` Traces | UTF-8 text | JSON array of the most recent request traces |
//!
//! The trace-array replies (`0x87`/`0x88`) are **bounded**: the server
//! renders newest-first until the frame budget is reached, so a full
//! ring can never produce a payload above [`MAX_FRAME_LEN`] — the
//! oldest traces are dropped from the array instead.
//!
//! **Forward compatibility:** the fixed-width `0x82`/`0x85` bodies may
//! *grow* in future protocol revisions (new trailing counters). A
//! decoder therefore accepts any body that is at least the compiled-in
//! word count and a whole number of words, reading the words it knows
//! and ignoring the tail; shorter or misaligned bodies are still
//! errors. Old clients keep working against newer servers.
//!
//! Gates use the same 1-byte encoding as the table store:
//! `(controls << 2) | target` with bit 7 clear. Decoding validates
//! everything — opcode, body length, permutation values, gate bytes —
//! and returns a typed [`ProtocolError`]; malformed input can produce an
//! error response or a dropped connection, never a panic or a hang.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use revsynth_circuit::{Circuit, CostKind, Gate};
use revsynth_perm::Perm;

use crate::stats::{HealthReport, ServeStats};

/// Hard cap on a frame's payload length. Far above any legitimate
/// message (the largest is a metrics exposition, a few tens of KiB;
/// the histogram renderer merges buckets to octaves precisely so the
/// exposition stays bounded below this cap) but small enough that a
/// hostile length prefix cannot cause a large allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 16;

/// Request opcodes.
const OP_QUERY: u8 = 0x01;
const OP_STATS: u8 = 0x02;
const OP_SHUTDOWN: u8 = 0x03;
const OP_HEALTH: u8 = 0x05;
const OP_METRICS: u8 = 0x06;
const OP_SLOW_QUERIES: u8 = 0x07;
const OP_TRACES: u8 = 0x08;

/// Response opcodes.
const OP_CIRCUIT: u8 = 0x80;
const OP_ERROR: u8 = 0x81;
const OP_STATS_REPLY: u8 = 0x82;
const OP_SHUTTING_DOWN: u8 = 0x83;
const OP_OVERLOADED: u8 = 0x84;
const OP_HEALTH_REPLY: u8 = 0x85;
const OP_METRICS_REPLY: u8 = 0x86;
const OP_SLOW_QUERIES_REPLY: u8 = 0x87;
const OP_TRACES_REPLY: u8 = 0x88;

/// A client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Synthesize a cost-minimal circuit for this permutation under the
    /// given cost model, optionally bounded by a deadline (milliseconds
    /// of total latency budget; `None` means the client waits
    /// indefinitely, the pre-deadline wire forms).
    Query(Perm, CostKind, Option<u32>),
    /// Snapshot the server's [`ServeStats`].
    Stats,
    /// Stop the server gracefully.
    Shutdown,
    /// Probe readiness: uptime, restored-entry count, live workers and
    /// snapshot age, cheap enough for an external supervisor to poll.
    Health,
    /// Scrape the metrics registry: every stats counter, the per-stage
    /// latency histograms, and the engine profiling gauges, rendered in
    /// Prometheus text exposition format.
    Metrics,
    /// Fetch the captured slow-query traces (requests that exceeded the
    /// server's `--slow-query-us` threshold) as a JSON array.
    SlowQueries,
    /// Fetch the rolling ring of the most recent request traces (slow
    /// or not) as a JSON array.
    Traces,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The optimal circuit for a query.
    Circuit(Circuit),
    /// A request-level failure (unsynthesizable function, shutdown in
    /// progress, malformed request…).
    Error(String),
    /// The counter snapshot answering a stats request.
    Stats(ServeStats),
    /// Acknowledges a shutdown request; the server closes afterwards.
    ShuttingDown,
    /// The request was shed at admission (miss queue or connection
    /// limit); the client should back off and retry after the given
    /// hint. Cache hits are still served — only work that would queue
    /// is refused.
    Overloaded {
        /// Server's backoff hint, milliseconds.
        retry_after_ms: u32,
    },
    /// The readiness probe answering a health request.
    Health(HealthReport),
    /// The Prometheus text exposition answering a metrics request.
    Metrics(String),
    /// The slow-query JSON array answering a slow-queries request.
    SlowQueries(String),
    /// The recent-traces JSON array answering a traces request.
    Traces(String),
}

/// Error raised while reading or decoding protocol traffic.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying socket failure (includes a peer closing mid-frame).
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or is zero).
    BadLength(u32),
    /// The payload's opcode byte is not a known message.
    BadOpcode(u8),
    /// The body does not match the opcode's expected shape.
    BadBody(String),
}

impl ProtocolError {
    /// Whether the error is a clean end-of-stream before any frame byte
    /// was read — a peer hanging up between requests, not a protocol
    /// violation.
    #[must_use]
    pub fn is_clean_eof(&self) -> bool {
        matches!(self, ProtocolError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::BadLength(len) => {
                write!(f, "frame length {len} outside 1..={MAX_FRAME_LEN}")
            }
            ProtocolError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::BadBody(msg) => write!(f, "malformed body: {msg}"),
        }
    }
}

impl Error for ProtocolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Reads one frame's payload. Validates the length prefix before
/// allocating, so a hostile prefix costs four bytes of reading and
/// nothing else.
///
/// # Errors
///
/// [`ProtocolError::Io`] on socket failure or truncation,
/// [`ProtocolError::BadLength`] when the prefix is zero or oversized.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Vec<u8>, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(ProtocolError::BadLength(len));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// Incremental frame reader for sockets with a **read timeout**.
///
/// A plain [`read_frame`] on a timed-out socket would lose the bytes a
/// partial `read_exact` consumed and desynchronize the stream. This
/// reader accumulates whatever arrives into an internal buffer, so a
/// poll timeout ([`FrameReader::poll_frame`] returning `Ok(None)`) is
/// always resumable, and pipelined frames that arrive in one TCP
/// segment are handed out one at a time. The length prefix is validated
/// as soon as its four bytes are present — before the payload is
/// buffered — so an oversized prefix is rejected without allocation.
pub struct FrameReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a readable stream (typically a `TcpStream` with a read
    /// timeout set).
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
        }
    }

    /// Whether a clean end-of-stream here would fall on a frame
    /// boundary (no partial frame is buffered).
    #[must_use]
    pub fn at_frame_boundary(&self) -> bool {
        self.buf.is_empty()
    }

    /// Tries to complete the next frame. Returns:
    ///
    /// * `Ok(Some(payload))` — a full frame arrived;
    /// * `Ok(None)` — the read timed out with no complete frame; call
    ///   again, no bytes are lost;
    /// * `Err(_)` — end of stream (clean or mid-frame; see
    ///   [`at_frame_boundary`](Self::at_frame_boundary)), a socket
    ///   error, or an invalid length prefix.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Io`] with kind `UnexpectedEof` when the peer
    /// closed, [`ProtocolError::BadLength`] on a hostile prefix, any
    /// other [`ProtocolError::Io`] on socket failure.
    pub fn poll_frame(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        loop {
            if let Some(payload) = self.buffered_frame()? {
                return Ok(Some(payload));
            }
            match self.fill()? {
                Fill::Data { .. } => {}
                Fill::Empty => return Ok(None),
            }
        }
    }

    /// Hands out the next complete frame already sitting in the buffer
    /// **without touching the stream** — the zero-syscall half of
    /// [`poll_frame`](Self::poll_frame), for event loops that want to
    /// separate parsing from reading.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadLength`] on a hostile prefix (validated as
    /// soon as its four bytes are buffered).
    pub fn buffered_frame(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        if self.buf.len() >= 4 {
            let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes"));
            if len == 0 || len > MAX_FRAME_LEN {
                return Err(ProtocolError::BadLength(len));
            }
            let target = 4 + len as usize;
            if self.buf.len() >= target {
                let payload = self.buf[4..target].to_vec();
                self.buf.drain(..target);
                return Ok(Some(payload));
            }
        }
        Ok(None)
    }

    /// One read from the stream into the buffer — the syscall half of
    /// [`poll_frame`](Self::poll_frame). A short read reports
    /// `more_pending: false`: the socket buffer is drained for now, so
    /// a level-triggered readiness loop can stop reading without paying
    /// a would-block syscall (readiness fires again when bytes arrive).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Io`] with kind `UnexpectedEof` when the peer
    /// closed, any other [`ProtocolError::Io`] on socket failure.
    pub fn fill(&mut self) -> Result<Fill, ProtocolError> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return Err(ProtocolError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        if self.buf.is_empty() {
                            "peer closed between frames"
                        } else {
                            "peer closed mid-frame"
                        },
                    )))
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(Fill::Data {
                        more_pending: n == chunk.len(),
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Fill::Empty)
                }
                Err(e) => return Err(ProtocolError::Io(e)),
            }
        }
    }
}

/// What one [`FrameReader::fill`] read produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// Bytes were buffered; `more_pending` is whether the read filled
    /// the whole chunk (the socket may hold more right now).
    Data {
        /// `false` on a short read: the socket is drained for now.
        more_pending: bool,
    },
    /// The read would block (or timed out) with nothing buffered.
    Empty,
}

/// Writes one frame (length prefix + payload).
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — encoders never
/// produce such frames.
///
/// # Errors
///
/// Propagates socket failures.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).expect("frame fits u32");
    assert!(
        (1..=MAX_FRAME_LEN).contains(&len),
        "encoder produced an invalid frame length {len}"
    );
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Incremental frame writer for **non-blocking** sockets: the write-side
/// twin of [`FrameReader`].
///
/// A plain [`write_frame`] on a non-blocking socket would lose its place
/// when the kernel buffer fills mid-frame. This writer queues encoded
/// frames (length prefix + payload) into an internal buffer and
/// [`flush_into`](Self::flush_into) resumes from the exact byte where
/// the previous attempt stopped — a readiness-based event loop calls it
/// whenever the socket reports writable, and the stream never
/// desynchronizes no matter where `WouldBlock` cuts the frame.
#[derive(Debug, Default)]
pub struct FrameWriter {
    /// Queued wire bytes (complete frames only).
    pending: Vec<u8>,
    /// Bytes of `pending` already written to the stream.
    written: usize,
}

impl FrameWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        FrameWriter::default()
    }

    /// Queues one frame (length prefix + payload) for writing. Queueing
    /// never touches the socket — call [`flush_into`](Self::flush_into)
    /// to make progress.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — encoders never
    /// produce such frames.
    pub fn queue(&mut self, payload: &[u8]) {
        let len = u32::try_from(payload.len()).expect("frame fits u32");
        assert!(
            (1..=MAX_FRAME_LEN).contains(&len),
            "encoder produced an invalid frame length {len}"
        );
        self.pending.extend_from_slice(&len.to_le_bytes());
        self.pending.extend_from_slice(payload);
    }

    /// Whether any queued bytes remain unwritten.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        self.written < self.pending.len()
    }

    /// Writes as much queued data as the stream accepts right now.
    /// Returns `Ok(true)` when everything queued has been written and
    /// flushed, `Ok(false)` when the stream would block mid-way (call
    /// again on the next writable event; no bytes are lost or repeated).
    ///
    /// # Errors
    ///
    /// Propagates socket failures (other than `WouldBlock`/`TimedOut`,
    /// which are the resumable "try again" signal, and `Interrupted`,
    /// which is retried in place). A zero-length write is reported as
    /// [`io::ErrorKind::WriteZero`].
    pub fn flush_into<W: Write>(&mut self, writer: &mut W) -> io::Result<bool> {
        while self.has_pending() {
            match writer.write(&self.pending[self.written..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "stream accepted zero bytes mid-frame",
                    ))
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(false)
                }
                Err(e) => return Err(e),
            }
        }
        self.pending.clear();
        self.written = 0;
        writer.flush()?;
        Ok(true)
    }
}

/// Encodes a request into a frame payload.
#[must_use]
pub fn encode_request(request: &Request) -> Vec<u8> {
    match request {
        Request::Query(f, kind, deadline_ms) => {
            let mut payload = Vec::with_capacity(22);
            payload.push(OP_QUERY);
            payload.extend_from_slice(&f.values());
            match deadline_ms {
                // Gate count keeps the legacy 16-byte body
                // (wire-compatible with pre-cost-model clients); other
                // models append their discriminant byte.
                None => {
                    if *kind != CostKind::Gates {
                        payload.push(kind.code());
                    }
                }
                // A deadline always carries the model byte so the body
                // length alone disambiguates the three forms.
                Some(ms) => {
                    payload.push(kind.code());
                    payload.extend_from_slice(&ms.to_le_bytes());
                }
            }
            payload
        }
        Request::Stats => vec![OP_STATS],
        Request::Shutdown => vec![OP_SHUTDOWN],
        Request::Health => vec![OP_HEALTH],
        Request::Metrics => vec![OP_METRICS],
        Request::SlowQueries => vec![OP_SLOW_QUERIES],
        Request::Traces => vec![OP_TRACES],
    }
}

/// Decodes a frame payload into a request.
///
/// # Errors
///
/// [`ProtocolError::BadOpcode`] / [`ProtocolError::BadBody`] on any
/// malformed payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let (&op, body) = payload
        .split_first()
        .ok_or(ProtocolError::BadBody("empty payload".into()))?;
    match op {
        OP_QUERY => {
            let model_of = |byte: u8| {
                CostKind::from_code(byte).ok_or_else(|| {
                    ProtocolError::BadBody(format!("unknown cost model byte {byte:#04x}"))
                })
            };
            let (kind, deadline_ms) = match body.len() {
                16 => (CostKind::Gates, None), // legacy body form
                17 => (model_of(body[16])?, None),
                21 => {
                    let ms = u32::from_le_bytes(body[17..21].try_into().expect("4 deadline bytes"));
                    (model_of(body[16])?, Some(ms))
                }
                other => {
                    return Err(ProtocolError::BadBody(format!(
                        "query body is {other} bytes, expected 16, 17 or 21"
                    )))
                }
            };
            let perm = Perm::from_values(&body[..16])
                .map_err(|e| ProtocolError::BadBody(format!("query permutation: {e}")))?;
            Ok(Request::Query(perm, kind, deadline_ms))
        }
        OP_STATS if body.is_empty() => Ok(Request::Stats),
        OP_SHUTDOWN if body.is_empty() => Ok(Request::Shutdown),
        OP_HEALTH if body.is_empty() => Ok(Request::Health),
        OP_METRICS if body.is_empty() => Ok(Request::Metrics),
        OP_SLOW_QUERIES if body.is_empty() => Ok(Request::SlowQueries),
        OP_TRACES if body.is_empty() => Ok(Request::Traces),
        OP_STATS | OP_SHUTDOWN | OP_HEALTH | OP_METRICS | OP_SLOW_QUERIES | OP_TRACES => {
            Err(ProtocolError::BadBody(format!(
                "opcode {op:#04x} takes no body, got {} bytes",
                body.len()
            )))
        }
        other => Err(ProtocolError::BadOpcode(other)),
    }
}

/// Encodes a response into a frame payload.
#[must_use]
pub fn encode_response(response: &Response) -> Vec<u8> {
    match response {
        Response::Circuit(circuit) => {
            let mut payload = Vec::with_capacity(3 + circuit.len());
            payload.push(OP_CIRCUIT);
            let count = u16::try_from(circuit.len()).expect("circuit fits u16");
            payload.extend_from_slice(&count.to_le_bytes());
            for g in circuit.iter() {
                payload.push((g.controls() << 2) | g.target());
            }
            payload
        }
        Response::Error(msg) => {
            let mut payload = Vec::with_capacity(1 + msg.len());
            payload.push(OP_ERROR);
            payload.extend_from_slice(msg.as_bytes());
            payload
        }
        Response::Stats(stats) => {
            let mut payload = Vec::with_capacity(1 + 8 * ServeStats::FIELDS);
            payload.push(OP_STATS_REPLY);
            for v in stats.to_words() {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            payload
        }
        Response::ShuttingDown => vec![OP_SHUTTING_DOWN],
        Response::Overloaded { retry_after_ms } => {
            let mut payload = Vec::with_capacity(5);
            payload.push(OP_OVERLOADED);
            payload.extend_from_slice(&retry_after_ms.to_le_bytes());
            payload
        }
        Response::Health(health) => {
            let mut payload = Vec::with_capacity(1 + 8 * HealthReport::FIELDS);
            payload.push(OP_HEALTH_REPLY);
            for v in health.to_words() {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            payload
        }
        Response::Metrics(text) => {
            let mut payload = Vec::with_capacity(1 + text.len());
            payload.push(OP_METRICS_REPLY);
            payload.extend_from_slice(text.as_bytes());
            payload
        }
        Response::SlowQueries(json) => {
            let mut payload = Vec::with_capacity(1 + json.len());
            payload.push(OP_SLOW_QUERIES_REPLY);
            payload.extend_from_slice(json.as_bytes());
            payload
        }
        Response::Traces(json) => {
            let mut payload = Vec::with_capacity(1 + json.len());
            payload.push(OP_TRACES_REPLY);
            payload.extend_from_slice(json.as_bytes());
            payload
        }
    }
}

/// Decodes a frame payload into a response.
///
/// # Errors
///
/// [`ProtocolError::BadOpcode`] / [`ProtocolError::BadBody`] on any
/// malformed payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let (&op, body) = payload
        .split_first()
        .ok_or(ProtocolError::BadBody("empty payload".into()))?;
    match op {
        OP_CIRCUIT => {
            if body.len() < 2 {
                return Err(ProtocolError::BadBody("circuit body too short".into()));
            }
            let count = usize::from(u16::from_le_bytes([body[0], body[1]]));
            let gates = &body[2..];
            if gates.len() != count {
                return Err(ProtocolError::BadBody(format!(
                    "circuit declares {count} gates but carries {}",
                    gates.len()
                )));
            }
            let mut circuit = Circuit::new();
            for (i, &byte) in gates.iter().enumerate() {
                if byte & 0x80 != 0 {
                    return Err(ProtocolError::BadBody(format!(
                        "gate byte {i} has bit 7 set"
                    )));
                }
                // No mask on the control bits: Gate::new rejects a set
                // bit 6 (control out of range) instead of silently
                // aliasing bytes 0x40..=0x7F onto valid gates.
                let gate = Gate::new(byte >> 2, byte & 0x03)
                    .map_err(|e| ProtocolError::BadBody(format!("gate byte {i}: {e}")))?;
                circuit.push(gate);
            }
            Ok(Response::Circuit(circuit))
        }
        OP_ERROR => {
            let msg = std::str::from_utf8(body)
                .map_err(|_| ProtocolError::BadBody("error message is not UTF-8".into()))?;
            Ok(Response::Error(msg.to_owned()))
        }
        OP_STATS_REPLY => {
            // Accept bodies *longer* than the compiled-in word count (a
            // newer server may append counters); reject short/unaligned.
            if body.len() < 8 * ServeStats::FIELDS || body.len() % 8 != 0 {
                return Err(ProtocolError::BadBody(format!(
                    "stats body is {} bytes, expected a multiple of 8 and at least {}",
                    body.len(),
                    8 * ServeStats::FIELDS
                )));
            }
            let mut words = [0u64; ServeStats::FIELDS];
            for (i, chunk) in body.chunks_exact(8).take(ServeStats::FIELDS).enumerate() {
                words[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            Ok(Response::Stats(ServeStats::from_words(&words)))
        }
        OP_SHUTTING_DOWN if body.is_empty() => Ok(Response::ShuttingDown),
        OP_SHUTTING_DOWN => Err(ProtocolError::BadBody(
            "shutdown acknowledgement takes no body".into(),
        )),
        OP_OVERLOADED => {
            let bytes: [u8; 4] = body.try_into().map_err(|_| {
                ProtocolError::BadBody(format!(
                    "overloaded body is {} bytes, expected 4",
                    body.len()
                ))
            })?;
            Ok(Response::Overloaded {
                retry_after_ms: u32::from_le_bytes(bytes),
            })
        }
        OP_HEALTH_REPLY => {
            // Same forward-compatible rule as the stats reply.
            if body.len() < 8 * HealthReport::FIELDS || body.len() % 8 != 0 {
                return Err(ProtocolError::BadBody(format!(
                    "health body is {} bytes, expected a multiple of 8 and at least {}",
                    body.len(),
                    8 * HealthReport::FIELDS
                )));
            }
            let mut words = [0u64; HealthReport::FIELDS];
            for (i, chunk) in body.chunks_exact(8).take(HealthReport::FIELDS).enumerate() {
                words[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            Ok(Response::Health(HealthReport::from_words(&words)))
        }
        OP_METRICS_REPLY => {
            let text = std::str::from_utf8(body)
                .map_err(|_| ProtocolError::BadBody("metrics exposition is not UTF-8".into()))?;
            Ok(Response::Metrics(text.to_owned()))
        }
        OP_SLOW_QUERIES_REPLY => {
            let json = std::str::from_utf8(body)
                .map_err(|_| ProtocolError::BadBody("slow-query report is not UTF-8".into()))?;
            Ok(Response::SlowQueries(json.to_owned()))
        }
        OP_TRACES_REPLY => {
            let json = std::str::from_utf8(body)
                .map_err(|_| ProtocolError::BadBody("trace report is not UTF-8".into()))?;
            Ok(Response::Traces(json.to_owned()))
        }
        other => Err(ProtocolError::BadOpcode(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let f = Perm::from_values(&[1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14]).unwrap();
        for req in [
            Request::Query(f, CostKind::Gates, None),
            Request::Query(f, CostKind::Quantum, None),
            Request::Query(f, CostKind::Depth, None),
            Request::Query(f, CostKind::Gates, Some(0)),
            Request::Query(f, CostKind::Quantum, Some(1_500)),
            Request::Query(f, CostKind::Depth, Some(u32::MAX)),
            Request::Stats,
            Request::Shutdown,
            Request::Health,
            Request::Metrics,
            Request::SlowQueries,
            Request::Traces,
        ] {
            let payload = encode_request(&req);
            assert_eq!(decode_request(&payload).unwrap(), req);
        }
        // The gates encoding stays byte-identical to the pre-cost-model
        // protocol: 16-byte body, no model byte.
        assert_eq!(
            encode_request(&Request::Query(f, CostKind::Gates, None)).len(),
            17
        );
        assert_eq!(
            encode_request(&Request::Query(f, CostKind::Quantum, None)).len(),
            18
        );
        // A deadline always carries the model byte: 1 opcode + 16 perm +
        // 1 model + 4 deadline.
        assert_eq!(
            encode_request(&Request::Query(f, CostKind::Gates, Some(250))).len(),
            22
        );
    }

    #[test]
    fn deadline_decoding_is_length_disambiguated() {
        let id: Vec<u8> = (0..16).collect();
        // 21-byte body: model byte + 4-byte LE deadline.
        let mut payload = vec![OP_QUERY];
        payload.extend_from_slice(&id);
        payload.push(CostKind::Depth.code());
        payload.extend_from_slice(&750u32.to_le_bytes());
        assert_eq!(
            decode_request(&payload).unwrap(),
            Request::Query(Perm::identity(), CostKind::Depth, Some(750))
        );
        // A 21-byte body still validates its model byte (payload index
        // 17: opcode + 16 permutation values).
        payload[17] = 0xEE;
        assert!(matches!(
            decode_request(&payload).unwrap_err(),
            ProtocolError::BadBody(_)
        ));
        // Lengths between/around the three valid forms are rejected.
        for len in [18usize, 19, 20, 22] {
            let mut bad = vec![OP_QUERY];
            bad.extend_from_slice(&id);
            bad.extend(std::iter::repeat_n(0u8, len - 16));
            assert!(decode_request(&bad).is_err(), "body length {len}");
        }
    }

    #[test]
    fn response_roundtrips() {
        let circuit: Circuit = "TOF(a,b,d) CNOT(a,b) TOF(b,c,d) CNOT(b,c)".parse().unwrap();
        let stats = ServeStats {
            wires: 4,
            requests: 7,
            cache_hits: 3,
            cache_misses: 4,
            coalesced: 2,
            searches: 4,
            batches: 1,
            max_batch: 4,
            evictions: 1,
            errors: 0,
            cached_classes: 3,
            cache_capacity: 64,
            p50_latency_us: 12,
            p99_latency_us: 900,
            shed: 5,
            expired: 2,
            shed_conns: 1,
            restored: 9,
            snapshot_writes: 3,
            snapshot_skipped: 2,
            worker_restarts: 1,
            steals: 4,
        };
        for resp in [
            Response::Circuit(circuit),
            Response::Circuit(Circuit::new()),
            Response::Error("no circuit with at most 6 gates".into()),
            Response::Stats(stats),
            Response::ShuttingDown,
            Response::Overloaded { retry_after_ms: 0 },
            Response::Overloaded {
                retry_after_ms: 250,
            },
            Response::Overloaded {
                retry_after_ms: u32::MAX,
            },
            Response::Health(HealthReport {
                uptime_ms: 60_000,
                restored: 1_024,
                live_workers: 4,
                snapshot_age_ms: 1_500,
            }),
            Response::Health(HealthReport {
                snapshot_age_ms: HealthReport::NO_SNAPSHOT,
                ..HealthReport::default()
            }),
            Response::Metrics(String::new()),
            Response::Metrics("# TYPE revsynth_requests counter\nrevsynth_requests 7\n".into()),
            Response::SlowQueries("[]".into()),
            Response::SlowQueries("[{\"span_id\":\"00000000075bcd15\"}]".into()),
            Response::Traces("[]".into()),
            Response::Traces("[{\"span_id\":\"00000000075bcd15\"}]".into()),
        ] {
            let payload = encode_response(&resp);
            assert_eq!(decode_response(&payload).unwrap(), resp);
        }
        // Malformed overloaded bodies are rejected, not zero-filled.
        for len in [0usize, 3, 5, 8] {
            let mut bad = vec![OP_OVERLOADED];
            bad.extend(std::iter::repeat_n(0u8, len));
            assert!(decode_response(&bad).is_err(), "body length {len}");
        }
        // Malformed health bodies too: short or misaligned. (40 bytes —
        // five words — is *not* malformed; see the tolerance test.)
        for len in [0usize, 8, 31, 33, 39] {
            let mut bad = vec![OP_HEALTH_REPLY];
            bad.extend(std::iter::repeat_n(0u8, len));
            assert!(decode_response(&bad).is_err(), "body length {len}");
        }
        // A health request takes no body.
        assert!(decode_request(&[OP_HEALTH, 0]).is_err());
        // Non-UTF-8 metrics / slow-query / trace bodies are rejected.
        assert!(decode_response(&[OP_METRICS_REPLY, 0xFF, 0xFE]).is_err());
        assert!(decode_response(&[OP_SLOW_QUERIES_REPLY, 0xFF, 0xFE]).is_err());
        assert!(decode_response(&[OP_TRACES_REPLY, 0xFF, 0xFE]).is_err());
        // A traces request takes no body.
        assert!(decode_request(&[OP_TRACES, 0]).is_err());
    }

    #[test]
    fn longer_stats_and_health_replies_decode_their_known_prefix() {
        // A newer server may append counters to the fixed-width frames;
        // the decoder reads the words it knows and ignores the tail.
        let stats = ServeStats {
            requests: 42,
            cache_hits: 41,
            ..ServeStats::default()
        };
        let mut payload = encode_response(&Response::Stats(stats));
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        payload.extend_from_slice(&7u64.to_le_bytes());
        match decode_response(&payload).unwrap() {
            Response::Stats(decoded) => {
                assert_eq!(decoded.requests, 42);
                assert_eq!(decoded.cache_hits, 41);
            }
            other => panic!("expected stats, got {other:?}"),
        }

        let health = HealthReport {
            uptime_ms: 9_000,
            restored: 5,
            live_workers: 3,
            snapshot_age_ms: 100,
        };
        let mut payload = encode_response(&Response::Health(health));
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        match decode_response(&payload).unwrap() {
            Response::Health(decoded) => assert_eq!(decoded, health),
            other => panic!("expected health, got {other:?}"),
        }

        // One word short of the compiled-in count is still an error.
        let trimmed = &encode_response(&Response::Stats(ServeStats::default()))[..1 + 8 * 20];
        assert!(decode_response(trimmed).is_err());
    }

    #[test]
    fn frame_roundtrips_over_a_buffer() {
        let payload = encode_request(&Request::Stats);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
    }

    #[test]
    fn oversized_and_zero_lengths_are_rejected_before_reading() {
        for len in [0u32, MAX_FRAME_LEN + 1, u32::MAX] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&len.to_le_bytes());
            buf.extend_from_slice(&[0u8; 8]);
            let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
            assert!(matches!(err, ProtocolError::BadLength(l) if l == len));
        }
    }

    #[test]
    fn truncated_frames_are_io_errors() {
        // Length prefix cut short.
        let err = read_frame(&mut io::Cursor::new(vec![5u8, 0])).unwrap_err();
        assert!(err.is_clean_eof() || matches!(err, ProtocolError::Io(_)));
        // Payload cut short.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(&[1, 2, 3]);
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, ProtocolError::Io(_)));
    }

    #[test]
    fn garbage_payloads_decode_to_errors_never_panics() {
        // Every 1- and 2-byte payload, plus assorted longer garbage: the
        // decoders must return a typed error or a valid message.
        for a in 0..=255u8 {
            let _ = decode_request(&[a]);
            let _ = decode_response(&[a]);
            for b in [0u8, 1, 16, 127, 128, 255] {
                let _ = decode_request(&[a, b]);
                let _ = decode_response(&[a, b]);
            }
        }
        assert!(decode_request(&[]).is_err());
        assert!(decode_response(&[]).is_err());
        // A query with a non-permutation body.
        let mut bad = vec![OP_QUERY];
        bad.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            decode_request(&bad).unwrap_err(),
            ProtocolError::BadBody(_)
        ));
        // A circuit whose declared count disagrees with its bytes.
        let bad = vec![OP_CIRCUIT, 5, 0, 1, 2];
        assert!(decode_response(&bad).is_err());
    }

    #[test]
    fn gate_bytes_with_bit_6_set_are_rejected_not_aliased() {
        // 0x44 = bit 6 + gate 0x04's bits: a masked decode would
        // silently turn it into a different valid gate.
        for byte in [0x40u8, 0x44, 0x7F] {
            let payload = vec![OP_CIRCUIT, 1, 0, byte];
            assert!(
                matches!(
                    decode_response(&payload).unwrap_err(),
                    ProtocolError::BadBody(_)
                ),
                "byte {byte:#04x} must not decode"
            );
        }
    }

    /// A reader that yields its script one item per call: `Ok(bytes)`
    /// chunks, or a timeout error, simulating a trickling client.
    struct Script {
        items: std::collections::VecDeque<io::Result<Vec<u8>>>,
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.items.pop_front() {
                Some(Ok(bytes)) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(Err(e)) => Err(e),
                None => Ok(0),
            }
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        // A frame trickling in around read timeouts must reassemble
        // exactly — the regression a plain read_exact loop fails.
        let payload = encode_request(&Request::Stats);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let (head, tail) = wire.split_at(3);
        let timeout = || io::Error::new(io::ErrorKind::WouldBlock, "poll");
        let mut reader = FrameReader::new(Script {
            items: [
                Err(timeout()),
                Ok(head.to_vec()),
                Err(timeout()),
                Ok(tail.to_vec()),
            ]
            .into_iter()
            .collect(),
        });
        assert!(
            reader.poll_frame().unwrap().is_none(),
            "first poll times out"
        );
        assert!(
            reader.poll_frame().unwrap().is_none(),
            "partial frame pends"
        );
        assert!(!reader.at_frame_boundary());
        assert_eq!(reader.poll_frame().unwrap().unwrap(), payload);
        assert!(reader.at_frame_boundary());
    }

    #[test]
    fn frame_reader_splits_pipelined_frames() {
        let a = encode_request(&Request::Stats);
        let b = encode_request(&Request::Shutdown);
        let mut wire = Vec::new();
        write_frame(&mut wire, &a).unwrap();
        write_frame(&mut wire, &b).unwrap();
        let mut reader = FrameReader::new(Script {
            items: [Ok(wire)].into_iter().collect(),
        });
        assert_eq!(reader.poll_frame().unwrap().unwrap(), a);
        assert_eq!(reader.poll_frame().unwrap().unwrap(), b);
        let err = reader.poll_frame().unwrap_err();
        assert!(err.is_clean_eof());
    }

    #[test]
    fn frame_reader_rejects_bad_length_without_buffering_payload() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0xAB; 32]);
        let mut reader = FrameReader::new(Script {
            items: [Ok(wire)].into_iter().collect(),
        });
        assert!(matches!(
            reader.poll_frame().unwrap_err(),
            ProtocolError::BadLength(l) if l == u32::MAX
        ));
    }

    #[test]
    fn frame_reader_distinguishes_mid_frame_close() {
        let mut reader = FrameReader::new(Script {
            items: [Ok(vec![9, 0, 0, 0, 1, 2])].into_iter().collect(),
        });
        let err = reader.poll_frame().unwrap_err();
        assert!(err.is_clean_eof(), "kind is UnexpectedEof");
        assert!(!reader.at_frame_boundary(), "but a frame was in flight");
    }

    #[test]
    fn query_rejects_wrong_body_lengths() {
        for len in [0usize, 1, 15, 18, 64] {
            let mut payload = vec![OP_QUERY];
            payload.extend(std::iter::repeat_n(0u8, len));
            assert!(decode_request(&payload).is_err(), "body length {len}");
        }
        // 17 bytes needs a valid permutation AND a known model byte.
        let id: Vec<u8> = (0..16).collect();
        for model_byte in [3u8, 0x7F, 0xFF] {
            let mut payload = vec![OP_QUERY];
            payload.extend_from_slice(&id);
            payload.push(model_byte);
            assert!(matches!(
                decode_request(&payload).unwrap_err(),
                ProtocolError::BadBody(_)
            ));
        }
        // A legacy 16-byte body decodes as a gate-count query.
        let mut payload = vec![OP_QUERY];
        payload.extend_from_slice(&id);
        assert!(matches!(
            decode_request(&payload).unwrap(),
            Request::Query(_, CostKind::Gates, None)
        ));
    }

    /// A writer that accepts at most `accept` bytes per call, refusing
    /// with `WouldBlock` once its total budget is spent — a non-blocking
    /// socket whose send buffer fills at an arbitrary byte.
    struct Throttle {
        wire: Vec<u8>,
        accept: usize,
        budget: usize,
    }

    impl Write for Throttle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.accept).min(self.budget);
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            self.budget -= n;
            self.wire.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_writer_resumes_from_every_cut_point() {
        // Two pipelined frames, the kernel buffer filling at every
        // possible byte offset: the writer must resume without losing,
        // repeating, or reordering a single byte.
        let a = encode_response(&Response::ShuttingDown);
        let b = encode_request(&Request::Stats);
        let mut expected = Vec::new();
        write_frame(&mut expected, &a).unwrap();
        write_frame(&mut expected, &b).unwrap();
        for cut in 0..=expected.len() {
            let mut writer = FrameWriter::new();
            writer.queue(&a);
            writer.queue(&b);
            assert!(writer.has_pending());
            let mut sink = Throttle {
                wire: Vec::new(),
                accept: usize::MAX,
                budget: cut,
            };
            let done = writer.flush_into(&mut sink).unwrap();
            assert_eq!(done, cut == expected.len(), "cut {cut}");
            assert_eq!(writer.has_pending(), !done);
            // The socket drains; the resumed flush completes the wire.
            sink.budget = usize::MAX;
            assert!(writer.flush_into(&mut sink).unwrap(), "cut {cut}");
            assert!(!writer.has_pending());
            assert_eq!(sink.wire, expected, "cut {cut}");
        }
    }

    #[test]
    fn frame_writer_survives_single_byte_writes() {
        // The degenerate glacial socket: one byte per writable event.
        let payload = encode_request(&Request::Metrics);
        let mut expected = Vec::new();
        write_frame(&mut expected, &payload).unwrap();
        let mut writer = FrameWriter::new();
        writer.queue(&payload);
        let mut sink = Throttle {
            wire: Vec::new(),
            accept: 1,
            budget: usize::MAX,
        };
        // `accept: 1` never reports WouldBlock while budget remains, so
        // a single flush loops byte-at-a-time to completion.
        assert!(writer.flush_into(&mut sink).unwrap());
        assert_eq!(sink.wire, expected);
    }

    #[test]
    fn frame_writer_reports_dead_sinks() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut writer = FrameWriter::new();
        writer.queue(&encode_request(&Request::Health));
        let err = writer.flush_into(&mut Dead).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }
}
