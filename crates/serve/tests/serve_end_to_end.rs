//! End-to-end service behavior over real sockets: cache semantics
//! across class members, request coalescing under concurrent clients,
//! stats accounting, error paths and graceful shutdown.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use revsynth_circuit::{Circuit, CostKind, CostModel};
use revsynth_core::{SuiteConfig, SynthesisSuite, Synthesizer};
use revsynth_perm::Perm;
use revsynth_serve::{Client, ClientError, QueryOptions, ServeConfig, Server, ServerHandle};

fn start_server(k: usize, workers: usize) -> ServerHandle {
    let suite = Arc::new(SynthesisSuite::new(
        Synthesizer::from_scratch(4, k),
        SuiteConfig {
            quantum_budget: 7,
            depth_budget: 2,
        },
    ));
    let config = ServeConfig {
        workers,
        ..ServeConfig::default()
    };
    Server::bind(suite, &config).expect("bind loopback").spawn()
}

#[test]
fn class_members_are_served_from_one_search() {
    let handle = start_server(2, 1);
    let mut client = Client::connect(handle.addr()).unwrap();

    // rd32 (4 gates) and several members of its class.
    let base: Circuit = "TOF(a,b,d) CNOT(a,b) TOF(b,c,d) CNOT(b,c)".parse().unwrap();
    let f = base.perm(4);
    let first = client.query(f).unwrap();
    assert_eq!(first.perm(4), f);
    assert_eq!(first.len(), 4, "provably minimal");
    let after_first = client.stats().unwrap();
    assert_eq!(after_first.searches, 1);
    assert_eq!(after_first.cache_misses, 1);

    // Distinct members: relabelings and the inverse. All must be
    // answered exactly, at the same cost, with zero further searches.
    let members = [
        f.inverse(),
        f.conjugate_by_wires(revsynth_perm::WirePerm::transposition(0, 2)),
        f.conjugate_by_wires(revsynth_perm::WirePerm::transposition(1, 3))
            .inverse(),
    ];
    for member in members {
        let circuit = client.query(member).unwrap();
        assert_eq!(circuit.perm(4), member);
        assert_eq!(circuit.len(), 4, "replay is cost-preserving");
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.searches, 1, "warm path must not search");
    assert_eq!(
        stats.cache_hits,
        after_first.cache_hits + members.len() as u64
    );
    assert_eq!(stats.requests, 1 + members.len() as u64);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.cached_classes, 1);

    client.shutdown_server().unwrap();
    let final_stats = handle.join().unwrap();
    assert_eq!(final_stats.searches, 1);
}

#[test]
fn concurrent_clients_coalesce_on_a_cold_class() {
    let handle = start_server(3, 1);
    let addr = handle.addr();

    // A size-6 function: the miss does real meet-in-the-middle work,
    // holding the in-flight window open while the other clients arrive.
    let base: Circuit = "TOF(a,b,d) CNOT(a,b) TOF(b,c,d) CNOT(b,c) NOT(a) TOF(a,c,b)"
        .parse()
        .unwrap();
    let f = base.perm(4);
    let clients = 4;
    let barrier = Barrier::new(clients);
    let circuits: Vec<Circuit> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    // Distinct members of one class, queried at once.
                    let member = if c % 2 == 0 { f } else { f.inverse() };
                    barrier.wait();
                    let circuit = client.query(member).unwrap();
                    assert_eq!(circuit.perm(4), member);
                    circuit
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for c in &circuits {
        assert_eq!(c.len(), circuits[0].len(), "one class, one cost");
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.requests, clients as u64);
    assert_eq!(stats.searches, 1, "one search served all four clients");
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        clients as u64,
        "every request either hit or missed"
    );
    // The misses beyond the first either coalesced onto the in-flight
    // ticket or arrived after the cache was filled; all outcomes are
    // search-free. coalesced counts the former.
    assert_eq!(stats.errors, 0);

    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn cost_models_get_distinct_cache_entries_and_correct_circuits() {
    let handle = start_server(2, 1);
    let mut client = Client::connect(handle.addr()).unwrap();

    // TOF(a,b,c) NOT(d): 2 gates, quantum cost 5 + 1, depth 1 (disjoint).
    let base: Circuit = "TOF(a,b,c) NOT(d)".parse().unwrap();
    let f = base.perm(4);

    let gates = client.query(f).unwrap();
    assert_eq!(gates.perm(4), f);
    assert_eq!(gates.len(), 2, "gate-count optimal");

    let quantum = client
        .query_opts(f, &QueryOptions::new().cost_model(CostKind::Quantum))
        .unwrap();
    assert_eq!(quantum.perm(4), f);
    assert_eq!(quantum.cost(&CostModel::quantum()), 6, "quantum optimal");

    let depth = client
        .query_opts(f, &QueryOptions::new().cost_model(CostKind::Depth))
        .unwrap();
    assert_eq!(depth.perm(4), f);
    assert_eq!(depth.depth(), 1, "the two gates share a time step");

    // Same function, three models ⇒ three cache entries, three
    // searches, zero coalescing across models.
    let stats = client.stats().unwrap();
    assert_eq!(stats.cached_classes, 3, "one entry per (model, class)");
    assert_eq!(stats.searches, 3);
    assert_eq!(stats.cache_misses, 3);
    assert_eq!(stats.coalesced, 0);

    // A different member of the same class under quantum is a warm hit
    // at identical cost: replay preserves every model's measure.
    let member = f.inverse();
    let replayed = client
        .query_opts(member, &QueryOptions::new().cost_model(CostKind::Quantum))
        .unwrap();
    assert_eq!(replayed.perm(4), member);
    assert_eq!(replayed.cost(&CostModel::quantum()), 6);
    let warm = client.stats().unwrap();
    assert_eq!(warm.searches, 3, "no further search");
    assert_eq!(warm.cache_hits, stats.cache_hits + 1);

    // Beyond-budget depth queries fail cleanly per model without
    // disturbing the others (SWAP(a,b) needs depth 3 > budget 2).
    let swap: Circuit = "CNOT(a,b) CNOT(b,a) CNOT(a,b)".parse().unwrap();
    match client.query_opts(
        swap.perm(4),
        &QueryOptions::new().cost_model(CostKind::Depth),
    ) {
        Err(ClientError::Server(_)) => {}
        other => panic!("expected a server error, got {other:?}"),
    }
    assert_eq!(
        client.query(swap.perm(4)).unwrap().len(),
        3,
        "gates still fine"
    );

    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn domain_and_reach_errors_are_reported_not_fatal() {
    let handle = start_server(2, 1);
    let mut client = Client::connect(handle.addr()).unwrap();

    // Beyond the k = 2 tables' reach (size > 4).
    let hard = Perm::from_values(&[15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11]).unwrap();
    match client.query(hard) {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("no circuit"), "{msg}");
        }
        other => panic!("expected a server error, got {other:?}"),
    }
    // The connection and the server survive; valid queries still work.
    let ok = Perm::from_values(&[1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14]).unwrap();
    assert_eq!(client.query(ok).unwrap().len(), 1, "NOT(a) is one gate");
    let stats = client.stats().unwrap();
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.requests, 2);
    assert!(stats.p99_latency_us >= stats.p50_latency_us);

    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn identity_and_single_gates_roundtrip() {
    let handle = start_server(2, 1);
    let mut client = Client::connect(handle.addr()).unwrap();
    let id = Perm::identity();
    let circuit = client.query(id).unwrap();
    assert!(circuit.is_empty(), "identity is the empty circuit");
    for (_, _, p) in revsynth_circuit::GateLib::nct(4).iter() {
        let c = client.query(p).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.perm(4), p);
    }
    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn shutdown_is_graceful_and_final() {
    let handle = start_server(2, 2);
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    let f = Perm::from_values(&[1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14]).unwrap();
    client.query(f).unwrap();
    client.shutdown_server().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.errors, 0);
    // The listener is gone: a fresh connection must fail (immediately
    // or at first use), not hang.
    match Client::connect_with_timeout(addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut c) => assert!(c.stats().is_err(), "server must be down"),
    }
}

#[test]
fn loadgen_quick_run_is_clean() {
    let handle = start_server(3, 1);
    let addr = handle.addr();
    let config = revsynth_serve::loadgen::LoadgenConfig::quick(7);
    let report = revsynth_serve::loadgen::run(addr, 4, &config).expect("loadgen runs");
    assert_eq!(report.errors, 0, "all queries verified: {report:?}");
    // At least the two configured phases ran; the bounded coalescing
    // retries may add extra rendezvous rounds on fresh classes.
    assert!(
        report.successes >= (config.clients * (config.requests_per_client + config.pool)) as u64
    );
    // The class pools are tiny: at most `pool` classes per attempt
    // (initial + up to 2 retries) are ever searched; hits dominate.
    assert!(report.stats.searches <= 3 * config.pool as u64);
    assert!(report.stats.cache_hits > report.stats.searches);
    assert!(report.throughput() > 0.0);

    Client::connect(addr).unwrap().shutdown_server().unwrap();
    handle.join().unwrap();
}

/// The one-release compatibility contract: the deprecated
/// `ServerConfig` + `query_with_*` shims must keep serving, bit-for-bit
/// equivalent to their `ServeConfig`/`QueryOptions` replacements.
#[test]
#[allow(deprecated)]
fn deprecated_shims_still_serve() {
    let suite = Arc::new(SynthesisSuite::new(
        Synthesizer::from_scratch(4, 2),
        SuiteConfig {
            quantum_budget: 7,
            depth_budget: 2,
        },
    ));
    let old = revsynth_serve::ServerConfig::default();
    let handle = Server::bind(suite, &old)
        .expect("bind via deprecated config")
        .spawn();
    let mut client = Client::connect(handle.addr()).unwrap();

    let base: Circuit = "TOF(a,b,d) CNOT(a,b)".parse().unwrap();
    let f = base.perm(4);
    let via_cost = client.query_with_cost(f, CostKind::Gates).unwrap();
    let via_deadline = client
        .query_with_deadline(f, CostKind::Gates, Some(30_000))
        .unwrap();
    let via_retry = client
        .query_with_retry(f, CostKind::Gates, &revsynth_serve::RetryPolicy::default())
        .unwrap();
    let via_opts = client.query_opts(f, &QueryOptions::new()).unwrap();
    for circuit in [&via_cost, &via_deadline, &via_retry] {
        assert_eq!(circuit.gates(), via_opts.gates());
        assert_eq!(circuit.perm(4), f);
    }

    client.shutdown_server().unwrap();
    handle.join().unwrap();
}
