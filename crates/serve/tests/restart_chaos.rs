//! Restart-chaos suite: the crash-safe warm-restart contract, end to
//! end. A warmed server must come back from its snapshot answering the
//! same working set with **zero** new searches and every circuit exact;
//! torn tails, bitflips and unreadable headers must degrade to skipped
//! records or a quarantined cold boot — never a panic, never a wrong
//! answer; panicking workers must be respawned without stranding a
//! single waiter; and the health probe must report it all.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use revsynth_analysis::{Rng, SplitMix64};
use revsynth_circuit::{Circuit, CostKind, GateLib};
use revsynth_core::{SuiteConfig, SynthesisSuite, Synthesizer};
use revsynth_serve::loadgen::{self, LoadgenConfig};
use revsynth_serve::snapshot::{self, RestoreOutcome, SnapshotRecord};
use revsynth_serve::{
    ClassCache, Client, FaultPlan, HealthReport, ServeConfig, Server, ServerHandle,
};

/// Deep enough (`k = 3`, quantum budget 7) that the loadgen pool's
/// up-to-5-gate circuits all synthesize within budget, so loadgen
/// reports distinguish *injected* damage from legitimate misses.
fn suite() -> Arc<SynthesisSuite> {
    Arc::new(SynthesisSuite::new(
        Synthesizer::from_scratch(4, 3),
        SuiteConfig {
            quantum_budget: 7,
            depth_budget: 2,
        },
    ))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("revsynth-restart-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(config: &ServeConfig) -> ServerHandle {
    Server::bind(suite(), config)
        .expect("bind loopback")
        .spawn()
}

fn snapshot_config(path: &std::path::Path) -> ServeConfig {
    ServeConfig {
        snapshot: Some(path.to_path_buf()),
        ..ServeConfig::default()
    }
}

/// Warm → graceful shutdown → restart from the same snapshot path →
/// the same working set is served with zero new searches, every
/// circuit exact. The tentpole's happy path.
#[test]
fn graceful_shutdown_then_warm_restart_costs_zero_searches() {
    let dir = tempdir("warm");
    let path = dir.join("cache.snap");
    let config = snapshot_config(&path);
    let load = LoadgenConfig::quick(0xFEED);

    // Incarnation 1: warm the cache, shut down gracefully (which
    // writes the final snapshot).
    let first = start_server(&config);
    let report = loadgen::run(first.addr(), 4, &load).expect("warm run");
    assert_eq!(report.errors, 0, "{report:?}");
    let warmed_searches = report.stats.searches;
    assert!(warmed_searches > 0, "the warm run searched something");
    Client::connect(first.addr())
        .unwrap()
        .shutdown_server()
        .unwrap();
    let final_stats = first.join().unwrap();
    assert!(
        final_stats.snapshot_writes >= 1,
        "graceful shutdown snapshots: {final_stats:?}"
    );
    assert!(path.exists(), "snapshot on disk after shutdown");

    // Incarnation 2: boot from the snapshot, replay the working set.
    let second = start_server(&config);
    let restart = loadgen::run_restart(second.addr(), 4, &load).expect("restart replay");
    restart.verify(true).expect("warm-restart contract");
    assert!(restart.restored > 0, "{restart:?}");
    assert_eq!(restart.searches_delta, 0, "{restart:?}");
    Client::connect(second.addr())
        .unwrap()
        .shutdown_server()
        .unwrap();
    second.join().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// Seeded property test: a cache filled across every shard and every
/// cost model exports, snapshots, and restores bit-identically —
/// contents AND recency order.
#[test]
fn property_snapshot_roundtrips_across_all_shards_and_models() {
    let dir = tempdir("property");
    let path = dir.join("cache.snap");
    let lib = GateLib::nct(4);
    let gates: Vec<_> = lib.iter().map(|(_, g, _)| g).collect();
    let mut rng = SplitMix64::new(0x5EED_CAFE);
    let cache = ClassCache::new(256);
    // Random circuits keyed by the permutation they compute (the
    // snapshot layer validates replay, not canonicality): enough draws
    // that, with 8 shards keyed by an avalanched hash, every shard ends
    // up populated and every cost model appears.
    for _ in 0..96 {
        let len = 1 + (rng.next_u64() as usize % 4);
        let circuit =
            Circuit::from_gates((0..len).map(|_| gates[rng.next_u64() as usize % gates.len()]));
        let rep = circuit.perm(4);
        let kind = CostKind::ALL[rng.next_u64() as usize % CostKind::ALL.len()];
        cache.insert(kind, rep, circuit);
    }
    let exported = cache.export();
    assert_eq!(exported.len() as u64, cache.counters().len);
    let records: Vec<SnapshotRecord> = exported
        .into_iter()
        .map(|(kind, rep, circuit)| SnapshotRecord { kind, rep, circuit })
        .collect();
    // Every cost model made it in.
    for kind in CostKind::ALL {
        assert!(
            records.iter().any(|r| r.kind == kind),
            "model {kind:?} missing from the draw"
        );
    }
    snapshot::write_snapshot(&path, 4, &records).unwrap();
    match snapshot::restore(&path, 4) {
        RestoreOutcome::Restored {
            records: restored,
            skipped,
        } => {
            assert_eq!(skipped, 0);
            assert_eq!(restored, records, "bit-identical, order included");
        }
        other => panic!("expected restore, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

/// A torn tail (truncated mid-record) boots the intact prefix: the
/// damaged records are skipped and counted, everything restored serves
/// exactly, and the lost classes are simply searched again.
#[test]
fn server_boots_the_intact_prefix_of_a_torn_snapshot() {
    let dir = tempdir("torn");
    let path = dir.join("cache.snap");
    let config = snapshot_config(&path);
    let load = LoadgenConfig::quick(0xBEEF);

    let first = start_server(&config);
    loadgen::run(first.addr(), 4, &load).expect("warm run");
    Client::connect(first.addr())
        .unwrap()
        .shutdown_server()
        .unwrap();
    first.join().unwrap();

    // Tear the tail mid-record.
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

    let second = start_server(&config);
    let restart = loadgen::run_restart(second.addr(), 4, &load).expect("restart replay");
    // Not expect_warm: the torn class legitimately needs one search.
    restart
        .verify(false)
        .expect("correctness after a torn tail");
    assert!(restart.restored > 0, "{restart:?}");
    assert!(restart.snapshot_skipped >= 1, "{restart:?}");
    Client::connect(second.addr())
        .unwrap()
        .shutdown_server()
        .unwrap();
    second.join().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// A single bitflipped record is skipped (checksum), every other
/// record restores, and the served answers stay exact.
#[test]
fn server_skips_a_bitflipped_record_and_serves_the_rest() {
    let dir = tempdir("bitflip");
    let path = dir.join("cache.snap");
    let config = snapshot_config(&path);
    let load = LoadgenConfig::quick(0xF11A);

    let first = start_server(&config);
    loadgen::run(first.addr(), 4, &load).expect("warm run");
    Client::connect(first.addr())
        .unwrap()
        .shutdown_server()
        .unwrap();
    let stats = first.join().unwrap();
    let snapshotted = stats.cached_classes;
    assert!(snapshotted >= 2, "need at least two records to damage one");

    // Flip one bit inside the first record's rep field.
    let mut bytes = fs::read(&path).unwrap();
    bytes[32 + 3] ^= 0x40;
    fs::write(&path, &bytes).unwrap();

    let second = start_server(&config);
    let restart = loadgen::run_restart(second.addr(), 4, &load).expect("restart replay");
    restart.verify(false).expect("correctness after a bitflip");
    assert_eq!(restart.snapshot_skipped, 1, "{restart:?}");
    assert_eq!(restart.restored, snapshotted - 1, "{restart:?}");
    Client::connect(second.addr())
        .unwrap()
        .shutdown_server()
        .unwrap();
    second.join().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// An unreadable snapshot (corrupted header) is quarantined to
/// `<path>.corrupt` and the server boots cold — and keeps serving.
#[test]
fn unreadable_snapshot_is_quarantined_and_the_boot_is_cold() {
    let dir = tempdir("quarantine");
    let path = dir.join("cache.snap");
    let config = snapshot_config(&path);
    let load = LoadgenConfig::quick(0xC01D);

    let first = start_server(&config);
    loadgen::run(first.addr(), 4, &load).expect("warm run");
    Client::connect(first.addr())
        .unwrap()
        .shutdown_server()
        .unwrap();
    first.join().unwrap();

    // Smash the magic.
    let mut bytes = fs::read(&path).unwrap();
    bytes[0] ^= 0xFF;
    fs::write(&path, &bytes).unwrap();

    let server = Server::bind(suite(), &config).expect("bind");
    let summary = server.restore_summary().clone();
    assert!(summary.quarantined.is_some(), "{summary:?}");
    assert_eq!(summary.restored, 0);
    assert!(!path.exists(), "the unreadable snapshot was moved away");
    assert!(
        snapshot::quarantine_path(&path).exists(),
        "quarantine file present for the operator"
    );
    let handle = server.spawn();
    let restart = loadgen::run_restart(handle.addr(), 4, &load).expect("cold replay");
    restart.verify(false).expect("cold boot still serves");
    assert_eq!(restart.restored, 0, "{restart:?}");
    assert!(restart.searches_delta > 0, "cold boot searches");
    Client::connect(handle.addr())
        .unwrap()
        .shutdown_server()
        .unwrap();
    handle.join().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// A stale `.tmp` left by a writer killed mid-snapshot is ignored at
/// boot and cleaned up by the next successful write.
#[test]
fn stale_tmp_from_a_killed_writer_does_not_confuse_the_boot() {
    let dir = tempdir("staletmp");
    let path = dir.join("cache.snap");
    let config = snapshot_config(&path);
    let load = LoadgenConfig::quick(0xDEAD);

    let first = start_server(&config);
    loadgen::run(first.addr(), 4, &load).expect("warm run");
    Client::connect(first.addr())
        .unwrap()
        .shutdown_server()
        .unwrap();
    first.join().unwrap();

    // Simulate a writer SIGKILLed after staging but before the rename.
    fs::write(snapshot::tmp_path(&path), b"half-written garbage").unwrap();

    let second = start_server(&config);
    let restart = loadgen::run_restart(second.addr(), 4, &load).expect("restart replay");
    restart
        .verify(true)
        .expect("the real snapshot still boots warm");
    Client::connect(second.addr())
        .unwrap()
        .shutdown_server()
        .unwrap();
    second.join().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// Worker supervision at the server level: an injected worker panic
/// fails its batch cleanly (no hung client, no poisoned answer), the
/// supervisor respawns the worker, and both the stats counter and the
/// health probe show it.
#[test]
fn panicking_workers_are_respawned_and_clients_see_clean_errors() {
    // Every 2nd search panics the worker; odd searches succeed.
    let plan = Arc::new(FaultPlan::new(0xBAD).with_panic_every(2));
    let config = ServeConfig {
        faults: Some(plan),
        ..ServeConfig::default()
    };
    let handle = start_server(&config);
    let suite = suite();
    let sym = suite.sym();
    let lib = GateLib::nct(4);
    let gates: Vec<_> = lib.iter().map(|(_, g, _)| g).collect();
    let mut seen = std::collections::BTreeSet::new();
    let mut classes = Vec::new();
    'outer: for a in 0..gates.len() {
        for b in 0..gates.len() {
            let f = Circuit::from_gates([gates[a], gates[b]]).perm(4);
            if seen.insert(sym.canonical(f)) {
                classes.push(f);
                if classes.len() == 6 {
                    break 'outer;
                }
            }
        }
    }
    let mut client = Client::connect(handle.addr()).unwrap();
    let (mut ok, mut panicked) = (0u64, 0u64);
    for &f in &classes {
        match client.query(f) {
            Ok(circuit) => {
                assert_eq!(circuit.perm(4), f, "never a poisoned answer");
                ok += 1;
            }
            Err(e) => {
                assert!(
                    e.to_string().contains("worker panicked"),
                    "only the typed panic error is acceptable: {e}"
                );
                panicked += 1;
            }
        }
    }
    assert!(ok >= 1 && panicked >= 1, "ok {ok}, panicked {panicked}");
    // The waiter is released (DrainGuard drop, mid-unwind) *before*
    // the supervisor bumps the restart counter, so poll briefly.
    let mut stats = client.stats().unwrap();
    for _ in 0..50 {
        if stats.worker_restarts == panicked {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
        stats = client.stats().unwrap();
    }
    assert_eq!(stats.worker_restarts, panicked, "each panic = one respawn");
    let health = client.health().unwrap();
    assert_eq!(health.live_workers, 1, "pool back at strength");
    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

/// The health probe end to end: uptime advances, the restored count
/// matches the boot snapshot, live workers equal the pool size, and
/// snapshot age flips from `None` to a number once the periodic
/// snapshotter fires.
#[test]
fn health_probe_reports_restore_liveness_and_snapshot_age() {
    let dir = tempdir("health");
    let path = dir.join("cache.snap");
    let load = LoadgenConfig::quick(0xAB1E);

    let first = start_server(&snapshot_config(&path));
    // Cold boot, nothing restored, no snapshot written yet.
    let mut probe = Client::connect(first.addr()).unwrap();
    let h0 = probe.health().unwrap();
    assert_eq!(h0.restored, 0);
    assert_eq!(h0.live_workers, 1);
    assert_eq!(h0.snapshot_age(), None);
    loadgen::run(first.addr(), 4, &load).expect("warm run");
    probe.shutdown_server().unwrap();
    first.join().unwrap();

    // Warm boot with a fast periodic snapshotter.
    let config = ServeConfig {
        workers: 2,
        snapshot: Some(path.clone()),
        snapshot_interval: Some(Duration::from_millis(300)),
        ..ServeConfig::default()
    };
    let second = start_server(&config);
    let mut client = Client::connect(second.addr()).unwrap();
    let h1 = client.health().unwrap();
    assert!(h1.restored > 0, "{h1:?}");
    assert_eq!(h1.live_workers, 2);
    // Boot restore is the previous process's snapshot, not this one's.
    assert_eq!(h1.snapshot_age(), None);
    // Wait for the periodic snapshotter to fire at least once.
    let mut aged: Option<HealthReport> = None;
    for _ in 0..40 {
        std::thread::sleep(Duration::from_millis(100));
        let h = client.health().unwrap();
        if h.snapshot_age().is_some() {
            aged = Some(h);
            break;
        }
    }
    let aged = aged.expect("periodic snapshotter never fired");
    assert!(aged.uptime_ms >= h1.uptime_ms);
    let stats = client.stats().unwrap();
    assert!(stats.snapshot_writes >= 1, "{stats:?}");
    client.shutdown_server().unwrap();
    second.join().unwrap();
    let _ = fs::remove_dir_all(&dir);
}
