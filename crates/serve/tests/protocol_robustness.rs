//! Fuzz-ish robustness of the wire protocol against a live server:
//! truncated frames, oversized length prefixes and seeded garbage bytes
//! must produce clean protocol errors — never a panic, never a hang of
//! the accept loop. After every abuse the server must still answer a
//! well-formed query.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use revsynth_analysis::{Rng, SplitMix64};
use revsynth_core::{SuiteConfig, SynthesisSuite, Synthesizer};
use revsynth_perm::Perm;
use revsynth_serve::{Client, ServeConfig, Server, ServerHandle};

fn start_server() -> ServerHandle {
    let suite = Arc::new(SynthesisSuite::new(
        Synthesizer::from_scratch(4, 2),
        SuiteConfig {
            quantum_budget: 6,
            depth_budget: 2,
        },
    ));
    Server::bind(suite, ServeConfig::default())
        .expect("bind loopback")
        .spawn()
}

/// A known-good query the server must keep answering after abuse.
fn server_still_alive(addr: SocketAddr) {
    let f = Perm::from_values(&[1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14]).unwrap();
    let mut client = Client::connect_with_timeout(addr, Duration::from_secs(10))
        .expect("server accepts connections");
    let circuit = client.query(f).expect("server answers valid queries");
    assert_eq!(circuit.perm(4), f);
}

/// Raw socket with bounded timeouts so no test can hang.
fn raw_conn(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
}

/// Reads one response frame's payload (bounded by the socket timeout).
fn read_response(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).ok()?;
    let len = u32::from_le_bytes(len) as usize;
    assert!(len > 0 && len <= 1 << 16, "server frames are well-formed");
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).ok()?;
    Some(payload)
}

const OP_ERROR: u8 = 0x81;

#[test]
fn truncated_frames_are_survived() {
    let handle = start_server();
    let addr = handle.addr();

    // Frame cut mid-payload, then the peer hangs up.
    let mut stream = raw_conn(addr);
    stream.write_all(&100u32.to_le_bytes()).unwrap();
    stream.write_all(&[7u8; 10]).unwrap();
    drop(stream);

    // Frame cut mid-length-prefix.
    let mut stream = raw_conn(addr);
    stream.write_all(&[9u8, 0]).unwrap();
    drop(stream);

    // An empty connection (connect, say nothing, leave).
    drop(raw_conn(addr));

    server_still_alive(addr);
    let mut client = Client::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn oversized_length_prefixes_get_a_clean_error() {
    let handle = start_server();
    let addr = handle.addr();

    for len in [0u32, (1 << 16) + 1, u32::MAX] {
        let mut stream = raw_conn(addr);
        stream.write_all(&len.to_le_bytes()).unwrap();
        // Some follow-on bytes so the violation is length, not EOF.
        stream.write_all(&[0xAA; 16]).unwrap();
        let payload = read_response(&mut stream)
            .unwrap_or_else(|| panic!("length {len}: server must answer before closing"));
        assert_eq!(payload[0], OP_ERROR, "length {len}: error response");
        // The connection is dropped afterwards (cannot resynchronize):
        // the next read must hit EOF, not hang.
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
    }

    server_still_alive(addr);
    let mut client = Client::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn garbage_frames_get_error_responses_and_the_connection_survives() {
    let handle = start_server();
    let addr = handle.addr();
    let mut rng = SplitMix64::new(0xFEED_FACE);

    // Well-framed garbage payloads: the frame boundary is intact, so the
    // server must answer each with an error and keep the connection.
    let mut stream = raw_conn(addr);
    for round in 0..64 {
        let len = 1 + (rng.next_u64() as usize) % 40;
        let mut payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Never accidentally a valid request: force a reserved opcode
        // half the time, a corrupt body otherwise.
        if round % 2 == 0 {
            payload[0] = 0x40 | (rng.next_u64() as u8 & 0x3F).max(4);
        } else {
            payload[0] = 0x01; // query opcode, (almost surely) bad body
            if payload.len() == 17 {
                payload[1] = 0xFF; // 255 is not a 4-bit domain value
            }
        }
        let declared = u32::try_from(payload.len()).unwrap();
        stream.write_all(&declared.to_le_bytes()).unwrap();
        stream.write_all(&payload).unwrap();
        let response = read_response(&mut stream)
            .unwrap_or_else(|| panic!("round {round}: garbage must be answered"));
        assert_eq!(response[0], OP_ERROR, "round {round}");
    }
    drop(stream);

    // Unframed garbage streams: arbitrary byte salad. The server may
    // answer with one error and drop, or just drop — but never hang.
    for trial in 0..16 {
        let mut stream = raw_conn(addr);
        let len = 5 + (rng.next_u64() as usize) % 200;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = stream.write_all(&bytes);
        let mut sink = Vec::new();
        // Bounded by the read timeout; success or EOF both fine.
        let _ = stream.read_to_end(&mut sink);
        drop(stream);
        if trial % 8 == 7 {
            server_still_alive(addr);
        }
    }

    server_still_alive(addr);
    let mut client = Client::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn slow_trickled_frames_still_parse() {
    // A frame delivered one byte at a time, slower than the server's
    // poll interval, must still be reassembled (FrameReader buffering)
    // rather than torn by read timeouts.
    let handle = start_server();
    let addr = handle.addr();
    let f = Perm::from_values(&[1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14]).unwrap();

    let mut stream = raw_conn(addr);
    let mut frame = Vec::new();
    frame.extend_from_slice(&17u32.to_le_bytes());
    frame.push(0x01);
    frame.extend_from_slice(&f.values());
    for chunk in frame.chunks(3) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(60));
    }
    let payload = read_response(&mut stream).expect("trickled query answered");
    assert_ne!(payload[0], OP_ERROR, "query must succeed");
    drop(stream);

    let mut client = Client::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    handle.join().unwrap();
}
