//! Chaos suite for overload control: a server with a bounded queue and
//! a seeded fault plan is driven into saturation and torn-connection
//! abuse, and must degrade *gracefully* — cache hits keep being served,
//! misses are shed with typed `Overloaded` frames, deadlines expire
//! queued work before it is searched, counters reconcile exactly with
//! the injected plan, and nothing ever panics or wedges the accept
//! loop.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use revsynth_circuit::{Circuit, GateLib};
use revsynth_core::{SuiteConfig, SynthesisSuite, Synthesizer};
use revsynth_perm::Perm;
use revsynth_serve::fault::{DropAfter, TrickleStream};
use revsynth_serve::{
    Client, ClientError, FaultPlan, QueryOptions, RetryPolicy, ServeConfig, Server, ServerHandle,
};

fn suite() -> Arc<SynthesisSuite> {
    Arc::new(SynthesisSuite::new(
        Synthesizer::from_scratch(4, 2),
        SuiteConfig {
            quantum_budget: 6,
            depth_budget: 2,
        },
    ))
}

fn start_server(config: &ServeConfig) -> ServerHandle {
    Server::bind(suite(), config)
        .expect("bind loopback")
        .spawn()
}

/// Distinct-class cold functions, deterministic: single library gates
/// canonicalize to few classes, so use short compositions deduped by
/// canonical representative.
fn cold_classes(n: usize) -> Vec<Perm> {
    let suite = suite();
    let sym = suite.sym();
    let lib = GateLib::nct(n);
    let gates: Vec<_> = lib.iter().map(|(_, g, _)| g).collect();
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    'outer: for a in 0..gates.len() {
        for b in 0..gates.len() {
            let f = Circuit::from_gates([gates[a], gates[b]]).perm(n);
            if seen.insert(sym.canonical(f)) {
                out.push(f);
                if out.len() == 12 {
                    break 'outer;
                }
            }
        }
    }
    assert!(out.len() >= 8, "need enough distinct classes");
    out
}

fn server_still_alive(addr: SocketAddr) {
    let f = Perm::from_values(&[1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14]).unwrap();
    let mut client =
        Client::connect_with_timeout(addr, Duration::from_secs(10)).expect("server accepts");
    let circuit = client.query(f).expect("server answers valid queries");
    assert_eq!(circuit.perm(4), f);
}

const OP_CIRCUIT: u8 = 0x80;
const OP_OVERLOADED: u8 = 0x84;

/// Reads one response frame's payload (bounded by the socket timeout).
fn read_response(stream: &mut impl Read) -> Option<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).ok()?;
    let len = u32::from_le_bytes(len) as usize;
    assert!(len > 0 && len <= 1 << 16, "server frames are well-formed");
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).ok()?;
    Some(payload)
}

#[test]
fn saturation_sheds_misses_but_serves_hits_and_reconciles_with_the_plan() {
    // Single worker, queue bound 1, every search slowed 300 ms: a burst
    // of distinct cold classes must overrun admission.
    let plan = Arc::new(FaultPlan::new(0xCAFE).with_search_delay(Duration::from_millis(300)));
    let config = ServeConfig {
        max_queue: 1,
        retry_after_ms: 25,
        faults: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    };
    let handle = start_server(&config);
    let addr = handle.addr();
    let classes = cold_classes(4);
    let (warm, burst) = (classes[0], &classes[1..9]);

    // Warm one class into the cache (pays one delayed search).
    let mut warm_client = Client::connect(addr).unwrap();
    let warm_circuit = warm_client.query(warm).unwrap();
    assert_eq!(warm_circuit.perm(4), warm);

    // Burst the cold classes from parallel clients while hammering the
    // warm class: every warm query must be a served cache hit.
    let barrier = std::sync::Barrier::new(burst.len() + 1);
    let (shed_seen, served_cold) = std::thread::scope(|scope| {
        let handles: Vec<_> = burst
            .iter()
            .map(|&f| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    match client.query(f) {
                        Ok(circuit) => {
                            assert_eq!(circuit.perm(4), f, "served answers are verified");
                            (0u64, 1u64)
                        }
                        Err(ClientError::Overloaded { retry_after_ms }) => {
                            assert_eq!(retry_after_ms, 25, "hint is the configured one");
                            (1, 0)
                        }
                        Err(e) => panic!("unexpected burst outcome: {e}"),
                    }
                })
            })
            .collect();
        barrier.wait();
        for _ in 0..30 {
            let c = warm_client
                .query(warm)
                .expect("cache hits served under saturation");
            assert_eq!(c.perm(4), warm);
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, 0), |(s, c), (ds, dc)| (s + ds, c + dc))
    });
    assert!(shed_seen > 0, "the burst must saturate the queue");
    assert_eq!(shed_seen + served_cold, burst.len() as u64);

    let stats = Client::connect(addr).unwrap().stats().unwrap();
    // Exact reconciliation against the server counters and the plan:
    // every shed was observed by a client, every search was delayed by
    // the plan, and nothing ran for a waiter that was gone.
    assert_eq!(stats.shed, shed_seen);
    assert_eq!(stats.searches, 1 + served_cold, "warm + served cold only");
    assert_eq!(
        plan.injected().delays,
        stats.searches,
        "plan transcript matches"
    );
    assert_eq!(plan.injected().failures, 0);
    assert_eq!(
        stats.cache_misses,
        stats.searches + stats.coalesced + stats.shed + stats.expired,
        "load conservation: every miss accounted for"
    );

    // Backoff rides out the drain: a shed-prone query retried with the
    // policy must eventually land.
    let mut retry_client = Client::connect(addr).unwrap();
    let policy = RetryPolicy {
        attempts: 10,
        base: Duration::from_millis(50),
        cap: Duration::from_secs(2),
        seed: 7,
    };
    let recovered = retry_client
        .query_opts(classes[9], &QueryOptions::new().retry(policy))
        .expect("retry must recover after the burst");
    assert_eq!(recovered.perm(4), classes[9]);

    let mut client = Client::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    let final_stats = handle.join().unwrap();
    assert_eq!(
        final_stats.errors, 0,
        "no handler panicked, no silent drops"
    );
}

#[test]
fn connection_cap_sheds_accepts_with_an_overloaded_frame() {
    let config = ServeConfig {
        max_conns: 1,
        retry_after_ms: 77,
        ..ServeConfig::default()
    };
    let handle = start_server(&config);
    let addr = handle.addr();

    // First connection occupies the only slot.
    let mut first = Client::connect(addr).unwrap();
    let f = Perm::from_values(&[1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14]).unwrap();
    assert_eq!(first.query(f).unwrap().perm(4), f);

    // The next accept is shed: one Overloaded frame, then EOF.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let payload = read_response(&mut raw).expect("shed connections get a frame");
    assert_eq!(payload[0], OP_OVERLOADED);
    assert_eq!(payload[1..], 77u32.to_le_bytes(), "hint rides the frame");
    let mut rest = Vec::new();
    let _ = raw.read_to_end(&mut rest);
    assert!(rest.is_empty(), "the shed connection is closed");

    // A typed client maps the shed to ClientError::Overloaded.
    let mut shed_client = Client::connect(addr).unwrap();
    match shed_client.query(f) {
        Err(ClientError::Overloaded { retry_after_ms }) => assert_eq!(retry_after_ms, 77),
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // Freeing the slot restores service (the reap joins the finished
    // handler before the cap check). The reap runs per accept, so poll
    // until a connection is admitted again.
    drop(first);
    let mut recovered = false;
    for _ in 0..100 {
        let mut client = Client::connect(addr).unwrap();
        match client.query(f) {
            Ok(circuit) => {
                assert_eq!(circuit.perm(4), f);
                client.shutdown_server().unwrap();
                recovered = true;
                break;
            }
            Err(ClientError::Overloaded { .. }) => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("unexpected error while slot frees: {e}"),
        }
    }
    assert!(recovered, "closing a connection must free its slot");
    let stats = handle.join().unwrap();
    assert!(stats.shed_conns >= 2, "{stats:?}");
    assert_eq!(stats.errors, 0);
}

#[test]
fn torn_and_trickled_connections_never_wedge_the_server() {
    let handle = start_server(&ServeConfig::default());
    let addr = handle.addr();
    let f = Perm::from_values(&[1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14]).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(&17u32.to_le_bytes());
    frame.push(0x01);
    frame.extend_from_slice(&f.values());

    // A glacial writer (2 bytes per 60 ms, slower than the server's
    // poll interval) still gets an answer: the FrameReader reassembles
    // across read timeouts.
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut trickle = TrickleStream::new(stream, 2, Duration::from_millis(60));
    trickle.write_all(&frame).unwrap();
    let payload = read_response(&mut trickle).expect("trickled query answered");
    assert_eq!(payload[0], OP_CIRCUIT);
    drop(trickle);

    // Connections dropped mid-frame at every possible cut point: the
    // handler sees a truncated frame and hangs up; the accept loop must
    // keep serving.
    for budget in 1..frame.len() {
        let stream = TcpStream::connect(addr).unwrap();
        let mut dropper = DropAfter::new(stream, budget);
        let err = dropper.write_all(&frame).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert!(dropper.dropped());
        drop(dropper);
    }
    server_still_alive(addr);

    let mut client = Client::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    let stats = handle.join().unwrap();
    assert_eq!(stats.errors, 0, "client abuse is not a server error");
}

#[test]
fn client_read_timeout_surfaces_as_deadline_exceeded() {
    // Searches take 600 ms; a client with a 150 ms budget must get the
    // typed DeadlineExceeded (with evidence), not a bare I/O error.
    let plan = Arc::new(FaultPlan::new(3).with_search_delay(Duration::from_millis(600)));
    let config = ServeConfig {
        faults: Some(plan),
        ..ServeConfig::default()
    };
    let handle = start_server(&config);
    let addr = handle.addr();
    let cold = cold_classes(4)[0];

    let budget = Duration::from_millis(150);
    let mut impatient = Client::connect_with_timeout(addr, budget).unwrap();
    match impatient.query(cold) {
        Err(ClientError::DeadlineExceeded { elapsed, budget: b }) => {
            assert_eq!(b, budget);
            assert!(
                elapsed >= Duration::from_millis(100),
                "gave the budget a chance: {elapsed:?}"
            );
            let msg = ClientError::DeadlineExceeded { elapsed, budget: b }.to_string();
            assert!(msg.contains("budget"), "{msg}");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    drop(impatient); // desynchronized — must be discarded

    // The search itself completed and was cached; a patient client is
    // served instantly.
    std::thread::sleep(Duration::from_millis(700));
    let mut patient = Client::connect(addr).unwrap();
    assert_eq!(patient.query(cold).unwrap().perm(4), cold);

    patient.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn legacy_and_deadline_wire_forms_are_served_alike() {
    // Satellite compatibility check against a live server: the 16-byte
    // legacy body, the 17-byte cost-model body and the 21-byte deadline
    // body must all produce the same circuit for the same function.
    let handle = start_server(&ServeConfig::default());
    let addr = handle.addr();
    let f = Perm::from_values(&[1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14]).unwrap();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut answers = Vec::new();
    for body_tail in [
        Vec::new(),                                             // legacy: values only
        vec![0u8],                                              // + cost model (gates)
        [vec![0u8], 60_000u32.to_le_bytes().to_vec()].concat(), // + deadline
    ] {
        let mut payload = vec![0x01];
        payload.extend_from_slice(&f.values());
        payload.extend_from_slice(&body_tail);
        stream
            .write_all(&u32::try_from(payload.len()).unwrap().to_le_bytes())
            .unwrap();
        stream.write_all(&payload).unwrap();
        let response = read_response(&mut stream).expect("all three forms answered");
        assert_eq!(response[0], OP_CIRCUIT, "tail {body_tail:?}");
        answers.push(response);
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
    drop(stream);

    let mut client = Client::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    handle.join().unwrap();
}
