//! End-to-end observability: a live server is driven through hits,
//! misses and coalescing, then its metrics scrape must contain every
//! `ServeStats` field (under the shared name table), all eight
//! per-stage latency histogram families, engine profiling counters that
//! moved, and a conservation law the counters must satisfy; the
//! slow-query endpoint must return structured traces.

use std::sync::Arc;

use revsynth_circuit::{Circuit, CostKind, GateLib};
use revsynth_core::{SuiteConfig, SynthesisSuite, Synthesizer};
use revsynth_obs::Stage;
use revsynth_perm::Perm;
use revsynth_serve::{Client, QueryOptions, ServeConfig, ServeStats, Server, ServerHandle};

fn suite() -> Arc<SynthesisSuite> {
    Arc::new(SynthesisSuite::new(
        Synthesizer::from_scratch(4, 2),
        SuiteConfig {
            quantum_budget: 6,
            depth_budget: 2,
        },
    ))
}

fn start_server(config: &ServeConfig) -> ServerHandle {
    Server::bind(suite(), config)
        .expect("bind loopback")
        .spawn()
}

/// A handful of distinct-class functions (deterministic order).
fn cold_classes(n: usize) -> Vec<Perm> {
    let suite = suite();
    let sym = suite.sym();
    let lib = GateLib::nct(n);
    let gates: Vec<_> = lib.iter().map(|(_, g, _)| g).collect();
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    'outer: for a in 0..gates.len() {
        for b in 0..gates.len() {
            let f = Circuit::from_gates([gates[a], gates[b]]).perm(n);
            if seen.insert(sym.canonical(f)) {
                out.push(f);
                if out.len() == 6 {
                    break 'outer;
                }
            }
        }
    }
    out
}

/// The value of a plain `name value` series in an exposition.
fn series_value(metrics: &str, name: &str) -> Option<u64> {
    metrics.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.strip_prefix(' ')?.parse().ok()
    })
}

#[test]
fn metrics_scrape_covers_stats_stages_engine_and_conservation() {
    let handle = start_server(&ServeConfig {
        slow_query_us: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Drive misses (cold classes) and hits (repeat queries).
    let queries = cold_classes(4);
    assert!(queries.len() >= 4);
    for f in &queries {
        client.query(*f).expect("cold query");
    }
    for f in &queries {
        client.query(*f).expect("warm query");
    }
    // One query under a second cost model exercises a second queue.
    client
        .query_opts(
            queries[0],
            &QueryOptions::new().cost_model(CostKind::Quantum),
        )
        .expect("quantum query");
    // A 4-gate class: with k = 2 tables this takes a real
    // meet-in-the-middle cost scan, so the engine counters must move
    // (2-gate classes are direct table lookups).
    let deep = "TOF(a,b,d) CNOT(a,b) TOF(b,c,d) CNOT(b,c)"
        .parse::<Circuit>()
        .expect("parse deep circuit")
        .perm(4);
    client.query(deep).expect("deep query");

    let metrics = client.metrics().expect("metrics scrape");
    let stats = client.stats().expect("stats frame");

    // Every ServeStats field appears under the shared name table, and
    // the scraped value matches the binary stats frame (quiescent
    // between the two round trips, except the request counter itself
    // and the latency quantiles it may shift).
    let words = stats.to_words();
    for (i, name) in ServeStats::FIELD_NAMES.iter().enumerate() {
        let scraped = series_value(&metrics, &format!("revsynth_{name}"))
            .unwrap_or_else(|| panic!("series revsynth_{name} missing from:\n{metrics}"));
        assert!(
            metrics.contains(&format!("# TYPE revsynth_{name} ")),
            "missing TYPE for {name}"
        );
        if !matches!(*name, "requests" | "p50_latency_us" | "p99_latency_us") {
            assert_eq!(scraped, words[i], "field {name} drifted");
        }
    }

    // The conservation law the CI gate asserts from the scraped text.
    let misses = series_value(&metrics, "revsynth_cache_misses").unwrap();
    let searches = series_value(&metrics, "revsynth_searches").unwrap();
    let coalesced = series_value(&metrics, "revsynth_coalesced").unwrap();
    let shed = series_value(&metrics, "revsynth_shed").unwrap();
    let expired = series_value(&metrics, "revsynth_expired").unwrap();
    assert_eq!(
        misses,
        searches + coalesced + shed + expired,
        "conservation law violated in:\n{metrics}"
    );

    // All eight stage families are present, and the stages a normal
    // query always runs have samples.
    for stage in Stage::ALL {
        let series = format!(
            "revsynth_stage_latency_us_count{{stage=\"{}\"}}",
            stage.name()
        );
        let count = series_value(&metrics, &series)
            .unwrap_or_else(|| panic!("missing {series} in:\n{metrics}"));
        if matches!(stage, Stage::CacheProbe) {
            assert!(count > 0, "every query probes the cache");
        }
    }

    // Engine profiling flowed into the registry: real searches happened.
    assert!(series_value(&metrics, "revsynth_search_considered").unwrap() > 0);
    assert!(series_value(&metrics, "revsynth_search_probed").unwrap() > 0);
    assert!(
        series_value(&metrics, "revsynth_batch_search_us_count").unwrap() >= 1,
        "at least one batched engine call"
    );
    assert!(series_value(&metrics, "revsynth_live_workers").unwrap() >= 1);
    // Shard occupancy gauges sum to the resident class count.
    let shard_total: u64 = metrics
        .lines()
        .filter(|l| l.starts_with("revsynth_cache_shard_entries{"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum();
    assert_eq!(shard_total, stats.cached_classes);

    // With a 1 µs threshold every request is "slow": the ring holds
    // structured traces with span ids, stages and models.
    let slow = client.slow_queries().expect("slow queries");
    assert!(slow.starts_with('[') && slow.ends_with(']'), "{slow}");
    assert!(slow.contains("\"span_id\""), "{slow}");
    assert!(
        slow.contains("\"cache_hit\": true"),
        "warm queries captured"
    );
    assert!(slow.contains("\"queue_wait_us\""), "{slow}");
    assert!(slow.contains("\"model\": \"quantum\""), "{slow}");

    // The rolling ring captures every traced request, slow or not, and
    // its endpoint returns the same JSON shape.
    let traces = client.traces().expect("traces");
    assert!(traces.starts_with('[') && traces.ends_with(']'), "{traces}");
    let recorded = traces.matches("\"span_id\"").count() as u64;
    let stats_after = client.stats().expect("stats frame");
    assert!(
        recorded >= stats_after.requests.min(8),
        "rolling ring holds {recorded} traces after {} requests",
        stats_after.requests
    );

    client.shutdown_server().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn disabling_instrumentation_keeps_metrics_endpoint_but_empties_traces() {
    let handle = start_server(&ServeConfig {
        instrumentation: false,
        slow_query_us: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(handle.addr()).expect("connect");
    let queries = cold_classes(4);
    for f in &queries {
        client.query(*f).expect("query");
    }
    let metrics = client.metrics().expect("metrics scrape");
    // The ServeStats view is maintained regardless...
    assert_eq!(
        series_value(&metrics, "revsynth_requests"),
        Some(queries.len() as u64)
    );
    // ...but no per-request spans or engine samples are recorded.
    for stage in Stage::ALL {
        let series = format!(
            "revsynth_stage_latency_us_count{{stage=\"{}\"}}",
            stage.name()
        );
        assert_eq!(series_value(&metrics, &series), Some(0), "{series}");
    }
    // Engine profiling series are not registered at all when
    // instrumentation is off — the scrape omits them entirely.
    assert_eq!(
        series_value(&metrics, "revsynth_search_considered"),
        None,
        "engine metrics must be absent when instrumentation is off"
    );
    assert_eq!(client.slow_queries().expect("slow queries"), "[]");
    assert_eq!(client.traces().expect("traces"), "[]");
    client.shutdown_server().expect("shutdown");
    handle.join().expect("join");
}
