//! Multi-core serving suite: the thread-per-core event loops must hold
//! every contract the single-threaded accept loop held — resumable
//! frame I/O against trickling and torn peers (on both readiness
//! backends), the shutdown drain order (no final snapshot while any
//! core still holds an in-flight ticket), the per-core metrics merge,
//! and the stats conservation law under concurrent multi-core load.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use revsynth_circuit::{Circuit, GateLib};
use revsynth_core::{SuiteConfig, SynthesisSuite, Synthesizer};
use revsynth_perm::Perm;
use revsynth_serve::fault::{DropAfter, TrickleStream};
use revsynth_serve::loadgen::{self, LoadgenConfig};
use revsynth_serve::snapshot::{self, RestoreOutcome};
use revsynth_serve::{Client, FaultPlan, ServeConfig, Server, ServerHandle};

/// Deep enough (`k = 3`) that the loadgen pool's up-to-5-gate circuits
/// all synthesize within reach, so zero errors is a meaningful gate.
fn suite() -> Arc<SynthesisSuite> {
    Arc::new(SynthesisSuite::new(
        Synthesizer::from_scratch(4, 3),
        SuiteConfig {
            quantum_budget: 7,
            depth_budget: 2,
        },
    ))
}

fn start_server(config: &ServeConfig) -> ServerHandle {
    Server::bind(suite(), config)
        .expect("bind loopback")
        .spawn()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("revsynth-multicore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A 17-byte query frame (len prefix + opcode + values) for `f`.
fn query_frame(f: Perm) -> Vec<u8> {
    let mut frame = Vec::new();
    frame.extend_from_slice(&17u32.to_le_bytes());
    frame.push(0x01);
    frame.extend_from_slice(&f.values());
    frame
}

const OP_CIRCUIT: u8 = 0x80;

fn read_response(stream: &mut impl std::io::Read) -> Option<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).ok()?;
    let len = u32::from_le_bytes(len) as usize;
    assert!(len > 0 && len <= 1 << 16, "server frames are well-formed");
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).ok()?;
    Some(payload)
}

/// The satellite-4 contract on both readiness backends and both core
/// counts: a glacial writer (2 bytes per 60 ms, far slower than any
/// poll tick) must still reassemble into a served frame, and a peer
/// torn at **every** mid-frame cut point must never wedge an event
/// loop — the very next connection is served normally.
#[test]
fn trickled_and_torn_frames_on_every_readiness_backend() {
    let f = Perm::from_values(&[1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14]).unwrap();
    let frame = query_frame(f);
    for (tag, config) in [
        ("epoll-1", ServeConfig::new()),
        ("scan-1", ServeConfig::new().portable_poll(true)),
        ("epoll-2", ServeConfig::new().cores(2)),
        ("scan-2", ServeConfig::new().cores(2).portable_poll(true)),
    ] {
        let handle = start_server(&config);
        let addr = handle.addr();

        // Glacial writer: the FrameReader must hold the partial frame
        // across readiness ticks and answer once it completes.
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut trickle = TrickleStream::new(stream, 2, Duration::from_millis(60));
        trickle.write_all(&frame).unwrap();
        let payload = read_response(&mut trickle).unwrap_or_else(|| {
            panic!("[{tag}] trickled query answered");
        });
        assert_eq!(payload[0], OP_CIRCUIT, "[{tag}]");
        drop(trickle);

        // Every possible mid-frame cut point: the loop must reap the
        // torn connection and keep serving.
        for budget in 1..frame.len() {
            let stream = TcpStream::connect(addr).unwrap();
            let mut dropper = DropAfter::new(stream, budget);
            let err = dropper.write_all(&frame).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe, "[{tag}]");
            assert!(dropper.dropped(), "[{tag}]");
        }

        let mut client = Client::connect_with_timeout(addr, Duration::from_secs(10)).unwrap();
        let circuit = client.query(f).unwrap_or_else(|e| {
            panic!("[{tag}] server wedged after torn peers: {e}");
        });
        assert_eq!(circuit.perm(4), f, "[{tag}]");
        client.shutdown_server().unwrap();
        let stats = handle.join().unwrap();
        assert_eq!(
            stats.errors, 0,
            "[{tag}] client abuse is not a server error"
        );
    }
}

/// The satellite-3 drain-order contract: a shutdown racing an
/// in-flight slow search on a *sibling core's* connection must not cut
/// the final snapshot until that ticket resolves. The in-flight client
/// still gets its circuit, and the snapshot on disk contains the class
/// that was mid-search when shutdown was requested — a server that
/// snapshots per-core (while a sibling still holds tickets) fails the
/// restore assertion below.
#[test]
fn shutdown_drains_every_cores_tickets_before_the_final_snapshot() {
    let dir = tempdir("drain");
    let path = dir.join("classes.snap");
    // Every search takes 400 ms: plenty of window to land a shutdown
    // frame on one core while the other core's query is in flight.
    let plan = Arc::new(FaultPlan::new(0xD8A1).with_search_delay(Duration::from_millis(400)));
    let config = ServeConfig::new()
        .cores(2)
        .faults(Some(plan))
        .snapshot(Some(path.clone()));
    let handle = start_server(&config);
    let addr = handle.addr();

    let lib = GateLib::nct(4);
    let gates: Vec<_> = lib.iter().map(|(_, g, _)| g).collect();
    let f = Circuit::from_gates([gates[0], gates[1]]).perm(4);
    let inflight = std::thread::spawn(move || {
        let mut client = Client::connect_with_timeout(addr, Duration::from_secs(30)).unwrap();
        client.query(f)
    });
    // Let the slow search start, then shut down from another
    // connection (with SO_REUSEPORT accepts the kernel spreads the two
    // connections across cores; either way the ticket is in flight
    // when the flag flips).
    std::thread::sleep(Duration::from_millis(150));
    let mut killer = Client::connect(addr).unwrap();
    killer.shutdown_server().unwrap();

    let answer = inflight
        .join()
        .unwrap()
        .expect("in-flight query served across shutdown");
    assert_eq!(answer.perm(4), f, "the draining core answered exactly");
    let stats = handle.join().unwrap();
    assert_eq!(stats.searches, 1);
    assert_eq!(stats.errors, 0);

    // The final snapshot must hold the class searched during shutdown.
    let rep = suite().sym().canonical(f);
    match snapshot::restore(&path, 4) {
        RestoreOutcome::Restored { records, skipped } => {
            assert_eq!(skipped, 0);
            assert!(
                records.iter().any(|r| r.rep == rep),
                "final snapshot is missing the class that was in flight at shutdown"
            );
        }
        other => panic!("expected a restorable snapshot, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent load over two cores: the conservation law holds on the
/// merged stats, the per-core registries merge into one scrape with
/// every core's series present and family headers deduplicated, and
/// per-core request counters sum to the aggregate.
#[test]
fn multicore_load_conserves_stats_and_merges_per_core_metrics() {
    let handle = start_server(&ServeConfig::new().cores(2));
    let addr = handle.addr();
    let report = loadgen::run(addr, 4, &LoadgenConfig::quick(42)).expect("loadgen runs");
    assert_eq!(report.errors, 0, "all queries verified: {report:?}");

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.cache_misses,
        stats.searches + stats.coalesced + stats.shed + stats.expired,
        "load conservation across cores"
    );

    let metrics = client.metrics().unwrap();
    for core in 0..2 {
        assert!(
            metrics.contains(&format!("revsynth_core_requests{{core=\"{core}\"}}")),
            "core {core} series missing from the merged scrape:\n{metrics}"
        );
        assert!(
            metrics.contains(&format!("revsynth_core_accepted{{core=\"{core}\"}}")),
            "core {core} accept series missing:\n{metrics}"
        );
    }
    assert_eq!(
        metrics
            .matches("# TYPE revsynth_core_requests counter")
            .count(),
        1,
        "family header must appear exactly once in the merged scrape"
    );
    let per_core: u64 = metrics
        .lines()
        .filter(|l| l.starts_with("revsynth_core_requests{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(
        per_core, stats.requests,
        "per-core request counters must sum to the aggregate"
    );

    client.shutdown_server().unwrap();
    let final_stats = handle.join().unwrap();
    assert_eq!(final_stats.errors, 0);
    // Steals move work between lanes without creating or destroying
    // it, so the law stays exact whether or not any happened.
    assert_eq!(
        final_stats.cache_misses,
        final_stats.searches + final_stats.coalesced + final_stats.shed + final_stats.expired,
        "conservation still exact at shutdown"
    );
}
