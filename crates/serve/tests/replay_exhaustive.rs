//! Exhaustive replay correctness: every one of the 40,320 3-wire
//! reversible functions, answered through the class-keyed cache.
//!
//! This is the acceptance gate for the serving layer's central claim —
//! that a cached representative circuit **replayed through the query's
//! canonicalization witness** is just as good as a direct search: the
//! replayed circuit must simulate to exactly the target permutation and
//! have exactly the optimal gate count (the reference breadth-first
//! oracle's size, the same scaffolding as
//! `crates/core/tests/engine_equivalence.rs`). It also quantifies the
//! amortization: the whole space is served with one search per class.

use std::collections::HashMap;

use revsynth_bfs::reference;
use revsynth_canon::replay_for_witness;
use revsynth_circuit::{CostKind, GateLib};
use revsynth_core::Synthesizer;
use revsynth_perm::Perm;
use revsynth_serve::ClassCache;

#[test]
fn exhaustive_n3_cache_replay_is_bit_exact_and_optimal() {
    let lib = GateLib::nct(3);
    let oracle = reference::full_space_sizes(&lib);
    assert_eq!(oracle.len(), 40_320);
    let max = *oracle.values().max().unwrap();
    let synth = Synthesizer::from_scratch(3, max.div_ceil(2));
    let sym = synth.tables().sym();

    // Serve the whole space through a cache large enough to never
    // evict: every class is searched exactly once, every other member
    // is answered by witness replay.
    let cache = ClassCache::new(8192);
    let mut searches = 0u64;
    let mut size_by_rep: HashMap<Perm, usize> = HashMap::new();

    for (&f, &size) in &oracle {
        let w = sym.canonicalize(f);
        let rep_circuit = match cache.get(CostKind::Gates, w.rep) {
            Some(circuit) => circuit,
            None => {
                let circuit = synth
                    .synthesize(w.rep)
                    .unwrap_or_else(|e| panic!("rep {} of f {f}: {e}", w.rep));
                searches += 1;
                cache.insert(CostKind::Gates, w.rep, circuit.clone());
                circuit
            }
        };
        let replayed = replay_for_witness(&rep_circuit, &w);

        // Bit-exact: the replayed circuit simulates to exactly the
        // target permutation on every input.
        assert_eq!(replayed.perm(3), f, "f = {f}");
        for x in 0..8u8 {
            assert_eq!(replayed.simulate(x), f.apply(x), "f = {f}, x = {x}");
        }
        // Optimal: same gate count as a direct search would produce
        // (the oracle size is the unique optimal size).
        assert_eq!(
            replayed.len(),
            size,
            "f = {f}: replay changed the gate count"
        );
        // Replay is cost-preserving, so every member of a class must
        // report the same size — record and cross-check per rep.
        let prev = size_by_rep.insert(w.rep, size);
        if let Some(prev) = prev {
            assert_eq!(prev, size, "class of {} has inconsistent sizes", w.rep);
        }
    }

    // One search per class, and vastly fewer classes than functions:
    // the amortization the service layer exists for.
    assert_eq!(searches, size_by_rep.len() as u64);
    assert_eq!(cache.counters().insertions, searches);
    assert_eq!(cache.counters().evictions, 0, "capacity covers all classes");
    assert!(
        searches < oracle.len() as u64 / 10,
        "only {searches} searches for {} functions",
        oracle.len()
    );
    // Every lookup after the first per class was a hit.
    let c = cache.counters();
    assert_eq!(c.hits + c.misses, oracle.len() as u64);
    assert_eq!(c.misses, searches);
}

#[test]
fn exhaustive_n3_direct_synthesis_agrees_with_replay_on_a_sample() {
    // Dense sample: the replayed circuit and a direct search must agree
    // on size for the same function (they may differ gate-by-gate; both
    // must compute f at the optimal count).
    let lib = GateLib::nct(3);
    let oracle = reference::full_space_sizes(&lib);
    let max = *oracle.values().max().unwrap();
    let synth = Synthesizer::from_scratch(3, max.div_ceil(2));
    let sym = synth.tables().sym();
    let cache = ClassCache::new(8192);

    for (j, (&f, &size)) in oracle.iter().enumerate() {
        if j % 97 != 0 {
            continue;
        }
        let w = sym.canonicalize(f);
        let rep_circuit = cache.get(CostKind::Gates, w.rep).unwrap_or_else(|| {
            let c = synth.synthesize(w.rep).expect("rep synthesizes");
            cache.insert(CostKind::Gates, w.rep, c.clone());
            c
        });
        let replayed = replay_for_witness(&rep_circuit, &w);
        let direct = synth.synthesize(f).expect("f synthesizes");
        assert_eq!(direct.len(), size, "f = {f}");
        assert_eq!(replayed.len(), direct.len(), "f = {f}");
        assert_eq!(replayed.perm(3), direct.perm(3), "f = {f}");
    }
}
