//! Witness replay: turning one stored circuit per equivalence class into
//! a circuit for **any** class member.
//!
//! The point of the ×48 class reduction is that one search per class
//! answers every member (paper §3.2): a minimal circuit for a member is
//! obtained from a minimal circuit of the canonical representative by
//! relabeling wires and/or reversing the gate string. This module is that
//! final step, packaged for result caches: given a circuit for the
//! representative and the [`Canonicalized`] witness produced while
//! canonicalizing the query, [`replay_for_witness`] reconstructs the
//! query's circuit without touching the search tables at all.
//!
//! Replay is **exact and cost-preserving**: wire relabeling maps gates
//! bijectively within the NCT library, and inversion merely reverses the
//! gate string (every NCT gate is self-inverse), so the replayed circuit
//! has exactly the representative circuit's gate count — if the cached
//! circuit is optimal for the representative, the replayed circuit is
//! optimal for the query.

use revsynth_circuit::Circuit;

use crate::symmetries::Canonicalized;

/// Reconstructs a circuit for the original query `f` from a circuit for
/// its canonical representative and the witness returned by
/// [`Symmetries::canonicalize`](crate::Symmetries::canonicalize).
///
/// `rep_circuit` must compute `witness.rep`. The witness contract is
/// `rep == (if inverted { f⁻¹ } else { f }).conjugate_by_wires(sigma)`,
/// so undoing it takes two steps:
///
/// 1. conjugate the circuit by `σ⁻¹`, which yields a circuit for
///    `f` (or `f⁻¹` when the witness used inversion), then
/// 2. reverse the gate string when `inverted` — NCT gates are
///    involutions, so the reversed string computes the inverse function.
///
/// The result computes exactly `f` and has exactly `rep_circuit.len()`
/// gates.
///
/// # Example
///
/// ```
/// use revsynth_canon::{replay_for_witness, Symmetries};
/// use revsynth_circuit::Circuit;
///
/// let sym = Symmetries::new(4);
/// let circuit: Circuit = "TOF(a,b,d) CNOT(a,b) TOF(b,c,d) CNOT(b,c)".parse()?;
/// let f = circuit.perm(4);
/// let w = sym.canonicalize(f);
/// // Map the circuit into the representative's frame (what a class-keyed
/// // cache stores), then replay it back through the witness.
/// let rep_circuit = if w.inverted { circuit.inverse() } else { circuit.clone() };
/// let rep_circuit = rep_circuit.conjugate_by_wires(w.sigma);
/// assert_eq!(rep_circuit.perm(4), w.rep);
/// let replayed = replay_for_witness(&rep_circuit, &w);
/// assert_eq!(replayed.perm(4), f);
/// assert_eq!(replayed.len(), circuit.len());
/// # Ok::<(), revsynth_circuit::ParseCircuitError>(())
/// ```
#[must_use]
pub fn replay_for_witness(rep_circuit: &Circuit, witness: &Canonicalized) -> Circuit {
    let base = rep_circuit.conjugate_by_wires(witness.sigma.inverse());
    if witness.inverted {
        base.inverse()
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Symmetries;
    use revsynth_circuit::GateLib;
    use revsynth_perm::Perm;

    /// Maps a circuit for `f` into the representative's frame — the
    /// inverse of [`replay_for_witness`], and what a class-keyed cache
    /// does when it stores a freshly synthesized circuit under the rep.
    fn circuit_to_rep(circuit: &Circuit, w: &Canonicalized) -> Circuit {
        let base = if w.inverted {
            circuit.inverse()
        } else {
            circuit.clone()
        };
        base.conjugate_by_wires(w.sigma)
    }

    /// Deterministic gate-string circuits over the n-wire NCT library.
    fn random_circuits(n: usize, count: usize, max_len: usize, seed: u64) -> Vec<Circuit> {
        let lib = GateLib::nct(n);
        let gates: Vec<_> = lib.iter().map(|(_, g, _)| g).collect();
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..count)
            .map(|_| {
                let len = (next() % (max_len as u64 + 1)) as usize;
                Circuit::from_gates((0..len).map(|_| gates[next() as usize % gates.len()]))
            })
            .collect()
    }

    #[test]
    fn replay_roundtrips_through_the_witness() {
        for n in 2..=4usize {
            let sym = Symmetries::new(n);
            for (i, circuit) in random_circuits(n, 40, 8, 0xC1AC5).iter().enumerate() {
                let f = circuit.perm(n);
                let w = sym.canonicalize(f);
                let rep_circuit = circuit_to_rep(circuit, &w);
                assert_eq!(rep_circuit.perm(n), w.rep, "n={n} circuit {i}");
                let replayed = replay_for_witness(&rep_circuit, &w);
                assert_eq!(replayed.perm(n), f, "n={n} circuit {i}");
                assert_eq!(replayed.len(), circuit.len(), "n={n} circuit {i}");
            }
        }
    }

    #[test]
    fn replay_serves_every_class_member_from_one_rep_circuit() {
        // The cache scenario: one circuit stored for the rep answers all
        // ≤ 2·n! members exactly and at the same cost.
        let sym = Symmetries::new(4);
        let circuit: Circuit = "TOF(a,b,d) CNOT(a,b) TOF(b,c,d) CNOT(b,c)".parse().unwrap();
        let f = circuit.perm(4);
        let w = sym.canonicalize(f);
        let rep_circuit = circuit_to_rep(&circuit, &w);
        for member in sym.class_members(f) {
            let mw = sym.canonicalize(member);
            assert_eq!(mw.rep, w.rep, "same class, same rep");
            let replayed = replay_for_witness(&rep_circuit, &mw);
            assert_eq!(replayed.perm(4), member, "member {member}");
            assert_eq!(replayed.len(), circuit.len(), "cost-preserving");
        }
    }

    #[test]
    fn replay_simulates_pointwise() {
        let sym = Symmetries::new(3);
        for circuit in &random_circuits(3, 10, 6, 0x5EED) {
            let f = circuit.perm(3);
            let w = sym.canonicalize(f);
            let replayed = replay_for_witness(&circuit_to_rep(circuit, &w), &w);
            for x in 0..8u8 {
                assert_eq!(replayed.simulate(x), f.apply(x), "x={x}");
            }
        }
    }

    #[test]
    fn identity_witness_is_a_no_op() {
        let sym = Symmetries::new(4);
        let circuit: Circuit = "NOT(a)".parse().unwrap();
        let f = circuit.perm(4);
        let w = sym.canonicalize(f);
        if !w.inverted && w.sigma == revsynth_perm::WirePerm::identity() {
            assert_eq!(replay_for_witness(&circuit, &w), circuit);
        }
        // Whatever the witness, the empty circuit replays to itself.
        let w = sym.canonicalize(Perm::identity());
        assert_eq!(replay_for_witness(&Circuit::new(), &w), Circuit::new());
    }
}
