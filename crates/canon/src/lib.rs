//! Equivalence classes of reversible functions under simultaneous
//! input/output relabeling and inversion (paper §3.2).
//!
//! Two reversible functions are **equivalent** when one can be obtained from
//! the other by a simultaneous relabeling of inputs and outputs
//! (`f_σ = π_σ ∘ f ∘ π_σ⁻¹` for a wire permutation `σ`), by inversion, or by
//! both. Equivalent functions have the same optimal circuit size, and a
//! minimal circuit for any member is obtained from a minimal circuit of the
//! class representative by relabeling wires and/or reversing the gate string
//! — so the breadth-first search only needs to store **one representative
//! per class**, shrinking storage by a factor of almost `2 · 4! = 48`.
//!
//! The canonical representative is the class member whose packed word
//! ([`revsynth_perm::Perm::packed`]) is smallest. It is found exactly as the
//! paper describes: conjugate `f` and `f⁻¹` through all 24 relabelings by
//! chaining 46 adjacent-wire transpositions (a plain-changes walk through
//! the symmetric group), comparing packed words along the way — one
//! inversion, 46 conjugations and 47 comparisons in total.
//!
//! # Example
//!
//! ```
//! use revsynth_canon::Symmetries;
//! use revsynth_perm::Perm;
//!
//! let sym = Symmetries::new(4);
//! let f = Perm::from_values(&[1, 0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15])?;
//! // NOT(a) is equivalent to exactly the four NOT gates (paper §3.2 example).
//! assert_eq!(sym.class_size(f), 4);
//! let rep = sym.canonical(f);
//! assert_eq!(sym.canonical(f.inverse()), rep);
//! # Ok::<(), revsynth_perm::InvalidPermError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod replay;
mod symmetries;

pub use class::ClassStats;
pub use replay::replay_for_witness;
pub use symmetries::{Canonicalized, Frames, Symmetries};
