//! The plain-changes canonicalization walk.

use std::fmt;

use revsynth_circuit::Gate;
use revsynth_perm::{Perm, WirePerm};

/// Index into `TRANSPOSITION_MASKS` for the adjacent pair `(w, w+1)`.
const ADJACENT_MASK_INDEX: [usize; 3] = [0, 3, 5]; // (0,1), (1,2), (2,3)

/// Precomputed symmetry data for an `n`-wire domain: the transposition walk
/// that visits all `n!` wire relabelings, and the prefix relabelings needed
/// to reconstruct witnesses.
///
/// Construction is cheap (a tiny backtracking search over at most 24
/// nodes); build once and share.
#[derive(Clone)]
pub struct Symmetries {
    n: usize,
    /// Mask index (into `TRANSPOSITION_MASKS`) per walk step.
    walk: Vec<usize>,
    /// `prefixes[i]` = composite relabeling after `i` steps (`prefixes[0]`
    /// is the identity); length `walk.len() + 1 == n!`.
    prefixes: Vec<WirePerm>,
}

/// The result of [`Symmetries::canonicalize`]: the canonical representative
/// together with a witness of how the input maps onto it.
///
/// Contract: `rep == (if inverted { f.inverse() } else { f })
/// .conjugate_by_wires(sigma)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Canonicalized {
    /// The canonical (packed-word-minimal) member of the class.
    pub rep: Perm,
    /// Whether the representative was reached from `f⁻¹` rather than `f`.
    pub inverted: bool,
    /// The wire relabeling carrying `f` (or `f⁻¹`) onto `rep`.
    pub sigma: WirePerm,
}

impl Symmetries {
    /// Builds the symmetry context for `n` wires.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 2, 3 or 4.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!((2..=4).contains(&n), "unsupported wire count {n}");
        let (walk_pairs, prefixes) = find_walk(n);
        let walk = walk_pairs
            .iter()
            .map(|&w| ADJACENT_MASK_INDEX[usize::from(w)])
            .collect();
        Symmetries { n, walk, prefixes }
    }

    /// The wire count.
    #[inline]
    #[must_use]
    pub const fn wires(&self) -> usize {
        self.n
    }

    /// Number of wire relabelings (`n!`).
    #[inline]
    #[must_use]
    pub fn num_relabelings(&self) -> usize {
        self.prefixes.len()
    }

    /// Maximum possible equivalence-class size, `2 · n!`.
    #[inline]
    #[must_use]
    pub fn max_class_size(&self) -> usize {
        2 * self.prefixes.len()
    }

    /// The canonical representative of the equivalence class of `f`: the
    /// packed-word-minimal function among the `≤ 2·n!` conjugates of `f`
    /// and `f⁻¹`.
    ///
    /// This is the hot kernel of the whole pipeline (the paper counts ~750
    /// machine instructions: one inversion, 46 conjugations-by-transposition
    /// and 47 word comparisons for n = 4).
    #[inline]
    #[must_use]
    pub fn canonical(&self, f: Perm) -> Perm {
        let mut best = f;
        let mut cur = f;
        for &idx in &self.walk {
            cur = cur.conjugate_swap_indexed(idx);
            if cur < best {
                best = cur;
            }
        }
        let inv = f.inverse();
        if inv < best {
            best = inv;
        }
        let mut cur = inv;
        for &idx in &self.walk {
            cur = cur.conjugate_swap_indexed(idx);
            if cur < best {
                best = cur;
            }
        }
        best
    }

    /// Like [`canonical`](Self::canonical) but also returns the witness
    /// (which relabeling, and whether inversion was used) needed to map
    /// gates between `f`'s frame and the representative's frame.
    #[must_use]
    pub fn canonicalize(&self, f: Perm) -> Canonicalized {
        let mut best = f;
        let mut best_step = 0usize;
        let mut best_inverted = false;

        let mut cur = f;
        for (step, &idx) in self.walk.iter().enumerate() {
            cur = cur.conjugate_swap_indexed(idx);
            if cur < best {
                best = cur;
                best_step = step + 1;
            }
        }
        let inv = f.inverse();
        if inv < best {
            best = inv;
            best_step = 0;
            best_inverted = true;
        }
        let mut cur = inv;
        for (step, &idx) in self.walk.iter().enumerate() {
            cur = cur.conjugate_swap_indexed(idx);
            if cur < best {
                best = cur;
                best_step = step + 1;
                best_inverted = true;
            }
        }
        Canonicalized {
            rep: best,
            inverted: best_inverted,
            sigma: self.prefixes[best_step],
        }
    }

    /// Whether `f` is the canonical representative of its class.
    #[must_use]
    pub fn is_canonical(&self, f: Perm) -> bool {
        self.canonical(f) == f
    }

    /// Reference implementation of [`canonical`](Self::canonical): apply
    /// every relabeling to `f` and `f⁻¹` from scratch via
    /// [`Perm::conjugate_by_wires`] and take the minimum.
    ///
    /// Exists to validate (tests) and quantify (the `ablation` Criterion
    /// bench) the paper's incremental plain-changes walk, which replaces
    /// each full conjugation with a single 14-instruction transposition
    /// step.
    #[must_use]
    pub fn canonical_naive(&self, f: Perm) -> Perm {
        let inv = f.inverse();
        self.prefixes
            .iter()
            .flat_map(|&sigma| [f.conjugate_by_wires(sigma), inv.conjugate_by_wires(sigma)])
            .min()
            .expect("at least the identity relabeling exists")
    }

    /// Maps a gate from the frame of `f` into the frame of the
    /// representative produced by [`canonicalize`](Self::canonicalize)
    /// (i.e. relabels its wires by the witness `σ`).
    #[must_use]
    pub fn gate_to_rep(&self, witness: &Canonicalized, gate: Gate) -> Gate {
        gate.conjugate_by_wires(witness.sigma)
    }

    /// Maps a gate from the representative's frame back into `f`'s frame.
    #[must_use]
    pub fn gate_from_rep(&self, witness: &Canonicalized, gate: Gate) -> Gate {
        gate.conjugate_by_wires(witness.sigma.inverse())
    }

    /// All wire relabelings of the walk (prefix composites), starting with
    /// the identity; exactly `n!` entries, all distinct.
    #[must_use]
    pub fn relabelings(&self) -> &[WirePerm] {
        &self.prefixes
    }

    /// Lazily yields the `n!` **frames** of `f` — the conjugates
    /// `conj_τ(f) = π_τ ∘ f ∘ π_τ⁻¹` for every wire relabeling `τ` — as
    /// `(frame, step)` pairs with
    /// `frame == f.conjugate_by_wires(self.relabelings()[step])`.
    ///
    /// Frames are produced incrementally along the plain-changes walk (one
    /// 14-instruction transposition step each) and without allocation; this
    /// is the setup kernel of the frame-hoisted meet-in-the-middle search,
    /// which computes the frames of a query **once** and then exploits
    /// `canonical(conj_σ(g) ∘ f) = canonical(g ∘ conj_{σ⁻¹}(f))` to scan
    /// stored representatives directly instead of expanding each
    /// representative's equivalence class.
    #[must_use]
    pub fn frames(&self, f: Perm) -> Frames<'_> {
        Frames {
            walk: &self.walk,
            cur: f,
            next_step: 0,
        }
    }

    /// Visits every member of the equivalence class of `f`, with
    /// duplicates when the class has fewer than `2·n!` distinct members.
    /// Use [`class_members_into`](Self::class_members_into) for a deduped
    /// list.
    pub fn for_each_candidate<F: FnMut(Perm)>(&self, f: Perm, mut visit: F) {
        let mut cur = f;
        visit(cur);
        for &idx in &self.walk {
            cur = cur.conjugate_swap_indexed(idx);
            visit(cur);
        }
        let inv = f.inverse();
        let mut cur = inv;
        visit(cur);
        for &idx in &self.walk {
            cur = cur.conjugate_swap_indexed(idx);
            visit(cur);
        }
    }

    /// Writes the distinct members of the equivalence class of `f` into
    /// `buf` (cleared first), sorted ascending. The buffer is reusable
    /// across calls to avoid allocation in hot loops.
    pub fn class_members_into(&self, f: Perm, buf: &mut Vec<Perm>) {
        buf.clear();
        self.for_each_candidate(f, |p| buf.push(p));
        buf.sort_unstable();
        buf.dedup();
    }

    /// The distinct members of the equivalence class of `f`, sorted.
    #[must_use]
    pub fn class_members(&self, f: Perm) -> Vec<Perm> {
        let mut buf = Vec::with_capacity(self.max_class_size());
        self.class_members_into(f, &mut buf);
        buf
    }

    /// Number of distinct members in the equivalence class of `f`
    /// (the paper observes this is `2·4! = 48` for the vast majority of
    /// 4-bit functions).
    #[must_use]
    pub fn class_size(&self, f: Perm) -> usize {
        let mut buf = Vec::with_capacity(self.max_class_size());
        self.class_members_into(f, &mut buf);
        buf.len()
    }
}

/// Iterator returned by [`Symmetries::frames`]: the `n!` wire-relabeling
/// conjugates of a function, walked incrementally, allocation-free.
#[derive(Clone)]
pub struct Frames<'a> {
    walk: &'a [usize],
    cur: Perm,
    next_step: usize,
}

impl Iterator for Frames<'_> {
    /// `(frame, step)` — the conjugate and the index of its relabeling in
    /// [`Symmetries::relabelings`].
    type Item = (Perm, usize);

    #[inline]
    fn next(&mut self) -> Option<(Perm, usize)> {
        let step = self.next_step;
        if step == 0 {
            self.next_step = 1;
            return Some((self.cur, 0));
        }
        let &mask_idx = self.walk.get(step - 1)?;
        self.cur = self.cur.conjugate_swap_indexed(mask_idx);
        self.next_step += 1;
        Some((self.cur, step))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.walk.len() + 1).saturating_sub(self.next_step);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Frames<'_> {}

impl fmt::Debug for Symmetries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Symmetries({} wires, {} relabelings, {}-step walk)",
            self.n,
            self.prefixes.len(),
            self.walk.len()
        )
    }
}

/// Finds a plain-changes walk: a sequence of adjacent transpositions
/// `(w, w+1)` (with `w + 1 < n`) whose prefix products visit every
/// relabeling of wires `0..n` exactly once, starting from the identity.
///
/// Returns `(steps, prefixes)` with `prefixes.len() == steps.len() + 1`.
/// Existence is guaranteed by the Steinhaus–Johnson–Trotter construction;
/// a tiny backtracking search over at most 24 nodes finds one directly.
fn find_walk(n: usize) -> (Vec<u8>, Vec<WirePerm>) {
    let target: Vec<WirePerm> = WirePerm::all()
        .into_iter()
        .filter(|w| w.fixes_wires_from(n))
        .collect();
    let total = target.len(); // n!
    let gens: Vec<(u8, WirePerm)> = (0..n as u8 - 1)
        .map(|w| (w, WirePerm::transposition(w, w + 1)))
        .collect();

    let mut steps = Vec::with_capacity(total - 1);
    let mut prefixes = vec![WirePerm::identity()];
    let mut visited = std::collections::HashSet::with_capacity(total);
    visited.insert(WirePerm::identity());
    let found = dfs(&gens, total, &mut steps, &mut prefixes, &mut visited);
    assert!(found, "plain-changes walk must exist for n = {n}");
    (steps, prefixes)
}

fn dfs(
    gens: &[(u8, WirePerm)],
    total: usize,
    steps: &mut Vec<u8>,
    prefixes: &mut Vec<WirePerm>,
    visited: &mut std::collections::HashSet<WirePerm>,
) -> bool {
    if prefixes.len() == total {
        return true;
    }
    let cur = *prefixes.last().expect("prefixes starts non-empty");
    for &(w, tau) in gens {
        let next = cur.then(tau);
        if visited.insert(next) {
            steps.push(w);
            prefixes.push(next);
            if dfs(gens, total, steps, prefixes, visited) {
                return true;
            }
            steps.pop();
            prefixes.pop();
            visited.remove(&next);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use revsynth_circuit::GateLib;

    #[test]
    fn walk_visits_all_relabelings() {
        for n in 2..=4usize {
            let sym = Symmetries::new(n);
            let expected: usize = (1..=n).product();
            assert_eq!(sym.num_relabelings(), expected, "n={n}");
            let set: std::collections::HashSet<_> = sym.relabelings().iter().copied().collect();
            assert_eq!(set.len(), expected);
            assert!(sym.relabelings().iter().all(|s| s.fixes_wires_from(n)));
        }
    }

    #[test]
    fn walk_prefixes_match_conjugation_chain() {
        // Chaining conjugate_swap along the walk must equal conjugating by
        // the recorded prefix relabeling at every step.
        let sym = Symmetries::new(4);
        let f = Perm::from_values(&[15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11]).unwrap();
        let mut cur = f;
        assert_eq!(cur, f.conjugate_by_wires(sym.prefixes[0]));
        for (i, &idx) in sym.walk.iter().enumerate() {
            cur = cur.conjugate_swap_indexed(idx);
            assert_eq!(cur, f.conjugate_by_wires(sym.prefixes[i + 1]), "step {i}");
        }
    }

    #[test]
    fn canonical_is_class_invariant() {
        let sym = Symmetries::new(4);
        let f = Perm::from_values(&[1, 2, 4, 8, 0, 3, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15]).unwrap();
        let rep = sym.canonical(f);
        for member in sym.class_members(f) {
            assert_eq!(sym.canonical(member), rep, "member {member}");
        }
        assert_eq!(sym.canonical(f.inverse()), rep);
    }

    #[test]
    fn canonical_is_minimum_of_class() {
        let sym = Symmetries::new(4);
        for f in [
            Perm::identity(),
            Perm::from_values(&[0, 7, 6, 9, 4, 11, 10, 13, 8, 15, 14, 1, 12, 3, 2, 5]).unwrap(),
            Perm::from_values(&[2, 3, 5, 7, 11, 13, 0, 1, 4, 6, 8, 9, 10, 12, 14, 15]).unwrap(),
        ] {
            let members = sym.class_members(f);
            assert_eq!(sym.canonical(f), members[0], "min of sorted member list");
            assert!(sym.is_canonical(members[0]));
        }
    }

    #[test]
    fn canonicalize_witness_is_sound() {
        let sym = Symmetries::new(4);
        for f in [
            Perm::from_values(&[15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11]).unwrap(),
            Perm::from_values(&[6, 0, 12, 15, 7, 1, 5, 2, 4, 10, 13, 3, 11, 8, 14, 9]).unwrap(),
            Perm::identity(),
        ] {
            let w = sym.canonicalize(f);
            let base = if w.inverted { f.inverse() } else { f };
            assert_eq!(base.conjugate_by_wires(w.sigma), w.rep);
            assert_eq!(w.rep, sym.canonical(f));
        }
    }

    #[test]
    fn gate_mapping_roundtrips() {
        let sym = Symmetries::new(4);
        let f = Perm::from_values(&[9, 0, 2, 15, 11, 6, 7, 8, 14, 3, 4, 13, 5, 1, 12, 10]).unwrap();
        let w = sym.canonicalize(f);
        for (_, g, _) in GateLib::nct(4).iter() {
            let there = sym.gate_to_rep(&w, g);
            let back = sym.gate_from_rep(&w, there);
            assert_eq!(back, g);
            // Gate mapping must commute with perm conjugation.
            assert_eq!(there.perm(4), g.perm(4).conjugate_by_wires(w.sigma));
        }
    }

    #[test]
    fn frames_match_prefix_conjugations() {
        // frames(f) must yield exactly (f.conjugate_by_wires(prefixes[s]), s)
        // for every step s, in walk order, without allocation.
        for n in 2..=4usize {
            let sym = Symmetries::new(n);
            let f = Perm::from_values(&[3, 0, 2, 1]).unwrap();
            let frames: Vec<(Perm, usize)> = sym.frames(f).collect();
            assert_eq!(frames.len(), sym.num_relabelings(), "n={n}");
            assert_eq!(
                sym.frames(f).len(),
                sym.num_relabelings(),
                "exact size hint"
            );
            for (i, &(frame, step)) in frames.iter().enumerate() {
                assert_eq!(step, i, "steps ascend in walk order");
                assert_eq!(
                    frame,
                    f.conjugate_by_wires(sym.relabelings()[step]),
                    "n={n} step {step}"
                );
            }
        }
    }

    #[test]
    fn frames_cover_all_conjugates() {
        let sym = Symmetries::new(4);
        let f = Perm::from_values(&[9, 0, 2, 15, 11, 6, 7, 8, 14, 3, 4, 13, 5, 1, 12, 10]).unwrap();
        let from_iter: std::collections::HashSet<Perm> =
            sym.frames(f).map(|(frame, _)| frame).collect();
        let expected: std::collections::HashSet<Perm> = sym
            .relabelings()
            .iter()
            .map(|&tau| f.conjugate_by_wires(tau))
            .collect();
        assert_eq!(from_iter, expected);
    }

    #[test]
    fn gate_class_sizes_match_paper() {
        // Paper §3.2: NOT's class has 4 members; Table 4 row 1 says the 32
        // gates form 4 classes (NOT, CNOT, TOF, TOF4).
        let sym = Symmetries::new(4);
        let lib = GateLib::nct(4);
        let mut reps = std::collections::HashSet::new();
        for (_, g, p) in lib.iter() {
            let expected = match g.num_controls() {
                0 | 3 => 4,
                _ => 12,
            };
            assert_eq!(sym.class_size(p), expected, "{g}");
            reps.insert(sym.canonical(p));
        }
        assert_eq!(reps.len(), 4);
    }

    #[test]
    fn identity_class_is_trivial() {
        for n in 2..=4usize {
            let sym = Symmetries::new(n);
            assert_eq!(sym.class_size(Perm::identity()), 1);
            assert!(sym.is_canonical(Perm::identity()));
        }
    }

    #[test]
    fn small_domain_classes_stay_in_domain() {
        let sym = Symmetries::new(3);
        let lib = GateLib::nct(3);
        for (_, _, p) in lib.iter() {
            for member in sym.class_members(p) {
                for x in 8..16u8 {
                    assert_eq!(member.apply(x), x);
                }
            }
        }
    }

    #[test]
    fn class_size_divides_max() {
        // Orbit sizes under a group action divide the group order 2·n!.
        let sym = Symmetries::new(4);
        for f in [
            Perm::identity(),
            Perm::from_values(&[1, 0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]).unwrap(),
            Perm::from_values(&[0, 7, 6, 9, 4, 11, 10, 13, 8, 15, 14, 1, 12, 3, 2, 5]).unwrap(),
        ] {
            let size = sym.class_size(f);
            assert_eq!(sym.max_class_size() % size, 0, "class size {size}");
        }
    }
}
