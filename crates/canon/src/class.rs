//! Aggregate statistics over equivalence classes.

use std::fmt;

use revsynth_perm::Perm;

use crate::symmetries::Symmetries;

/// Accumulates equivalence-class size statistics.
///
/// The paper observes that "a vast majority of functions have 48 distinct
/// equivalent functions"; this accumulator quantifies that claim for any
/// set of class representatives, and converts **reduced** (per-class)
/// counts into **full** (per-function) counts — the relationship between
/// the two columns of the paper's Table 4.
///
/// # Example
///
/// ```
/// use revsynth_canon::{ClassStats, Symmetries};
/// use revsynth_perm::Perm;
///
/// let sym = Symmetries::new(4);
/// let mut stats = ClassStats::new();
/// stats.record(&sym, Perm::identity());
/// assert_eq!(stats.classes(), 1);
/// assert_eq!(stats.functions(), 1); // identity is alone in its class
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// `histogram[s]` = number of classes with exactly `s` members
    /// (index 0 unused).
    histogram: Vec<u64>,
    classes: u64,
    functions: u64,
}

impl ClassStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        ClassStats {
            histogram: vec![0; 49],
            classes: 0,
            functions: 0,
        }
    }

    /// Records the class of `rep` (any member works; the class size is
    /// computed through `sym`).
    pub fn record(&mut self, sym: &Symmetries, rep: Perm) {
        self.record_size(sym.class_size(rep));
    }

    /// Records a class whose size is already known.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds 48.
    pub fn record_size(&mut self, size: usize) {
        assert!((1..=48).contains(&size), "impossible class size {size}");
        self.histogram[size] += 1;
        self.classes += 1;
        self.functions += size as u64;
    }

    /// Number of classes recorded (the paper's "reduced functions" count).
    #[must_use]
    pub fn classes(&self) -> u64 {
        self.classes
    }

    /// Total number of functions covered (the paper's "functions" count):
    /// the sum of class sizes.
    #[must_use]
    pub fn functions(&self) -> u64 {
        self.functions
    }

    /// Number of classes of exactly `size` members.
    #[must_use]
    pub fn classes_of_size(&self, size: usize) -> u64 {
        self.histogram.get(size).copied().unwrap_or(0)
    }

    /// Fraction of classes that reach the maximal size (`2·n!`); the
    /// paper's "vast majority" observation.
    #[must_use]
    pub fn full_class_fraction(&self, sym: &Symmetries) -> f64 {
        if self.classes == 0 {
            return 0.0;
        }
        self.classes_of_size(sym.max_class_size()) as f64 / self.classes as f64
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &ClassStats) {
        for (size, &count) in other.histogram.iter().enumerate() {
            if count > 0 {
                self.histogram[size] += count;
            }
        }
        self.classes += other.classes;
        self.functions += other.functions;
    }
}

impl fmt::Debug for ClassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ClassStats({} classes, {} functions)",
            self.classes, self.functions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revsynth_circuit::GateLib;

    #[test]
    fn gate_level_counts_match_table4_row1() {
        // The 32 gates fall into 4 classes totalling 32 functions — the
        // size-1 row of the paper's Table 4 (32 functions, 4 reduced).
        let sym = Symmetries::new(4);
        let lib = GateLib::nct(4);
        let mut reps = std::collections::HashSet::new();
        for (_, _, p) in lib.iter() {
            reps.insert(sym.canonical(p));
        }
        let mut stats = ClassStats::new();
        for &rep in &reps {
            stats.record(&sym, rep);
        }
        assert_eq!(stats.classes(), 4);
        assert_eq!(stats.functions(), 32);
        assert_eq!(stats.classes_of_size(4), 2); // NOT, TOF4
        assert_eq!(stats.classes_of_size(12), 2); // CNOT, TOF
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ClassStats::new();
        a.record_size(48);
        a.record_size(4);
        let mut b = ClassStats::new();
        b.record_size(48);
        b.merge(&a);
        assert_eq!(b.classes(), 3);
        assert_eq!(b.functions(), 100);
        assert_eq!(b.classes_of_size(48), 2);
    }

    #[test]
    #[should_panic(expected = "impossible class size")]
    fn rejects_zero_size() {
        ClassStats::new().record_size(0);
    }
}
