//! Property tests for the cost axis of the class machinery: every
//! [`CostKind`] must be invariant under conjugation-by-relabeling and
//! under inversion — the two moves generating the ×48 classes — and
//! witness replay must preserve every kind's measure.
//!
//! These invariances are *load-bearing*: the residual-bucket invariant
//! gate assumes a candidate's cost equals its canonical
//! representative's, and the serve layer's class-keyed cache assumes one
//! stored circuit answers every class member at the same cost under
//! every model. Seeded SplitMix64 streams keep the tests deterministic
//! and offline (no external RNG crate).

use revsynth_canon::{replay_for_witness, Symmetries};
use revsynth_circuit::{Circuit, CostKind, GateLib};
use revsynth_perm::WirePerm;

/// Self-contained SplitMix64 (the repo's standard offline stream).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn random_circuits(n: usize, count: usize, max_len: usize, seed: u64) -> Vec<Circuit> {
    let lib = GateLib::nct(n);
    let gates: Vec<_> = lib.iter().map(|(_, g, _)| g).collect();
    let mut rng = SplitMix64(seed);
    (0..count)
        .map(|_| {
            let len = (rng.next() % (max_len as u64 + 1)) as usize;
            Circuit::from_gates((0..len).map(|_| gates[rng.next() as usize % gates.len()]))
        })
        .collect()
}

fn all_wire_perms(n: usize) -> Vec<WirePerm> {
    // Enumerate σ over n wires via the symmetry context's relabeling walk.
    let sym = Symmetries::new(n);
    sym.relabelings().to_vec()
}

#[test]
fn every_cost_kind_is_invariant_under_conjugation_by_relabeling() {
    for n in [3usize, 4] {
        let sigmas = all_wire_perms(n);
        for (i, circuit) in random_circuits(n, 30, 10, 0xC057_0001).iter().enumerate() {
            for kind in CostKind::ALL {
                let base = kind.measure(circuit);
                for &sigma in &sigmas {
                    let conjugated = circuit.conjugate_by_wires(sigma);
                    assert_eq!(
                        kind.measure(&conjugated),
                        base,
                        "n={n} circuit {i} kind {kind} sigma {sigma:?}"
                    );
                    // Conjugation really computes the conjugated function.
                    assert_eq!(
                        conjugated.perm(n),
                        circuit.perm(n).conjugate_by_wires(sigma),
                        "n={n} circuit {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn every_cost_kind_is_invariant_under_inversion() {
    for n in [3usize, 4] {
        for (i, circuit) in random_circuits(n, 40, 12, 0xC057_0002).iter().enumerate() {
            let inverse = circuit.inverse();
            assert_eq!(inverse.perm(n), circuit.perm(n).inverse(), "circuit {i}");
            for kind in CostKind::ALL {
                assert_eq!(
                    kind.measure(&inverse),
                    kind.measure(circuit),
                    "n={n} circuit {i} kind {kind}"
                );
            }
        }
    }
}

#[test]
fn replay_for_witness_preserves_every_cost_kind() {
    // The serve-layer contract: a cached representative circuit replayed
    // through any member's witness keeps the member's cost identical
    // under all three models — so one cache entry per (model, class) is
    // enough and replayed answers stay optimal.
    for n in [3usize, 4] {
        let sym = Symmetries::new(n);
        for (i, circuit) in random_circuits(n, 40, 10, 0xC057_0003).iter().enumerate() {
            let f = circuit.perm(n);
            let w = sym.canonicalize(f);
            // Map the circuit into the representative's frame (what the
            // cache stores), then replay it back.
            let rep_circuit = if w.inverted {
                circuit.inverse()
            } else {
                circuit.clone()
            }
            .conjugate_by_wires(w.sigma);
            assert_eq!(rep_circuit.perm(n), w.rep, "n={n} circuit {i}");
            let replayed = replay_for_witness(&rep_circuit, &w);
            assert_eq!(replayed.perm(n), f, "n={n} circuit {i}");
            for kind in CostKind::ALL {
                assert_eq!(
                    kind.measure(&replayed),
                    kind.measure(circuit),
                    "n={n} circuit {i} kind {kind}"
                );
                assert_eq!(
                    kind.measure(&rep_circuit),
                    kind.measure(circuit),
                    "n={n} circuit {i} kind {kind} (rep frame)"
                );
            }
        }
    }
}

#[test]
fn class_members_share_every_cost_measure() {
    // The cache-key argument from the class side: every member of a
    // class is a conjugate/inverse of the representative, so measures
    // computed from any member's minimal circuit agree — one cache
    // entry per (cost model, class) can answer them all.
    let sym = Symmetries::new(3);
    for circuit in &random_circuits(3, 12, 8, 0xC057_0004) {
        let f = circuit.perm(3);
        for member in sym.class_members(f) {
            let w = sym.canonicalize(member);
            assert_eq!(w.rep, sym.canonical(f), "same class");
        }
    }
}
