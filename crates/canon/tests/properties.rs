//! Property-based tests for canonicalization.
//!
//! Deterministic randomized properties from a fixed SplitMix64 seed (no
//! external property-testing crate is vendored in this offline workspace),
//! so failures reproduce exactly.

use revsynth_canon::Symmetries;
use revsynth_perm::{Perm, WirePerm};

const CASES: usize = 200;

struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn perm(&mut self) -> Perm {
        let mut vals: Vec<u8> = (0..16).collect();
        for i in (1..16usize).rev() {
            let j = (self.next() % (i as u64 + 1)) as usize;
            vals.swap(i, j);
        }
        Perm::from_values(&vals).expect("shuffle is a permutation")
    }
}

fn sym() -> Symmetries {
    Symmetries::new(4)
}

#[test]
fn walk_canonical_equals_naive_canonical() {
    // The incremental plain-changes walk must agree with recomputing
    // every conjugate from scratch.
    let s = sym();
    let mut g = Gen(21);
    for _ in 0..CASES {
        let f = g.perm();
        assert_eq!(s.canonical(f), s.canonical_naive(f), "f={f}");
    }
}

#[test]
fn canonical_is_idempotent() {
    let s = sym();
    let mut g = Gen(22);
    for _ in 0..CASES {
        let rep = s.canonical(g.perm());
        assert_eq!(s.canonical(rep), rep);
    }
}

#[test]
fn canonical_invariant_under_inversion() {
    let s = sym();
    let mut g = Gen(23);
    for _ in 0..CASES {
        let f = g.perm();
        assert_eq!(s.canonical(f), s.canonical(f.inverse()), "f={f}");
    }
}

#[test]
fn canonical_invariant_under_relabeling() {
    let s = sym();
    let mut g = Gen(24);
    for _ in 0..CASES {
        let f = g.perm();
        let sigma = WirePerm::all()[(g.next() % 24) as usize];
        assert_eq!(s.canonical(f), s.canonical(f.conjugate_by_wires(sigma)));
    }
}

#[test]
fn canonical_is_not_larger_than_input() {
    let s = sym();
    let mut g = Gen(25);
    for _ in 0..CASES {
        let f = g.perm();
        assert!(s.canonical(f) <= f);
    }
}

#[test]
fn witness_reconstructs_rep() {
    let s = sym();
    let mut g = Gen(26);
    for _ in 0..CASES {
        let f = g.perm();
        let w = s.canonicalize(f);
        let base = if w.inverted { f.inverse() } else { f };
        assert_eq!(base.conjugate_by_wires(w.sigma), w.rep);
        assert_eq!(w.rep, s.canonical(f));
    }
}

#[test]
fn class_members_contains_input_and_rep() {
    let s = sym();
    let mut g = Gen(27);
    for _ in 0..CASES {
        let f = g.perm();
        let members = s.class_members(f);
        assert!(members.contains(&f));
        assert!(members.contains(&s.canonical(f)));
        assert!(members.contains(&f.inverse()));
        assert!(members.len() <= 48);
        assert_eq!(48 % members.len(), 0); // orbit size divides |S4 × Z2|
    }
}

#[test]
fn class_is_closed() {
    let s = sym();
    let mut g = Gen(28);
    for _ in 0..CASES / 4 {
        let f = g.perm();
        let members = s.class_members(f);
        let sigma = WirePerm::all()[(g.next() % 24) as usize];
        for &m in members.iter().take(6) {
            assert!(members.contains(&m.inverse()));
            assert!(members.contains(&m.conjugate_by_wires(sigma)));
        }
    }
}

#[test]
fn invariant_keys_are_constant_on_each_class() {
    // The invariant gate's soundness property: both class-invariant keys
    // are constant across all ≤ 48 members of the equivalence class of a
    // random 4-wire function — every conjugate AND the inverse — and
    // therefore equal the canonical representative's keys without ever
    // computing the representative.
    let s = sym();
    let mut g = Gen(30);
    for _ in 0..CASES {
        let f = g.perm();
        let cycle_key = f.cycle_type_key();
        let weight_key = f.wire_weight_key();
        assert_eq!(f.inverse().cycle_type_key(), cycle_key, "f={f}");
        assert_eq!(f.inverse().wire_weight_key(), weight_key, "f={f}");
        let members = s.class_members(f);
        for &m in &members {
            assert_eq!(m.cycle_type_key(), cycle_key, "f={f} member {m}");
            assert_eq!(m.wire_weight_key(), weight_key, "f={f} member {m}");
        }
        let rep = s.canonical(f);
        assert_eq!(rep.cycle_type_key(), cycle_key);
        assert_eq!(rep.wire_weight_key(), weight_key);
    }
}

#[test]
fn cycle_type_key_has_at_most_231_values() {
    // Partitions of 16: the gate's cycle-type component can take at most
    // 231 distinct values over all permutations; a broad random sample
    // must stay within that bound (and cover a healthy fraction of it).
    let mut g = Gen(31);
    let mut keys = std::collections::HashSet::new();
    for _ in 0..5_000 {
        keys.insert(g.perm().cycle_type_key());
    }
    assert!(keys.len() <= 231, "{} distinct cycle types", keys.len());
    assert!(keys.len() > 50, "sample should cover many types");
}

#[test]
fn random_4bit_classes_are_usually_full() {
    // The paper: "for the vast majority of functions, the conjugacy
    // classes are of size 24" (so the equivalence class has 48). A
    // random permutation having a nontrivial symmetry is rare; we only
    // assert the size is a divisor of 48, plus require that the full size
    // 48 shows up over the whole sample (statistically it is ~always 48).
    let s = sym();
    let mut g = Gen(29);
    let mut saw_full = false;
    for _ in 0..CASES {
        let size = s.class_size(g.perm());
        assert!((1..=48).contains(&size) && 48 % size == 0);
        saw_full |= size == 48;
    }
    assert!(saw_full, "some random class must be full-sized");
}

#[test]
fn exhaustive_small_domain_class_partition() {
    // For n = 2 the 24 permutations of {0..3} split into equivalence
    // classes that partition the whole set; verify the partition property
    // exhaustively (canonical is constant on each class and classes are
    // disjoint unions).
    let s = Symmetries::new(2);
    let mut all = Vec::new();
    // Enumerate S4 on points {0,1,2,3} via simple recursion.
    let mut vals = [0u8, 1, 2, 3];
    permutations(&mut vals, 0, &mut all);
    let mut by_rep: std::collections::HashMap<Perm, Vec<Perm>> = std::collections::HashMap::new();
    for &p in &all {
        by_rep.entry(s.canonical(p)).or_default().push(p);
    }
    let total: usize = by_rep.values().map(Vec::len).sum();
    assert_eq!(total, 24);
    for (rep, members) in &by_rep {
        let class = s.class_members(*rep);
        assert_eq!(&class.len(), &members.len(), "rep {rep}");
        for m in members {
            assert!(class.contains(m));
        }
    }
}

fn permutations(vals: &mut [u8; 4], k: usize, out: &mut Vec<Perm>) {
    if k == 4 {
        out.push(Perm::from_values(vals).expect("valid permutation"));
        return;
    }
    for i in k..4 {
        vals.swap(k, i);
        permutations(vals, k + 1, out);
        vals.swap(k, i);
    }
}
