//! Property-based tests for canonicalization.

use proptest::prelude::*;
use revsynth_canon::Symmetries;
use revsynth_perm::{Perm, WirePerm};

fn arb_perm() -> impl Strategy<Value = Perm> {
    proptest::collection::vec(any::<u32>(), 16).prop_map(|keys| {
        let mut idx: Vec<u8> = (0..16).collect();
        idx.sort_by_key(|&i| keys[usize::from(i)]);
        Perm::from_values(&idx).expect("sorted index list is a permutation")
    })
}

fn sym() -> Symmetries {
    Symmetries::new(4)
}

proptest! {
    #[test]
    fn walk_canonical_equals_naive_canonical(f in arb_perm()) {
        // The incremental plain-changes walk must agree with recomputing
        // every conjugate from scratch.
        let s = sym();
        prop_assert_eq!(s.canonical(f), s.canonical_naive(f));
    }

    #[test]
    fn canonical_is_idempotent(f in arb_perm()) {
        let s = sym();
        let rep = s.canonical(f);
        prop_assert_eq!(s.canonical(rep), rep);
    }

    #[test]
    fn canonical_invariant_under_inversion(f in arb_perm()) {
        let s = sym();
        prop_assert_eq!(s.canonical(f), s.canonical(f.inverse()));
    }

    #[test]
    fn canonical_invariant_under_relabeling(f in arb_perm(), i in 0usize..24) {
        let s = sym();
        let sigma = WirePerm::all()[i];
        prop_assert_eq!(s.canonical(f), s.canonical(f.conjugate_by_wires(sigma)));
    }

    #[test]
    fn canonical_is_not_larger_than_input(f in arb_perm()) {
        let s = sym();
        prop_assert!(s.canonical(f) <= f);
    }

    #[test]
    fn witness_reconstructs_rep(f in arb_perm()) {
        let s = sym();
        let w = s.canonicalize(f);
        let base = if w.inverted { f.inverse() } else { f };
        prop_assert_eq!(base.conjugate_by_wires(w.sigma), w.rep);
        prop_assert_eq!(w.rep, s.canonical(f));
    }

    #[test]
    fn class_members_contains_input_and_rep(f in arb_perm()) {
        let s = sym();
        let members = s.class_members(f);
        prop_assert!(members.contains(&f));
        prop_assert!(members.contains(&s.canonical(f)));
        prop_assert!(members.contains(&f.inverse()));
        prop_assert!(members.len() <= 48);
        prop_assert_eq!(48 % members.len(), 0); // orbit size divides |S4 × Z2|
    }

    #[test]
    fn class_is_closed(f in arb_perm(), i in 0usize..24) {
        let s = sym();
        let members = s.class_members(f);
        let sigma = WirePerm::all()[i];
        for &m in members.iter().take(6) {
            prop_assert!(members.contains(&m.inverse()));
            prop_assert!(members.contains(&m.conjugate_by_wires(sigma)));
        }
    }

    #[test]
    fn random_4bit_classes_are_usually_full(f in arb_perm()) {
        // The paper: "for the vast majority of functions, the conjugacy
        // classes are of size 24" (so the equivalence class has 48). A
        // random permutation having a nontrivial symmetry is rare; we only
        // assert the size is a divisor of 48 and at least 2 for non-identity
        // inputs, plus track that 48 occurs (statistically it's ~always 48,
        // but a property test must not assert probabilistic facts).
        let s = sym();
        let size = s.class_size(f);
        prop_assert!((1..=48).contains(&size) && 48 % size == 0);
    }
}

#[test]
fn exhaustive_small_domain_class_partition() {
    // For n = 2 the 24 permutations of {0..3} split into equivalence
    // classes that partition the whole set; verify the partition property
    // exhaustively (canonical is constant on each class and classes are
    // disjoint unions).
    let s = Symmetries::new(2);
    let mut all = Vec::new();
    // Enumerate S4 on points {0,1,2,3} via simple recursion.
    let mut vals = [0u8, 1, 2, 3];
    permutations(&mut vals, 0, &mut all);
    let mut by_rep: std::collections::HashMap<Perm, Vec<Perm>> = std::collections::HashMap::new();
    for &p in &all {
        by_rep.entry(s.canonical(p)).or_default().push(p);
    }
    let total: usize = by_rep.values().map(Vec::len).sum();
    assert_eq!(total, 24);
    for (rep, members) in &by_rep {
        let class = s.class_members(*rep);
        assert_eq!(&class.len(), &members.len(), "rep {rep}");
        for m in members {
            assert!(class.contains(m));
        }
    }
}

fn permutations(vals: &mut [u8; 4], k: usize, out: &mut Vec<Perm>) {
    if k == 4 {
        out.push(Perm::from_values(vals).expect("valid permutation"));
        return;
    }
    for i in k..4 {
        vals.swap(k, i);
        permutations(vals, k + 1, out);
        vals.swap(k, i);
    }
}
