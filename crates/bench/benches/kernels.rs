//! Criterion micro-benchmarks of the §3.3 kernels.
//!
//! The paper counts machine instructions: composition 94, inversion 59,
//! conjugation-by-transposition 14, canonical representative ~750, plus
//! the Wang hash and one probe for the membership test. These benchmarks
//! measure the same operations in nanoseconds on this machine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use revsynth_canon::Symmetries;
use revsynth_perm::{hash64shift, Perm};
use revsynth_table::FnTable;

fn fixtures() -> Vec<Perm> {
    let specs: [[u8; 16]; 4] = [
        [15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11],
        [0, 7, 6, 9, 4, 11, 10, 13, 8, 15, 14, 1, 12, 3, 2, 5],
        [6, 15, 9, 5, 13, 12, 3, 7, 2, 10, 1, 11, 0, 14, 4, 8],
        [2, 3, 5, 7, 11, 13, 0, 1, 4, 6, 8, 9, 10, 12, 14, 15],
    ];
    specs
        .iter()
        .map(|s| Perm::from_values(s).expect("valid"))
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let ps = fixtures();
    let (a, b) = (ps[0], ps[1]);

    c.bench_function("composition (paper: 94 instructions)", |bench| {
        bench.iter(|| black_box(a).then(black_box(b)))
    });
    c.bench_function("inverse (paper: 59 instructions)", |bench| {
        bench.iter(|| black_box(a).inverse())
    });
    c.bench_function("conjugate_swap (paper: 14 instructions)", |bench| {
        bench.iter(|| black_box(a).conjugate_swap_indexed(0))
    });
    c.bench_function("hash64shift", |bench| {
        bench.iter(|| hash64shift(black_box(a.packed())))
    });

    let sym = Symmetries::new(4);
    c.bench_function("canonical (paper: ~750 instructions)", |bench| {
        bench.iter(|| sym.canonical(black_box(a)))
    });
    c.bench_function("canonicalize (with witness)", |bench| {
        bench.iter(|| sym.canonicalize(black_box(a)))
    });
    c.bench_function("class_size", |bench| {
        bench.iter(|| sym.class_size(black_box(a)))
    });
}

fn bench_table(c: &mut Criterion) {
    // A table of the size class the paper uses for k = 7 membership tests.
    let mut table = FnTable::with_capacity_bits(20);
    let sym = Symmetries::new(4);
    let mut key = Perm::identity();
    let ps = fixtures();
    for i in 0..500_000u32 {
        key = key.then(ps[(i % 4) as usize]);
        table.insert(sym.canonical(key), (i & 0x7F) as u8);
    }
    let hit = sym.canonical(key);
    let miss = Perm::from_values(&[5, 4, 3, 2, 1, 0, 6, 7, 8, 9, 10, 11, 12, 13, 15, 14])
        .expect("valid");

    c.bench_function("table probe (hit)", |bench| {
        bench.iter(|| table.get(black_box(hit)))
    });
    c.bench_function("table probe (miss)", |bench| {
        bench.iter(|| table.contains(black_box(miss)))
    });
    c.bench_function("membership test (canonicalize + probe)", |bench| {
        bench.iter(|| table.contains(sym.canonical(black_box(ps[2]))))
    });
}

criterion_group!(benches, bench_kernels, bench_table);
criterion_main!(benches);
