//! Criterion benchmarks of the breadth-first table generation
//! (paper Algorithm 2 — the "3 hours for k = 9" precompute, at bench
//! scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revsynth_bfs::SearchTables;
use revsynth_circuit::GateLib;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs/generate");
    group.sample_size(10);
    for (n, k) in [(3usize, 6usize), (4, 3), (4, 4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}-k{k}")),
            &(n, k),
            |b, &(n, k)| b.iter(|| SearchTables::generate(n, k)),
        );
    }
    group.finish();
}

fn bench_generate_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs/generate-parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| SearchTables::generate_parallel(GateLib::nct(4), 4, threads))
            },
        );
    }
    group.finish();
}

fn bench_counts(c: &mut Criterion) {
    let tables = SearchTables::generate(4, 4);
    c.bench_function("bfs/exact-counts k=4", |b| b.iter(|| tables.counts()));
}

criterion_group!(benches, bench_generate, bench_generate_parallel, bench_counts);
criterion_main!(benches);
