//! Criterion benchmarks of the synthesizer (the shape of paper Table 1).
//!
//! Fast-path syntheses (size ≤ k) are microseconds; each list-scan size
//! beyond k multiplies the time by roughly |A_i|/|A_{i−1}|. Criterion
//! keeps these cases small (k = 4) so `cargo bench` stays in seconds; the
//! full Table 1 sweep lives in the `table1` binary.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use revsynth_analysis::timing::random_function_of_size;
use revsynth_core::Synthesizer;

fn bench_fast_path(c: &mut Criterion) {
    let synth = Synthesizer::from_scratch(4, 4);
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("synthesize/fast-path");
    for size in 0..=4usize {
        let f = random_function_of_size(&synth, size, 500, &mut rng)
            .expect("every size ≤ 4 is realizable");
        group.bench_with_input(BenchmarkId::from_parameter(size), &f, |b, &f| {
            b.iter(|| synth.synthesize(black_box(f)).expect("within bound"))
        });
    }
    group.finish();
}

fn bench_meet_in_middle(c: &mut Criterion) {
    let synth = Synthesizer::from_scratch(4, 4);
    let mut rng = StdRng::seed_from_u64(11);
    let mut group = c.benchmark_group("synthesize/meet-in-middle");
    group.sample_size(20);
    for size in 5..=7usize {
        let f = random_function_of_size(&synth, size, 500, &mut rng)
            .expect("sizes 5..=7 are realizable");
        group.bench_with_input(BenchmarkId::from_parameter(size), &f, |b, &f| {
            b.iter(|| synth.synthesize(black_box(f)).expect("within bound"))
        });
    }
    group.finish();
}

fn bench_size_only(c: &mut Criterion) {
    let synth = Synthesizer::from_scratch(4, 4);
    let mut rng = StdRng::seed_from_u64(13);
    let f6 = random_function_of_size(&synth, 6, 500, &mut rng).expect("realizable");
    c.bench_function("size-only query (size 6, k = 4)", |b| {
        b.iter(|| synth.size(black_box(f6)).expect("within bound"))
    });
}

criterion_group!(benches, bench_fast_path, bench_meet_in_middle, bench_size_only);
criterion_main!(benches);
