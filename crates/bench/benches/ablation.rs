//! Criterion ablations of the paper's key implementation choices.
//!
//! * incremental plain-changes canonicalization vs recomputing all 48
//!   conjugates from scratch (the paper's 46×14-instruction walk is the
//!   point of §3.3);
//! * the symmetry-reduced BFS vs the whole-space reference BFS on 3
//!   wires (the ×48 reduction of §3.2);
//! * gate-count synthesis vs cost-weighted and depth-weighted variants on
//!   3 wires (§5 modifications).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use revsynth_bfs::{reference, SearchTables};
use revsynth_canon::Symmetries;
use revsynth_circuit::{CostModel, GateLib};
use revsynth_core::{CostSynthesizer, DepthSynthesizer};
use revsynth_perm::Perm;

fn bench_canonical_walk_vs_naive(c: &mut Criterion) {
    let sym = Symmetries::new(4);
    let f = Perm::from_values(&[6, 15, 9, 5, 13, 12, 3, 7, 2, 10, 1, 11, 0, 14, 4, 8])
        .expect("valid");
    let mut group = c.benchmark_group("ablation/canonical");
    group.bench_function("plain-changes walk (paper)", |b| {
        b.iter(|| sym.canonical(black_box(f)))
    });
    group.bench_function("naive 48 full conjugations", |b| {
        b.iter(|| sym.canonical_naive(black_box(f)))
    });
    group.finish();
}

fn bench_reduced_vs_full_space_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/bfs-n3");
    group.sample_size(10);
    group.bench_function("symmetry-reduced (×48, paper)", |b| {
        b.iter(|| SearchTables::generate(3, 8))
    });
    group.bench_function("whole-space reference", |b| {
        b.iter(|| reference::full_space_sizes(&GateLib::nct(3)))
    });
    group.finish();
}

fn bench_metric_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/metrics-n3");
    group.sample_size(10);
    group.bench_function("gate-count tables k=4", |b| {
        b.iter(|| SearchTables::generate(3, 4))
    });
    group.bench_function("quantum-cost tables budget=10", |b| {
        b.iter(|| CostSynthesizer::generate(GateLib::nct(3), CostModel::quantum(), 10))
    });
    group.bench_function("depth tables d=4", |b| {
        b.iter(|| DepthSynthesizer::generate(GateLib::nct(3), 4))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_canonical_walk_vs_naive,
    bench_reduced_vs_full_space_bfs,
    bench_metric_variants
);
criterion_main!(benches);
