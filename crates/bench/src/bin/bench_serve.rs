//! `bench_serve` — the maintained serving-layer performance report.
//!
//! Runs a real server (loopback TCP, in-process) and measures three
//! regimes over one client connection plus a concurrent fleet:
//!
//! * **cold** — every query is the first member of its equivalence
//!   class seen: a cache miss and a full meet-in-the-middle search;
//! * **warm** — further members of the already-searched classes: pure
//!   cache-hit traffic, answered by canonicalize + witness replay with
//!   **zero searches** (asserted on the server's own counters);
//! * **coalesced** — a concurrent client fleet rendezvousing on cold
//!   classes, exercising the scheduler's request-coalescing path
//!   (at least one coalesced request is asserted);
//! * **overload** — a second server with a bounded miss queue and a
//!   seeded fault plan (injected search latency) is driven into
//!   saturation: the report records how many misses were shed, how many
//!   deadlines expired before their search, and how many cache hits
//!   were served *during* the saturation window, and the counters must
//!   reconcile exactly ([`loadgen::OverloadReport::verify`]);
//! * **restart** — the warmed server snapshots its cache at graceful
//!   shutdown and a fresh process boots from the snapshot: replaying
//!   the entire cold pool against the restored server must trigger
//!   **zero** searches (asserted), so the phase measures the price of a
//!   crash + warm restart versus re-searching from cold;
//! * **obs_overhead** — warm cache-hit throughput with full request
//!   tracing and slow-query capture enabled versus instrumentation
//!   disabled, interleaved best-of-5 rounds; the instrumented path must
//!   stay within 5% of the uninstrumented one (asserted);
//! * **contention** — a [`CONTENTION_CLIENTS`]-client closed-loop fleet
//!   replays the warm pool against fresh servers running 1 and 2
//!   event-loop cores; each row records aggregate warm q/s, and on
//!   hosts with ≥ 2 hardware threads the 2-core row must reach at
//!   least `0.7 × cores` times the single-core row (asserted only
//!   there — a 1-CPU host records both rows honestly, oversubscribed).
//!
//! Correctness is asserted throughout: every response circuit must
//! compute the queried permutation, warm answers must match the cold
//! answer's gate count for the class, and the warm phase must be at
//! least 10× the cold phase's throughput (3× at `--quick` scale, where
//! the cold searches are nearly free) — the acceptance bar for the
//! class-keyed cache.
//!
//! Emits `BENCH_serve.json` (override with `--out`). Flags: `--k`
//! (default `REVSYNTH_K` or 5), `--cold` (classes, default 40),
//! `--warm` (members per class, default 10), `--seed`, `--out`,
//! `--quick` (smoke scale: k = 3, 10 classes × 5 members).
//!
//! Run with `cargo run --release -p revsynth-bench --bin bench_serve`.

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use revsynth_analysis::{Rng, SplitMix64};
use revsynth_bench::{arg_or, env_k};
use revsynth_circuit::{Circuit, GateLib};
use revsynth_core::Synthesizer;
use revsynth_perm::{Perm, WirePerm};
use revsynth_serve::{loadgen, Client, FaultPlan, ServeConfig, ServeStats, Server};

struct Phase {
    queries: usize,
    seconds: f64,
}

impl Phase {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.seconds
    }
    fn json(&self) -> String {
        format!(
            "{{\"queries\": {}, \"seconds\": {:.6}, \"queries_per_sec\": {:.1}}}",
            self.queries,
            self.seconds,
            self.qps()
        )
    }
}

/// Fleet size for the contention phase: enough concurrent closed-loop
/// clients to keep every event loop busy at either core count.
const CONTENTION_CLIENTS: usize = 4;

/// One contention row: a fresh `cores`-loop server over the shared
/// suite, primed with the cold pool, then [`CONTENTION_CLIENTS`]
/// concurrent clients each replaying the warm member set once.
/// Returns the aggregate phase (all clients' queries over the
/// wall-clock of the slowest).
fn contention_phase(
    suite: &Arc<revsynth_core::SynthesisSuite>,
    cores: usize,
    pool: &[Perm],
    warm_queries: &[(Perm, usize)],
) -> Phase {
    let config = ServeConfig::new().cores(cores);
    let server = Server::bind(Arc::clone(suite), config).expect("bind contention server");
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut primer = Client::connect(addr).expect("connect primer");
    for &f in pool {
        primer.query(f).expect("prime contention cache");
    }
    let t = Instant::now();
    std::thread::scope(|scope| {
        let threads: Vec<_> = (0..CONTENTION_CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect contention client");
                    for &(m, _) in warm_queries {
                        let circuit = client.query(m).expect("contention warm query");
                        assert_eq!(circuit.perm(4), m);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("contention client must not panic");
        }
    });
    let phase = Phase {
        queries: CONTENTION_CLIENTS * warm_queries.len(),
        seconds: t.elapsed().as_secs_f64(),
    };
    let stats = primer.stats().expect("contention stats");
    assert_eq!(
        stats.searches,
        pool.len() as u64,
        "contention traffic is pure warm hits"
    );
    primer.shutdown_server().expect("contention shutdown");
    handle.join().expect("contention server exits cleanly");
    phase
}

/// Cold query pool: functions of size strictly greater than `k`, one
/// per equivalence class, so every cold query pays a genuine
/// meet-in-the-middle search.
fn cold_pool(synth: &Synthesizer, count: usize, seed: u64) -> Vec<Perm> {
    let lib = GateLib::nct(4);
    let gates: Vec<_> = lib.iter().map(|(_, g, _)| g).collect();
    let k = synth.tables().k();
    let sym = synth.tables().sym();
    let mut rng = SplitMix64::new(seed);
    let mut reps = std::collections::HashSet::new();
    let mut pool = Vec::with_capacity(count);
    while pool.len() < count {
        let len = k + 1 + (rng.next_u64() as usize) % k;
        let f = Circuit::from_gates((0..len).map(|_| gates[rng.next_u64() as usize % gates.len()]))
            .perm(4);
        // Size ≤ k would be answered by the fast path; skip those, and
        // keep one function per class.
        if synth.tables().size_of(f).is_some() {
            continue;
        }
        if reps.insert(sym.canonical(f)) {
            pool.push(f);
        }
    }
    pool
}

/// Distinct class members of `f` other than `f` itself (relabelings
/// and inverses), up to `count`.
fn warm_members(f: Perm, count: usize) -> Vec<Perm> {
    let mut members: Vec<Perm> = WirePerm::all()
        .into_iter()
        .flat_map(|sigma| {
            let m = f.conjugate_by_wires(sigma);
            [m, m.inverse()]
        })
        .filter(|&m| m != f)
        .collect();
    members.sort_unstable();
    members.dedup();
    members.truncate(count);
    members
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let k = arg_or("--k", env_k(if quick { 3 } else { 5 }));
    let cold_classes: usize = arg_or("--cold", if quick { 10 } else { 40 });
    let warm_per_class: usize = arg_or("--warm", if quick { 5 } else { 10 });
    let seed: u64 = arg_or("--seed", 2010);
    let out: String = arg_or("--out", "BENCH_serve.json".to_owned());
    let speedup_bar = if quick { 3.0 } else { 10.0 };

    eprintln!("generating tables (n = 4, k = {k}) ...");
    let t0 = Instant::now();
    // Build the gate tables once and hand them to the suite (its
    // quantum/depth siblings stay lazy and are never built here).
    let suite = Arc::new(revsynth_core::SynthesisSuite::new(
        Synthesizer::from_scratch(4, k),
        revsynth_core::SuiteConfig::default(),
    ));
    let synth = suite.gates();
    let gen_seconds = t0.elapsed().as_secs_f64();
    eprintln!(
        "  {} classes in {gen_seconds:.2}s",
        synth.tables().num_representatives()
    );

    // The warmed server persists its cache at graceful shutdown; the
    // restart phase boots a second server from the same snapshot.
    let snapshot_path =
        std::env::temp_dir().join(format!("bench-serve-snapshot-{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&snapshot_path);
    let warm_config = ServeConfig {
        snapshot: Some(snapshot_path.clone()),
        ..ServeConfig::default()
    };
    let server = Server::bind(Arc::clone(&suite), &warm_config).expect("bind loopback server");
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = Client::connect(addr).expect("connect");

    // ---- cold: one miss per class ------------------------------------
    let pool = cold_pool(synth, cold_classes, seed);
    let mut cold_answers = Vec::with_capacity(pool.len());
    let t = Instant::now();
    for &f in &pool {
        let circuit = client.query(f).expect("cold query");
        assert_eq!(circuit.perm(4), f, "cold answer must compute f");
        cold_answers.push(circuit.len());
    }
    let cold = Phase {
        queries: pool.len(),
        seconds: t.elapsed().as_secs_f64(),
    };
    let after_cold = client.stats().expect("stats");
    assert_eq!(
        after_cold.searches, cold_classes as u64,
        "one search per cold class"
    );
    eprintln!(
        "cold   : {} classes in {:.3}s ({:.1} q/s)",
        cold.queries,
        cold.seconds,
        cold.qps()
    );

    // ---- warm: replay-only traffic, searches must stay flat ----------
    let warm_queries: Vec<(Perm, usize)> = pool
        .iter()
        .zip(&cold_answers)
        .flat_map(|(&f, &size)| {
            warm_members(f, warm_per_class)
                .into_iter()
                .map(move |m| (m, size))
        })
        .collect();
    let t = Instant::now();
    for &(m, size) in &warm_queries {
        let circuit = client.query(m).expect("warm query");
        assert_eq!(circuit.perm(4), m, "warm answer must compute the member");
        assert_eq!(circuit.len(), size, "replay is cost-preserving");
    }
    let warm = Phase {
        queries: warm_queries.len(),
        seconds: t.elapsed().as_secs_f64(),
    };
    let after_warm = client.stats().expect("stats");
    assert_eq!(
        after_warm.searches, after_cold.searches,
        "warm traffic must trigger ZERO searches"
    );
    assert_eq!(
        after_warm.cache_hits,
        after_cold.cache_hits + warm.queries as u64,
        "every warm query is a cache hit"
    );
    let speedup = warm.qps() / cold.qps();
    eprintln!(
        "warm   : {} members in {:.3}s ({:.1} q/s, {speedup:.1}x cold)",
        warm.queries,
        warm.seconds,
        warm.qps()
    );
    assert!(
        speedup >= speedup_bar,
        "warm path must be ≥ {speedup_bar}x cold throughput, got {speedup:.2}x"
    );

    // ---- coalesced: concurrent fleet on fresh classes ----------------
    let fleet = loadgen::LoadgenConfig {
        clients: 4,
        requests_per_client: if quick { 10 } else { 50 },
        pool: 4,
        max_len: 2 * k,
        seed: seed ^ 0xC0A1E5CE,
    };
    let t = Instant::now();
    let report = loadgen::run(addr, 4, &fleet).expect("loadgen fleet");
    let fleet_seconds = t.elapsed().as_secs_f64();
    assert_eq!(report.errors, 0, "fleet queries must all verify");
    let final_stats = report.stats;
    let coalesced = report.coalesced;
    eprintln!(
        "fleet  : {} requests in {fleet_seconds:.3}s ({:.1} q/s), {coalesced} coalesced",
        report.successes,
        report.throughput()
    );
    assert!(
        coalesced >= 1,
        "concurrent same-class misses must coalesce at least once"
    );

    client.shutdown_server().expect("shutdown");
    let closing = handle.join().expect("server exits cleanly");
    assert_eq!(closing.errors, 0);
    assert!(
        closing.snapshot_writes >= 1,
        "graceful shutdown must snapshot the cache"
    );

    // ---- restart: boot from the snapshot, replay the cold pool -------
    let restart_server =
        Server::bind(Arc::clone(&suite), &warm_config).expect("bind restarted server");
    let restored = restart_server.restore_summary().restored;
    assert!(
        restored >= cold_classes as u64,
        "the snapshot must cover at least every cold class, restored {restored}"
    );
    let restart_addr = restart_server.local_addr();
    let restart_handle = restart_server.spawn();
    let mut restart_client = Client::connect(restart_addr).expect("connect restarted server");
    let t = Instant::now();
    for (&f, &size) in pool.iter().zip(&cold_answers) {
        let circuit = restart_client.query(f).expect("restored query");
        assert_eq!(circuit.perm(4), f, "restored answer must compute f");
        assert_eq!(circuit.len(), size, "restored answer is still optimal");
    }
    let restart = Phase {
        queries: pool.len(),
        seconds: t.elapsed().as_secs_f64(),
    };
    let after_restart = restart_client.stats().expect("stats");
    assert_eq!(
        after_restart.searches, 0,
        "a warm restart must re-search NOTHING"
    );
    assert_eq!(after_restart.restored, restored);
    let restart_speedup = restart.qps() / cold.qps();
    eprintln!(
        "restart: {restored} classes restored; {} cold-pool queries in {:.3}s \
         ({:.1} q/s, {restart_speedup:.1}x cold, zero searches)",
        restart.queries,
        restart.seconds,
        restart.qps()
    );
    restart_client.shutdown_server().expect("restart shutdown");
    restart_handle
        .join()
        .expect("restarted server exits cleanly");
    let _ = std::fs::remove_file(&snapshot_path);

    // ---- overload: bounded admission under injected latency ----------
    // A dedicated server (fresh cache) with a queue bound of 1 and a
    // deterministic 200 ms per-search delay; the standard overload
    // scenario must shed, keep serving cache hits, and reconcile.
    let plan =
        Arc::new(FaultPlan::new(seed ^ 0x0BAD).with_search_delay(Duration::from_millis(200)));
    let chaos_config = ServeConfig {
        max_queue: 1,
        retry_after_ms: 20,
        faults: Some(Arc::clone(&plan)),
        ..ServeConfig::default()
    };
    let chaos_server = Server::bind(Arc::clone(&suite), &chaos_config).expect("bind chaos server");
    let chaos_addr = chaos_server.local_addr();
    let chaos_handle = chaos_server.spawn();
    let overload_config = loadgen::OverloadConfig {
        max_len: 2 * k.min(3),
        seed: seed ^ 0x10AD,
        ..loadgen::OverloadConfig::default()
    };
    let overload =
        loadgen::run_overload(chaos_addr, 4, &overload_config).expect("overload scenario");
    overload
        .verify(true)
        .expect("overload counters must reconcile exactly");
    eprintln!(
        "overload: {} shed, {} expired, {} cold served, {} hits during saturation \
         ({:.3}s, recovered: {})",
        overload.overloaded,
        overload.expired,
        overload.cold_successes,
        overload.warm_hits,
        overload.seconds,
        overload.recovered
    );
    Client::connect(chaos_addr)
        .expect("connect chaos server")
        .shutdown_server()
        .expect("chaos shutdown");
    let chaos_closing = chaos_handle.join().expect("chaos server exits cleanly");
    // Expired deadlines are answered with error frames, so they are the
    // only errors the chaos server may report: sheds and hits are not.
    assert_eq!(
        chaos_closing.errors, chaos_closing.expired,
        "every chaos-server error is an expired deadline"
    );

    // ---- obs_overhead: tracing on vs instrumentation off -------------
    // Two fresh servers over the same suite: one tracing every request
    // (and capturing all of them as "slow"), one with per-request
    // instrumentation off entirely. Warm cache-hit throughput — the
    // regime where fixed per-request cost is the largest relative
    // share — is measured in interleaved rounds, best-of-5 per config.
    let obs_on = ServeConfig {
        slow_query_us: 1,
        ..ServeConfig::default()
    };
    let obs_off = ServeConfig {
        instrumentation: false,
        ..ServeConfig::default()
    };
    let on_server = Server::bind(Arc::clone(&suite), &obs_on).expect("bind instrumented server");
    let off_server =
        Server::bind(Arc::clone(&suite), &obs_off).expect("bind uninstrumented server");
    let on_addr = on_server.local_addr();
    let off_addr = off_server.local_addr();
    let on_handle = on_server.spawn();
    let off_handle = off_server.spawn();
    let mut on_client = Client::connect(on_addr).expect("connect instrumented");
    let mut off_client = Client::connect(off_addr).expect("connect uninstrumented");
    for &f in &pool {
        on_client.query(f).expect("prime instrumented");
        off_client.query(f).expect("prime uninstrumented");
    }
    // Repeat the warm set until each round is long enough to time
    // (matters at --quick scale, where one pass is ~50 queries).
    let reps = (2000 / warm_queries.len()).max(1);
    let mut enabled_qps = 0f64;
    let mut disabled_qps = 0f64;
    for _ in 0..5 {
        for (client, best) in [
            (&mut on_client, &mut enabled_qps),
            (&mut off_client, &mut disabled_qps),
        ] {
            let t = Instant::now();
            for _ in 0..reps {
                for &(m, _) in &warm_queries {
                    client.query(m).expect("overhead warm query");
                }
            }
            let qps = (reps * warm_queries.len()) as f64 / t.elapsed().as_secs_f64();
            *best = best.max(qps);
        }
    }
    let overhead_pct = ((disabled_qps - enabled_qps) / disabled_qps * 100.0).max(0.0);
    eprintln!(
        "obs    : {enabled_qps:.1} q/s instrumented vs {disabled_qps:.1} q/s off \
         ({overhead_pct:.2}% overhead)"
    );
    assert!(
        overhead_pct <= 5.0,
        "full instrumentation must cost ≤ 5% warm throughput, measured {overhead_pct:.2}%"
    );
    on_client.shutdown_server().expect("instrumented shutdown");
    off_client
        .shutdown_server()
        .expect("uninstrumented shutdown");
    on_handle.join().expect("instrumented server exits cleanly");
    off_handle
        .join()
        .expect("uninstrumented server exits cleanly");

    // ---- contention: aggregate warm q/s vs event-loop cores ----------
    // One row per core count (1, then 2 if this is not the largest
    // sensible config): a fresh server with that many pinned event
    // loops, primed with the cold pool, then a closed-loop fleet of 4
    // clients hammering warm members concurrently. On multi-CPU
    // hardware the 2-core row must reach ≥ 0.7×cores the single-core
    // aggregate; on a 1-CPU runner both rows are recorded honestly and
    // the scaling bar is not asserted (the loops are oversubscribed).
    let hw_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let contention: Vec<(usize, Phase)> = [1usize, 2]
        .into_iter()
        .map(|cores| (cores, contention_phase(&suite, cores, &pool, &warm_queries)))
        .collect();
    for (cores, phase) in &contention {
        eprintln!(
            "contend: {} cores, {} clients x warm pool in {:.3}s ({:.1} q/s aggregate)",
            cores,
            CONTENTION_CLIENTS,
            phase.seconds,
            phase.qps()
        );
    }
    if hw_cores >= 2 {
        let single = contention[0].1.qps();
        let multi = contention[1].1.qps();
        assert!(
            multi >= 0.7 * 2.0 * single,
            "2-core aggregate must scale ≥ 0.7x cores: {multi:.1} vs {single:.1} single-core"
        );
    }

    let json = render_json(
        k,
        quick,
        seed,
        gen_seconds,
        &cold,
        &warm,
        speedup,
        report.successes,
        fleet_seconds,
        &overload,
        &restart,
        restored,
        restart_speedup,
        (enabled_qps, disabled_qps, overhead_pct),
        &contention,
        &final_stats,
    );
    std::fs::File::create(&out)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write report");
    println!("{json}");
    eprintln!("wrote {out}");
}

#[allow(clippy::too_many_arguments)] // flat report assembly
fn render_json(
    k: usize,
    quick: bool,
    seed: u64,
    gen_seconds: f64,
    cold: &Phase,
    warm: &Phase,
    speedup: f64,
    fleet_requests: u64,
    fleet_seconds: f64,
    overload: &loadgen::OverloadReport,
    restart: &Phase,
    restored: u64,
    restart_speedup: f64,
    obs: (f64, f64, f64),
    contention: &[(usize, Phase)],
    stats: &ServeStats,
) -> String {
    let (enabled_qps, disabled_qps, overhead_pct) = obs;
    let contention_rows = contention
        .iter()
        .map(|(cores, phase)| {
            format!(
                "{{\"cores\": {cores}, \"clients\": {CONTENTION_CLIENTS}, \
                 \"queries\": {}, \"seconds\": {:.6}, \"queries_per_sec\": {:.1}}}",
                phase.queries,
                phase.seconds,
                phase.qps()
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"bench\": \"serve\",\n  \"config\": {{\"n\": 4, \"k\": {k}, \
         \"seed\": {seed}, \"quick\": {quick}, \"workers\": 1, \
         \"hardware_threads\": {}}},\n  \
         \"bfs_generate_seconds\": {gen_seconds:.3},\n  \
         \"cold\": {},\n  \"warm\": {},\n  \
         \"speedup_warm_vs_cold\": {speedup:.1},\n  \
         \"fleet\": {{\"requests\": {fleet_requests}, \"seconds\": {fleet_seconds:.6}, \
         \"queries_per_sec\": {:.1}}},\n  \
         \"overload\": {{\"shed\": {}, \"expired\": {}, \"cold_served\": {}, \
         \"hits_served_during_saturation\": {}, \"injected_failures\": {}, \
         \"recovered\": {}, \"seconds\": {:.6}}},\n  \
         \"restart\": {{\"restored_classes\": {restored}, \"queries\": {}, \
         \"seconds\": {:.6}, \"queries_per_sec\": {:.1}, \"searches\": 0, \
         \"speedup_vs_cold\": {restart_speedup:.1}}},\n  \
         \"obs_overhead\": {{\"enabled_qps\": {enabled_qps:.1}, \
         \"disabled_qps\": {disabled_qps:.1}, \
         \"overhead_pct\": {overhead_pct:.2}}},\n  \
         \"contention\": [{contention_rows}],\n  \
         \"final_stats\": {}\n}}\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        cold.json(),
        warm.json(),
        fleet_requests as f64 / fleet_seconds,
        overload.overloaded,
        overload.expired,
        overload.cold_successes,
        overload.warm_hits,
        overload.injected_failures,
        overload.recovered,
        overload.seconds,
        restart.queries,
        restart.seconds,
        restart.qps(),
        stats.to_json()
    )
}
