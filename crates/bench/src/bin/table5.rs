//! Regenerates paper Table 5: optimal sizes of all 322,560 linear
//! reversible functions.
//!
//! ```text
//! cargo run --release -p revsynth-bench --bin table5 -- [--k 6] [--full true]
//! ```
//!
//! Two independent computations:
//!
//! 1. breadth-first search of the affine group over NOT/CNOT circuits
//!    (the paper's "under two seconds on CS2" method), and
//! 2. (with `--full true`, the default) the general synthesizer over the
//!    full NOT/CNOT/TOF/TOF4 library, deduplicated by equivalence class —
//!    confirming Toffoli gates never help a linear function.
//!
//! Both must equal the published table row for row.

use revsynth_bench::{arg_or, env_k, load_or_generate};
use revsynth_core::Synthesizer;
use revsynth_linear::{linear_only_distribution, optimal_distribution, PAPER_TABLE5};

fn main() {
    let k = arg_or("--k", env_k(6));
    let full: bool = arg_or("--full", true);

    eprintln!("BFS over the affine group (NOT/CNOT only) ...");
    let start = std::time::Instant::now();
    let linear_hist = linear_only_distribution();
    let linear_time = start.elapsed();

    let full_hist = if full {
        let synth = Synthesizer::new(load_or_generate(4, k));
        eprintln!("full-library synthesis of one representative per class ...");
        let start = std::time::Instant::now();
        let hist = optimal_distribution(&synth).expect("k ≥ 5 reaches size 10");
        eprintln!("  done in {:.2?}", start.elapsed());
        Some(hist)
    } else {
        None
    };

    println!("# Table 5 — optimal sizes of all 4-bit linear reversible functions");
    println!(
        "{:>4} {:>10} {:>12} {:>10}  match",
        "size", "NOT/CNOT", "full lib", "paper"
    );
    let mut all = true;
    for (s, &paper) in PAPER_TABLE5.iter().enumerate() {
        let lin = linear_hist.get(s).copied().unwrap_or(0);
        let ful = full_hist.as_ref().map(|h| h.get(s).copied().unwrap_or(0));
        let ok = lin == paper && ful.is_none_or(|f| f == paper);
        all &= ok;
        println!(
            "{s:>4} {lin:>10} {:>12} {paper:>10}  {}",
            ful.map_or("-".into(), |f| f.to_string()),
            if ok { "yes" } else { "NO" }
        );
    }
    println!(
        "\nall rows match: {all}; affine BFS took {linear_time:.2?} \
         (paper: under two seconds on a 2008 laptop)"
    );
}
