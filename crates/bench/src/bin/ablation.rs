//! Ablation studies for the design choices called out in DESIGN.md and
//! the paper's §5 variations.
//!
//! ```text
//! cargo run --release -p revsynth-bench --bin ablation -- [--k 5]
//! ```
//!
//! Three studies:
//!
//! 1. **Restricted architecture** (§5): optimal sizes under the
//!    linear-nearest-neighbour library vs the fully-connected one, on the
//!    Table 6 benchmarks — how much does connectivity cost? (LNN is not
//!    relabeling-closed, so its column is optimal *up to input/output
//!    relabeling* — the paper's §5 restricted-architecture regime.)
//! 2. **Weighted costs** (§5): gate-count-optimal vs quantum-cost-optimal
//!    circuits over all 3-wire functions of size ≤ 6 — how often does the
//!    cheapest circuit differ from the shortest?
//! 3. **Depth** (§5): the exhaustive 3-wire depth census vs the size
//!    census, plus depth-optimal figures for 4-wire functions of depth ≤ 3.

use revsynth_bench::{arg_or, load_or_generate};
use revsynth_circuit::{CostModel, GateLib};
use revsynth_core::{CostSynthesizer, DepthSynthesizer, Synthesizer};
use revsynth_specs::benchmarks;

fn main() {
    let k = arg_or("--k", 5usize);

    // ---- 1. Linear nearest-neighbour connectivity ----
    println!(
        "# Ablation 1 — nearest-neighbour architecture (k = {k}, sizes ≤ {})",
        2 * k
    );
    let full = Synthesizer::new(load_or_generate(4, k));
    eprintln!("generating nearest-neighbour tables (20 gates, k = {k}) ...");
    let lnn = Synthesizer::new(revsynth_bfs::SearchTables::generate_with(
        GateLib::nearest_neighbor(4),
        k,
    ));
    println!(
        "{:<10} {:>9} {:>9} {:>10}   (LNN = up to I/O relabeling)",
        "name", "full SOC", "LNN size", "inflation"
    );
    for b in benchmarks() {
        let full_size = (b.optimal_size <= full.max_size())
            .then(|| full.size(b.perm()).ok())
            .flatten();
        let lnn_size = lnn.size(b.perm()).ok();
        println!(
            "{:<10} {:>9} {:>9} {:>10}",
            b.name,
            full_size.map_or("-".into(), |s| s.to_string()),
            lnn_size.map_or("-".into(), |s| s.to_string()),
            match (full_size, lnn_size) {
                (Some(f), Some(l)) => format!("+{}", l - f),
                _ => "-".into(),
            }
        );
    }

    // ---- 2. Gate count vs quantum cost ----
    println!("\n# Ablation 2 — gate-count optimum vs quantum-cost optimum (n = 3)");
    let model = CostModel::quantum();
    let cost_synth = CostSynthesizer::generate(GateLib::nct(3), model, 14);
    let gate_synth = Synthesizer::from_scratch(3, 3);
    let (mut classes, mut cheaper, mut cost_sum_gate, mut cost_sum_cheap) =
        (0u64, 0u64, 0u64, 0u64);
    // Walk every class the gate synthesizer can reach (size ≤ 6).
    for level in 0..=gate_synth.tables().k() {
        for &rep in gate_synth.tables().level(level) {
            let Ok(small) = gate_synth.synthesize(rep) else {
                continue;
            };
            let Some(cheap) = cost_synth.synthesize(rep) else {
                continue;
            };
            classes += 1;
            cost_sum_gate += small.cost(&model);
            cost_sum_cheap += cheap.cost(&model);
            if cheap.cost(&model) < small.cost(&model) {
                cheaper += 1;
            }
        }
    }
    println!(
        "classes compared: {classes}; cost-optimal strictly cheaper on {cheaper} \
         ({:.1}%)",
        100.0 * cheaper as f64 / classes as f64
    );
    println!(
        "mean quantum cost: gate-count-optimal {:.2}, cost-optimal {:.2}",
        cost_sum_gate as f64 / classes as f64,
        cost_sum_cheap as f64 / classes as f64
    );

    // ---- 3. Depth vs size ----
    println!("\n# Ablation 3 — depth census (layer alphabet) vs size census");
    let depth3 = DepthSynthesizer::generate(GateLib::nct(3), 9);
    let size3 = Synthesizer::from_scratch(3, 4);
    println!(
        "n = 3 exhaustive: {:>5} {:>12} {:>12}",
        "d", "classes", "functions"
    );
    for (d, classes, functions) in depth3.counts() {
        println!("                  {d:>5} {classes:>12} {functions:>12}");
    }
    let l_depth = depth3.counts().last().map(|&(d, _, _)| d).unwrap_or(0);
    println!("maximal 3-wire depth: {l_depth} (vs maximal size L(3) = 8)");
    // Depth never exceeds size — sample check across the whole space.
    let mut checked = 0u64;
    for level in 0..=size3.tables().k() {
        for &rep in size3.tables().level(level).iter().step_by(13) {
            let s = size3.size(rep).expect("within tables");
            let d = depth3.depth_of(rep).expect("depth census is exhaustive");
            assert!(d <= s, "depth {d} > size {s}");
            checked += 1;
        }
    }
    println!("checked depth ≤ size on {checked} class representatives");

    let depth4 = DepthSynthesizer::generate(GateLib::nct(4), 3);
    println!(
        "\nn = 4 to depth 3: {:>5} {:>12} {:>12}",
        "d", "classes", "functions"
    );
    for (d, classes, functions) in depth4.counts() {
        println!("                  {d:>5} {classes:>12} {functions:>12}");
    }
}
