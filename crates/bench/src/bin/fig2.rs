//! Regenerates Figure 2: suboptimal vs optimal 1-bit full adder.
//!
//! ```text
//! cargo run --release -p revsynth-bench --bin fig2
//! ```

use revsynth_bench::load_or_generate;
use revsynth_core::Synthesizer;
use revsynth_specs::adder;

fn main() {
    let synth = Synthesizer::new(load_or_generate(4, 3));

    let sub = adder::suboptimal();
    let optimized = synth
        .synthesize(sub.perm(4))
        .expect("adder sizes are well within k = 3 tables");
    let rd32 = synth
        .synthesize(adder::rd32_spec())
        .expect("rd32 has size 4");

    println!("# Figure 2 — 1-bit full adder");
    println!("(a) suboptimal: {:>2} gates  {}", sub.len(), sub);
    println!(
        "    optimized : {:>2} gates  {}",
        optimized.len(),
        optimized
    );
    println!(
        "(b) rd32      : {:>2} gates  {}  (proved optimal)",
        rd32.len(),
        rd32
    );
    assert_eq!(optimized.perm(4), sub.perm(4));
    assert_eq!(rd32.len(), 4);
    println!("\nboth optimal circuits verified by simulation");
}
