//! Regenerates §4.5: time-boxed search for a hard permutation.
//!
//! ```text
//! cargo run --release -p revsynth-bench --bin hard_search -- [--seconds 30] [--k 6] [--seed 45]
//! ```
//!
//! The paper's 12-hour run with k = 9 tables found no permutation above
//! 14 gates. This regenerator applies the identical strategy (boundary-
//! gate extension of the hardest pool) inside the given budget; any
//! candidate beyond the k-table bound is reported loudly — that is the
//! event the paper's search was designed to detect.

use std::time::Duration;

use revsynth_analysis::HardSearch;
use revsynth_bench::{arg_or, env_k, load_or_generate};
use revsynth_core::Synthesizer;

fn main() {
    let seconds: u64 = arg_or("--seconds", 30);
    let k = arg_or("--k", env_k(6));
    let seed: u64 = arg_or("--seed", 45);

    let synth = Synthesizer::new(load_or_generate(4, k));
    eprintln!(
        "searching for {seconds}s (sizes ≤ {} measurable at k = {k}) ...",
        synth.max_size()
    );
    let outcome = HardSearch {
        budget: Duration::from_secs(seconds),
        seed,
        pool: 16,
        restart_percent: 20,
    }
    .run(&synth);

    println!("# §4.5 — hard permutation search");
    println!("hardest found : size {} ", outcome.max_size);
    println!("witness       : {}", outcome.witness);
    println!("measured      : {} candidates", outcome.examined);
    println!(
        "beyond bound  : {} candidates exceeded size {}",
        outcome.unresolved,
        synth.max_size()
    );
    println!(
        "\npaper result: no permutation above 14 gates in 12 hours at k = 9 \
         (L(4) conjectured ≤ 15)"
    );
}
