//! Regenerates paper Table 3: optimal-size distribution of uniform random
//! 4-bit permutations.
//!
//! ```text
//! cargo run --release -p revsynth-bench --bin table3 -- [--samples 60] [--k 7] [--seed 2010]
//! ```
//!
//! The paper's run: 10,000,000 samples, k = 9, 29 hours, weighted average
//! 11.94 gates, sizes 5..14 observed. This regenerator runs the identical
//! experiment with a smaller sample (documented substitution, DESIGN.md
//! §5); the distribution shape (peak at 12, ~3:1 ratio of 12s to 11s,
//! rare ≤ 9 and 14) and the weighted average are directly comparable.

use revsynth_analysis::sample_distribution;
use revsynth_bench::{arg_or, env_k, load_or_generate};
use revsynth_core::Synthesizer;

/// Paper Table 3 (out of 10M samples).
const PAPER: [(usize, u64); 10] = [
    (5, 3),
    (6, 24),
    (7, 455),
    (8, 5_269),
    (9, 50_861),
    (10, 392_108),
    (11, 2_051_507),
    (12, 5_110_943),
    (13, 2_371_039),
    (14, 17_191),
];

fn main() {
    let samples: usize = arg_or("--samples", 60);
    let k = arg_or("--k", env_k(7));
    let seed: u64 = arg_or("--seed", 2010);

    let synth = Synthesizer::new(load_or_generate(4, k));
    eprintln!("synthesizing {samples} random permutations (seed {seed}) ...");
    let start = std::time::Instant::now();
    let dist =
        sample_distribution(&synth, samples, seed).expect("domain is correct by construction");
    let elapsed = start.elapsed();

    println!("# Table 3 — sizes of {samples} random 4-bit permutations (paper: 10,000,000)");
    println!(
        "{:>4} {:>10} {:>10} {:>14} {:>10}",
        "size", "count", "fraction", "paper count", "paper frac"
    );
    for (size, count) in dist.iter() {
        let paper = PAPER
            .iter()
            .find(|&&(s, _)| s == size)
            .map_or(0, |&(_, c)| c);
        println!(
            "{size:>4} {count:>10} {:>10.4} {paper:>14} {:>10.4}",
            dist.fraction(size),
            paper as f64 / 1e7
        );
    }
    if dist.unresolved() > 0 {
        println!(
            ">{:>3} {:>10}  (beyond the k = {k} search bound of {} gates)",
            synth.max_size(),
            dist.unresolved(),
            synth.max_size()
        );
    }
    println!(
        "\nweighted average: {:.2} gates (paper: 11.94); wall time {elapsed:.2?} \
         ({:.3} s/sample)",
        dist.weighted_average(),
        elapsed.as_secs_f64() / samples as f64
    );
}
