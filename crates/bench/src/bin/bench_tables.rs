//! `bench_tables` — the maintained deep-table generation trajectory.
//!
//! Grows the n-wire gate-count tables **level by level** through
//! [`SearchTables::extend_to`] (the same extension path the
//! checkpoint/resume subsystem uses), timing each level and checking the
//! per-level class counts against the paper's published sequence
//! (Golubitsky/Falconer/Maslov, DAC 2010 — reduced-function counts
//! 1, 4, 33, 425, 6538, 101983, … for n = 4). Any count divergence
//! panics, so CI runs of this binary are a correctness gate as well as a
//! benchmark.
//!
//! Emits `BENCH_tables.json` (override with `--out`) including the
//! store's FNV-1a file digest — the committed baseline the `tables-deep`
//! CI job pins its generate / kill / resume runs against. The digest is
//! machine-independent and identical for every `--threads`/`--shards`/
//! `--max-mem` setting (see the `revsynth_bfs::shard` docs).
//!
//! Flags: `--n` (default 4), `--k` (default 7, the 1-CPU-feasible CI
//! depth; `--quick` drops it to 5), `--threads`, `--shards`,
//! `--max-mem <BYTES>`, `--store <FILE>` (keep the generated store
//! instead of a scratch file), `--out <FILE>`, `--skip-single-shot`
//! (drop the duplicate one-index-build generation — the level-by-level
//! counts are still asserted; use this for k ≥ 8 where a second full
//! build would double a multi-hour run).
//!
//! Besides the v4 checkpoint store the run also writes the same tables
//! in store format v5 (zero-copy mmap layout) and times a cold
//! `SearchTables::load` of it; the report gains `save_v5_seconds`,
//! `v5_store_bytes`, `v5_store_digest`, `load_ms` (integer milliseconds
//! for the mmap load) and `format` (the store version `load_ms` was
//! measured against). `store_digest` stays the v4 digest the CI job
//! pins.
//!
//! Run with `cargo run --release -p revsynth-bench --bin bench_tables`.

use std::io::Write as _;
use std::time::Instant;

use revsynth_bench::arg_or;
use revsynth_bfs::{file_digest, GenOptions, SearchTables};
use revsynth_circuit::{CostModel, GateLib};

/// Published per-level reduced (class) counts for the 4-wire NCT
/// library, sizes 0..=9 (DAC 2010; the same sequence the search tables
/// pre-size against).
const PAPER_N4_REDUCED: [u64; 10] = [
    1,
    4,
    33,
    425,
    6_538,
    101_983,
    1_482_686,
    19_466_575,
    225_242_556,
    2_208_511_226,
];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let skip_single_shot = std::env::args().any(|a| a == "--skip-single-shot");
    let n: usize = arg_or("--n", 4);
    let k: u64 = arg_or("--k", if quick { 5 } else { 7 });
    let threads: usize = arg_or("--threads", 1);
    let shards: usize = arg_or("--shards", 8);
    let max_mem: usize = arg_or("--max-mem", 0);
    let out_path: String = arg_or("--out", "BENCH_tables.json".to_owned());
    let store_path: String = arg_or("--store", String::new());

    let opts = GenOptions::new()
        .threads(threads)
        .shards(shards)
        .max_mem_bytes((max_mem > 0).then_some(max_mem));

    eprintln!("[1/4] growing n = {n} tables level by level to k = {k} ...");
    let start_all = Instant::now();
    let mut tables = SearchTables::generate_opts(GateLib::nct(n), 0, &opts);
    let mut level_seconds: Vec<f64> = vec![0.0];
    for target in 1..=k {
        let start = Instant::now();
        tables.extend_to(target, &opts);
        let seconds = start.elapsed().as_secs_f64();
        level_seconds.push(seconds);
        let classes = tables.level(target as usize).len();
        eprintln!("      level {target}: {classes} classes in {seconds:.3}s");
        if n == 4 {
            let expected = PAPER_N4_REDUCED
                .get(target as usize)
                .copied()
                .expect("k ≤ 9 for the published sequence");
            assert_eq!(
                classes as u64, expected,
                "level {target} class count diverged from the paper's sequence"
            );
        }
    }
    let total_seconds = start_all.elapsed().as_secs_f64();

    // Growing one level at a time rebuilds the invariant index after
    // every level (extend_to's contract), so the per-level seconds above
    // slightly overstate raw expansion cost; a single extension pays one
    // rebuild. Measure that too, and check the two builds agree.
    let single_shot_seconds = if skip_single_shot {
        eprintln!("[2/4] single-shot generation skipped (--skip-single-shot)");
        None
    } else {
        eprintln!("[2/4] single-shot generation to k = {k} (one index build) ...");
        let start = Instant::now();
        let single = SearchTables::generate_opts(GateLib::nct(n), k as usize, &opts);
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(
            single.num_representatives(),
            tables.num_representatives(),
            "single-shot and level-by-level builds must agree"
        );
        drop(single);
        eprintln!("      {seconds:.3}s single-shot vs {total_seconds:.3}s level-by-level");
        Some(seconds)
    };

    eprintln!("[3/4] writing + digesting the checkpointable store ...");
    let scratch = store_path.is_empty();
    let store_file = if scratch {
        std::env::temp_dir()
            .join(format!(
                "revsynth-bench-tables-{}.rvtab",
                std::process::id()
            ))
            .to_string_lossy()
            .into_owned()
    } else {
        store_path
    };
    let start = Instant::now();
    tables.save(&store_file).expect("write store");
    let save_seconds = start.elapsed().as_secs_f64();
    let digest = file_digest(&store_file).expect("digest store");
    let store_bytes = std::fs::metadata(&store_file).expect("stat store").len();
    // The digest must be construction-path independent: reload and
    // compare against a checkpointed write of the loaded tables.
    let start = Instant::now();
    let reloaded = SearchTables::load(&store_file).expect("reload store");
    let load_seconds = start.elapsed().as_secs_f64();
    assert_eq!(reloaded.num_representatives(), tables.num_representatives());
    assert_eq!(*reloaded.model(), CostModel::unit());
    let content = reloaded.content_digest();
    drop(reloaded);

    // The same tables in store format v5, then a cold zero-copy load of
    // them — the number the serve tier cares about.
    let v5_file = format!("{store_file}.v5");
    let start = Instant::now();
    tables.save_v5(&v5_file).expect("write v5 store");
    let save_v5_seconds = start.elapsed().as_secs_f64();
    let v5_digest = file_digest(&v5_file).expect("digest v5 store");
    let v5_store_bytes = std::fs::metadata(&v5_file).expect("stat v5 store").len();
    let start = Instant::now();
    let mapped = SearchTables::load(&v5_file).expect("mmap v5 store");
    let load_ms = start.elapsed().as_millis();
    let v5_format = mapped.source_format().expect("loaded from a file");
    eprintln!("      v5 load: {load_ms} ms (v4 scan: {load_seconds:.3}s)");
    assert_eq!(v5_format, 5);
    assert_eq!(mapped.num_representatives(), tables.num_representatives());
    assert_eq!(
        mapped.content_digest(),
        content,
        "v4 and v5 stores must describe identical tables"
    );
    drop(mapped);
    if scratch {
        std::fs::remove_file(&store_file).ok();
        std::fs::remove_file(&v5_file).ok();
    }

    eprintln!("[4/4] writing {out_path} ...");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"tables\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"n\": {n}, \"k\": {k}, \"threads\": {threads}, \"shards\": {shards}, \
         \"max_mem\": {}, \"quick\": {quick}}},\n",
        if max_mem > 0 {
            max_mem.to_string()
        } else {
            "null".to_owned()
        }
    ));
    json.push_str("  \"levels\": [\n");
    for (i, &seconds) in level_seconds.iter().enumerate() {
        let classes = tables.level(i).len() as u64;
        let paper = if n == 4 {
            PAPER_N4_REDUCED
                .get(i)
                .map_or("null".to_owned(), |c| c.to_string())
        } else {
            "null".to_owned()
        };
        json.push_str(&format!(
            "    {{\"level\": {i}, \"classes\": {classes}, \"paper_classes\": {paper}, \
             \"seconds\": {seconds:.3}}}{}\n",
            if i == k as usize { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"total_classes\": {},\n",
        tables.num_representatives()
    ));
    json.push_str(&format!("  \"generate_seconds\": {total_seconds:.3},\n"));
    json.push_str(&format!(
        "  \"single_shot_generate_seconds\": {},\n",
        single_shot_seconds.map_or("null".to_owned(), |s| format!("{s:.3}"))
    ));
    json.push_str(&format!("  \"save_seconds\": {save_seconds:.3},\n"));
    json.push_str(&format!("  \"load_seconds\": {load_seconds:.3},\n"));
    json.push_str(&format!("  \"store_bytes\": {store_bytes},\n"));
    json.push_str(&format!("  \"store_digest\": \"{digest:#018x}\",\n"));
    json.push_str(&format!("  \"save_v5_seconds\": {save_v5_seconds:.3},\n"));
    json.push_str(&format!("  \"v5_store_bytes\": {v5_store_bytes},\n"));
    json.push_str(&format!("  \"v5_store_digest\": \"{v5_digest:#018x}\",\n"));
    json.push_str(&format!("  \"load_ms\": {load_ms},\n"));
    json.push_str(&format!("  \"format\": {v5_format},\n"));
    json.push_str(&format!(
        "  \"paper_check\": \"per-level class counts asserted against the published \
         DAC 2010 sequence (1, 4, 33, 425, 6538, ...) for all {} computed levels\"\n",
        if n == 4 { k + 1 } else { 0 }
    ));
    json.push_str("}\n");
    let mut file = std::fs::File::create(&out_path).expect("create report file");
    file.write_all(json.as_bytes()).expect("write report");
    println!("{json}");
}
