//! Regenerates paper Table 4: number of 4-bit permutations requiring each
//! gate count — exact counts up to k, sample-scaled estimates beyond.
//!
//! ```text
//! cargo run --release -p revsynth-bench --bin table4 -- [--k 7] [--samples 60] [--seed 2010]
//! ```
//!
//! Exact rows must **equal** the paper's (they are counts of the same
//! mathematical objects); estimated rows reproduce the paper's §4.2
//! methodology (sample fraction × 16!) and inherit the sample's noise.

use revsynth_analysis::{estimate_counts, sample_distribution, TOTAL_4BIT_FUNCTIONS};
use revsynth_bench::{arg_or, env_k, load_or_generate};
use revsynth_core::Synthesizer;

/// Paper Table 4 exact rows: (size, functions, reduced).
const PAPER_EXACT: [(usize, u64, u64); 10] = [
    (0, 1, 1),
    (1, 32, 4),
    (2, 784, 33),
    (3, 16_204, 425),
    (4, 294_507, 6_538),
    (5, 4_807_552, 101_983),
    (6, 70_763_560, 1_482_686),
    (7, 932_651_938, 19_466_575),
    (8, 10_804_681_959, 225_242_556),
    (9, 105_984_823_653, 2_208_511_226),
];

/// Paper Table 4 estimated rows (size, estimate).
const PAPER_ESTIMATES: [(usize, f64); 5] = [
    (10, 8.20e11),
    (11, 4.29e12),
    (12, 1.07e13),
    (13, 4.96e12),
    (14, 3.60e10),
];

fn main() {
    let k = arg_or("--k", env_k(7));
    let samples: usize = arg_or("--samples", 60);
    let seed: u64 = arg_or("--seed", 2010);

    let tables = load_or_generate(4, k);
    eprintln!("computing exact class sizes for levels 0..={k} ...");
    let exact = tables.counts();

    let synth = Synthesizer::new(tables);
    eprintln!(
        "sampling {samples} random permutations for the ≥{} estimates ...",
        k + 1
    );
    let sample = sample_distribution(&synth, samples, seed).expect("valid domain");

    let rows = estimate_counts(&exact, &sample);
    println!("# Table 4 — functions requiring 0..L gates (16! = {TOTAL_4BIT_FUNCTIONS} total)");
    println!(
        "{:>4} {:>16} {:>13} {:>12} {:>16} {:>13}",
        "size", "exact", "reduced", "estimate", "paper exact", "paper est."
    );
    for row in &rows {
        let paper_exact = PAPER_EXACT
            .iter()
            .find(|&&(s, _, _)| s == row.size)
            .map(|&(_, f, _)| f);
        let paper_est = PAPER_ESTIMATES
            .iter()
            .find(|&&(s, _)| s == row.size)
            .map(|&(_, e)| e);
        println!(
            "{:>4} {:>16} {:>13} {:>12} {:>16} {:>13}",
            row.size,
            row.exact.map_or("-".into(), |v| v.to_string()),
            row.exact_reduced.map_or("-".into(), |v| v.to_string()),
            row.estimated.map_or("-".into(), |v| format!("{v:.2e}")),
            paper_exact.map_or("-".into(), |v| v.to_string()),
            paper_est.map_or("-".into(), |v| format!("{v:.2e}")),
        );
    }

    // Exact rows must match the paper bit for bit.
    let mut mismatches = 0;
    for &(size, functions, reduced) in PAPER_EXACT.iter().take(k + 1) {
        let row = &rows[size];
        if row.exact != Some(functions) || row.exact_reduced != Some(reduced) {
            eprintln!("MISMATCH at size {size}: {row:?}");
            mismatches += 1;
        }
    }
    println!(
        "\nexact rows 0..={k} vs paper: {}",
        if mismatches == 0 {
            "all equal"
        } else {
            "MISMATCH"
        }
    );
    if sample.unresolved() > 0 {
        println!(
            "note: {} samples exceeded the size-{} bound (they belong to the 13/14-gate rows)",
            sample.unresolved(),
            synth.max_size()
        );
    }
}
