//! `perf_report` — the maintained synthesis performance trajectory.
//!
//! Measures, on the current machine:
//!
//! * breadth-first table generation time (paper Algorithm 2);
//! * median single-query synthesis latency for functions just past the
//!   fast path (meet-in-the-middle at shallow levels);
//! * meet-in-the-middle **throughput** — candidates tested per second and
//!   queries per second — on a batch of random 4-wire functions of size
//!   > k, for four implementations:
//!   1. `seed_serial`: the original algorithm (expand every stored
//!      representative's equivalence class, canonicalize each
//!      composition),
//!   2. `engine_serial`: the frame-hoisted batched engine on one thread
//!      with the invariant gate **off** (probe wavefront active),
//!   3. `engine_gated`: the same engine with the invariant gate **on**
//!      (the default configuration),
//!   4. `engine_gated_parallel`: the gated engine with sharded level
//!      scans.
//!
//! Every engine run is verified against the seed algorithm's sizes, and
//! the gated run against the ungated one, so a gate regression that
//! changes results fails this binary deterministically — which is why CI
//! runs it (at `--quick` scale) on every push.
//!
//! Emits `BENCH_synthesis.json` (override with `--out`). Flags:
//! `--k` (default `REVSYNTH_K` or 5), `--batch` (default 100),
//! `--threads` (default 8), `--seed`, `--out`, and `--quick` (smoke
//! scale: k = 4, batch = 10, threads = 2 unless overridden).
//!
//! Run with `cargo run --release -p revsynth-bench --bin perf_report`.

use std::io::Write as _;
use std::time::{Duration, Instant};

use revsynth_analysis::{random_perm, Rng, SplitMix64};
use revsynth_bench::{arg_or, env_k};
use revsynth_bfs::SearchTables;
use revsynth_circuit::{CostModel, GateLib};
use revsynth_core::{DepthSynthesizer, SearchOptions, SearchStats, Synthesizer};
use revsynth_perm::Perm;

/// One throughput measurement. `candidates` is always the seed
/// algorithm's candidate count for the same queries: every
/// implementation answers the same questions, so candidates/sec is a
/// wall-clock comparison over identical logical work. The engine's own
/// enumeration count differs slightly in both directions (frame
/// deduplication and the self-inverse-rep skip remove candidates;
/// frames-vs-class-members duplication on symmetric representatives and
/// wavefront-lagged hit detection add some — the `*_pipeline` fields
/// record the real counts), which is exactly why the normalization
/// fixes one denominator for every row.
struct Throughput {
    seconds: f64,
    queries: usize,
    candidates: u64,
}

impl Throughput {
    fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / self.seconds
    }
    fn candidates_per_sec(&self) -> f64 {
        self.candidates as f64 / self.seconds
    }
    fn json(&self) -> String {
        format!(
            "{{\"seconds\": {:.6}, \"queries\": {}, \"candidates\": {}, \
             \"queries_per_sec\": {:.3}, \"candidates_per_sec\": {:.1}}}",
            self.seconds,
            self.queries,
            self.candidates,
            self.queries_per_sec(),
            self.candidates_per_sec()
        )
    }
}

fn stats_json(stats: &SearchStats) -> String {
    format!(
        "{{\"considered\": {}, \"gated\": {}, \"canonicalized\": {}, \"probed\": {}, \
         \"gate_selectivity\": {:.6}}}",
        stats.considered,
        stats.gated,
        stats.canonicalized,
        stats.probed,
        stats.gate_selectivity()
    )
}

/// The seed algorithm's `size` path, kept verbatim as the baseline: for
/// every stored representative, expand all ≤ 48 class members (conjugation
/// walk + sort + dedup) and canonicalize every composition `f.then(g)`.
fn seed_size(synth: &Synthesizer, f: Perm, candidates: &mut u64) -> Option<usize> {
    let tables = synth.tables();
    if let Some(size) = tables.size_of(f) {
        return Some(size);
    }
    let sym = tables.sym();
    let k = tables.k();
    let mut members: Vec<Perm> = Vec::with_capacity(sym.max_class_size());
    for i in 1..=k {
        for &rep in tables.level(i) {
            sym.class_members_into(rep, &mut members);
            for &g in &members {
                *candidates += 1;
                if tables.contains(sym.canonical(f.then(g))) {
                    return Some(k + i);
                }
            }
        }
    }
    None
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let k: usize = arg_or("--k", if quick { 4 } else { env_k(5) });
    let batch: usize = arg_or("--batch", if quick { 10 } else { 100 });
    let threads: usize = arg_or("--threads", if quick { 2 } else { 8 });
    let seed: u64 = arg_or("--seed", 2010);
    let out_path: String = arg_or("--out", "BENCH_synthesis.json".to_owned());
    let hardware_threads = std::thread::available_parallelism().map_or(1, usize::from);

    eprintln!("[1/5] generating tables (n = 4, k = {k}) ...");
    let start = Instant::now();
    let tables = SearchTables::generate(4, k);
    let bfs_generate = start.elapsed();
    eprintln!(
        "      {} classes, {} distinct invariants, in {bfs_generate:.2?}",
        tables.num_representatives(),
        tables.invariants().len()
    );
    let synth = Synthesizer::new(tables);

    // Batch of random 4-wire functions of size > k: the meet-in-the-middle
    // regime (uniform random 4-bit permutations average ~11.94 gates, so
    // nearly every draw qualifies; the fast path filters the rest).
    eprintln!("[2/5] drawing {batch} random functions of size > {k} ...");
    let mut rng = SplitMix64::new(seed);
    let mut queries: Vec<Perm> = Vec::with_capacity(batch);
    while queries.len() < batch {
        let f = random_perm(4, &mut rng);
        if synth.tables().size_of(f).is_none() {
            queries.push(f);
        }
    }

    // Median single-query latency on functions just past the fast path
    // (random products of k+2 gates, so the scan hits at level ≤ 2).
    eprintln!("[3/5] median synthesis latency (size ≈ k+2) ...");
    let lib = GateLib::nct(4);
    let mut latency_set: Vec<Perm> = Vec::new();
    while latency_set.len() < 25 {
        let mut f = Perm::identity();
        for _ in 0..k + 2 {
            f = f.then(lib.perm_of(rng.gen_range(0..lib.len())));
        }
        if synth.tables().size_of(f).is_none() {
            latency_set.push(f);
        }
    }
    let mut latencies: Vec<Duration> = latency_set
        .iter()
        .map(|&f| {
            let start = Instant::now();
            let result = synth.synthesize(f);
            std::hint::black_box(&result)
                .as_ref()
                .expect("size ≤ k+2 ≤ 2k");
            start.elapsed()
        })
        .collect();
    latencies.sort_unstable();
    let median_latency = latencies[latencies.len() / 2];
    eprintln!("      median {median_latency:.2?}");

    eprintln!(
        "[4/7] throughput: seed_serial vs engine_serial vs engine_gated vs \
         engine_gated_parallel({threads}) ..."
    );
    let start = Instant::now();
    let mut seed_candidates = 0u64;
    let seed_sizes: Vec<Option<usize>> = queries
        .iter()
        .map(|&f| seed_size(&synth, f, &mut seed_candidates))
        .collect();
    let seed_serial = Throughput {
        seconds: start.elapsed().as_secs_f64(),
        queries: queries.len(),
        candidates: seed_candidates,
    };
    eprintln!(
        "      seed_serial           : {:.2}s, {:.2e} candidates/s",
        seed_serial.seconds,
        seed_serial.candidates_per_sec()
    );

    let measure_engine = |opts: &SearchOptions| {
        let start = Instant::now();
        let (results, stats) = synth.size_many_stats(&queries, opts);
        let seconds = start.elapsed().as_secs_f64();
        // Engine results must agree with the seed path exactly — a gate
        // or wavefront regression that changes results fails right here,
        // deterministically (fixed seed, fixed candidate order).
        for (j, (seed_size, engine)) in seed_sizes.iter().zip(&results).enumerate() {
            assert_eq!(
                *seed_size,
                engine.as_ref().ok().copied(),
                "query {j}: engine diverged from the seed algorithm ({opts:?})"
            );
        }
        assert_eq!(
            stats.considered,
            stats.gated + stats.canonicalized,
            "candidate accounting must add up ({opts:?})"
        );
        (
            Throughput {
                seconds,
                queries: queries.len(),
                candidates: seed_candidates,
            },
            stats,
        )
    };
    let (engine_serial, engine_stats) =
        measure_engine(&SearchOptions::new().threads(1).filter(false));
    assert_eq!(engine_stats.gated, 0, "gate off must gate nothing");
    let (engine_gated, gated_stats) = measure_engine(&SearchOptions::new().threads(1));
    let (gated_parallel, parallel_stats) = measure_engine(&SearchOptions::new().threads(threads));
    eprintln!(
        "      engine_serial         : {:.2}s ({:.2}x seed, gate off)",
        engine_serial.seconds,
        seed_serial.seconds / engine_serial.seconds
    );
    eprintln!(
        "      engine_gated          : {:.2}s ({:.2}x seed, {:.1}% gated)",
        engine_gated.seconds,
        seed_serial.seconds / engine_gated.seconds,
        gated_stats.gate_selectivity() * 100.0
    );
    eprintln!(
        "      engine_gated_parallel : {:.2}s ({:.2}x seed, {threads} threads on \
         {hardware_threads} hardware threads)",
        gated_parallel.seconds,
        seed_serial.seconds / gated_parallel.seconds
    );

    // Deterministic digest of the gate-count results (per-query optimal
    // sizes for the fixed seed): CI compares this against the committed
    // baseline, so any change to gate-count-mode results — however the
    // cost-model machinery evolves — fails the perf-smoke job.
    let gates_results_digest = {
        let mut fnv = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                fnv ^= u64::from(b);
                fnv = fnv.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for size in &seed_sizes {
            mix(size.map_or(u64::MAX, |s| s as u64));
        }
        fnv
    };

    // ---- quantum-cost row ------------------------------------------------
    let quantum_budget: u64 = arg_or("--quantum-budget", if quick { 7 } else { 9 });
    eprintln!("[5/7] quantum-cost engine (budget {quantum_budget}) ...");
    let start = Instant::now();
    let quantum_tables =
        SearchTables::generate_weighted(GateLib::nct(4), CostModel::quantum(), quantum_budget);
    let quantum_generate = start.elapsed();
    let quantum_classes = quantum_tables.num_representatives();
    let quantum_reach = quantum_tables.cost_reach();
    let quantum_synth = Synthesizer::new(quantum_tables);
    // Queries: random gate strings whose summed quantum cost stays
    // within the engine's reach, so every query is answerable.
    let model = CostModel::quantum();
    let mut quantum_queries: Vec<(Perm, u64)> = Vec::with_capacity(batch);
    while quantum_queries.len() < batch {
        let mut f = Perm::identity();
        let mut cost = 0u64;
        loop {
            let gate_idx = rng.gen_range(0..lib.len());
            let g = lib.gate(gate_idx);
            if cost + model.gate_cost(g) > quantum_reach {
                break;
            }
            cost += model.gate_cost(g);
            f = f.then(lib.perm_of(gate_idx));
        }
        quantum_queries.push((f, cost));
    }
    let fs: Vec<Perm> = quantum_queries.iter().map(|&(f, _)| f).collect();
    let start = Instant::now();
    let quantum_results = quantum_synth.synthesize_many(&fs, &SearchOptions::new().threads(1));
    let quantum_seconds = start.elapsed().as_secs_f64();
    let mut quantum_total_cost = 0u64;
    for (j, result) in quantum_results.iter().enumerate() {
        let syn = result
            .as_ref()
            .unwrap_or_else(|e| panic!("quantum query {j}: {e}"));
        assert_eq!(syn.circuit.perm(4), fs[j], "quantum query {j}");
        assert!(
            syn.cost <= quantum_queries[j].1,
            "quantum query {j}: {} > construction cost {}",
            syn.cost,
            quantum_queries[j].1
        );
        assert_eq!(syn.circuit.cost(&model), syn.cost, "quantum query {j}");
        quantum_total_cost += syn.cost;
    }
    // The residual-bucket gate must not change results (spot A/B).
    let bare = quantum_synth.synthesize_many(&fs, &SearchOptions::new().threads(1).filter(false));
    for (j, (a, b)) in quantum_results.iter().zip(&bare).enumerate() {
        assert_eq!(
            a.as_ref().unwrap().circuit,
            b.as_ref().unwrap().circuit,
            "quantum query {j}: gate changed the result"
        );
    }
    eprintln!(
        "      {} classes (reach {quantum_reach}) in {:.2}s; {} queries in {:.2}s",
        quantum_classes,
        quantum_generate.as_secs_f64(),
        batch,
        quantum_seconds
    );

    // ---- depth row -------------------------------------------------------
    let depth_budget: usize = arg_or("--depth-budget", if quick { 2 } else { 3 });
    eprintln!("[6/7] depth engine ({depth_budget} layers) ...");
    let start = Instant::now();
    let depth_synth = DepthSynthesizer::generate(GateLib::nct(4), depth_budget);
    let depth_generate = start.elapsed();
    let depth_classes: u64 = depth_synth.counts().iter().map(|&(_, c, _)| c).sum();
    let mut depth_queries: Vec<Perm> = Vec::with_capacity(batch);
    while depth_queries.len() < batch {
        // A random product of `depth_budget` layers is within reach.
        let mut f = Perm::identity();
        for _ in 0..depth_budget {
            let layer = &depth_synth.layers()[rng.gen_range(0..depth_synth.layers().len())];
            f = f.then(layer.perm(4));
        }
        depth_queries.push(f);
    }
    let start = Instant::now();
    let mut depth_total = 0u64;
    for (j, &f) in depth_queries.iter().enumerate() {
        let c = depth_synth
            .try_synthesize(f)
            .unwrap_or_else(|e| panic!("depth query {j}: {e}"));
        assert_eq!(c.perm(4), f, "depth query {j}");
        assert!(c.depth() <= depth_budget, "depth query {j}");
        depth_total += c.depth() as u64;
    }
    let depth_seconds = start.elapsed().as_secs_f64();
    eprintln!(
        "      {depth_classes} classes in {:.2}s; {} queries in {:.2}s",
        depth_generate.as_secs_f64(),
        batch,
        depth_seconds
    );

    eprintln!("[7/7] writing {out_path} ...");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"synthesis\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"n\": 4, \"k\": {k}, \"batch\": {batch}, \"threads\": {threads}, \
         \"seed\": {seed}, \"hardware_threads\": {hardware_threads}, \"quick\": {quick}}},\n"
    ));
    json.push_str(&format!(
        "  \"bfs_generate_seconds\": {:.3},\n",
        bfs_generate.as_secs_f64()
    ));
    json.push_str(&format!(
        "  \"stored_classes\": {},\n",
        synth.tables().num_representatives()
    ));
    json.push_str(&format!(
        "  \"stored_invariants\": {},\n",
        synth.tables().invariants().len()
    ));
    json.push_str(&format!(
        "  \"median_synthesis_latency_us\": {:.1},\n",
        median_latency.as_secs_f64() * 1e6
    ));
    json.push_str(&format!("  \"seed_serial\": {},\n", seed_serial.json()));
    json.push_str(&format!("  \"engine_serial\": {},\n", engine_serial.json()));
    json.push_str(&format!(
        "  \"engine_serial_pipeline\": {},\n",
        stats_json(&engine_stats)
    ));
    json.push_str(&format!("  \"engine_gated\": {},\n", engine_gated.json()));
    json.push_str(&format!(
        "  \"engine_gated_pipeline\": {},\n",
        stats_json(&gated_stats)
    ));
    json.push_str(&format!(
        "  \"engine_gated_parallel\": {},\n",
        gated_parallel.json()
    ));
    json.push_str(&format!(
        "  \"engine_gated_parallel_pipeline\": {},\n",
        stats_json(&parallel_stats)
    ));
    json.push_str(&format!(
        "  \"speedup_engine_serial_vs_seed\": {:.3},\n",
        seed_serial.seconds / engine_serial.seconds
    ));
    json.push_str(&format!(
        "  \"speedup_engine_gated_vs_seed\": {:.3},\n",
        seed_serial.seconds / engine_gated.seconds
    ));
    json.push_str(&format!(
        "  \"speedup_engine_gated_parallel_vs_seed\": {:.3},\n",
        seed_serial.seconds / gated_parallel.seconds
    ));
    json.push_str(&format!(
        "  \"gates_results_digest\": \"{gates_results_digest:#018x}\",\n"
    ));
    json.push_str(&format!(
        "  \"quantum_cost\": {{\"budget\": {quantum_budget}, \"reach\": {quantum_reach}, \
         \"classes\": {quantum_classes}, \"generate_seconds\": {:.3}, \"queries\": {batch}, \
         \"seconds\": {quantum_seconds:.6}, \"queries_per_sec\": {:.3}, \
         \"total_cost\": {quantum_total_cost}}},\n",
        quantum_generate.as_secs_f64(),
        batch as f64 / quantum_seconds
    ));
    json.push_str(&format!(
        "  \"depth\": {{\"budget\": {depth_budget}, \"classes\": {depth_classes}, \
         \"generate_seconds\": {:.3}, \"queries\": {batch}, \"seconds\": {depth_seconds:.6}, \
         \"queries_per_sec\": {:.3}, \"total_depth\": {depth_total}}}\n",
        depth_generate.as_secs_f64(),
        batch as f64 / depth_seconds
    ));
    json.push_str("}\n");
    let mut file = std::fs::File::create(&out_path).expect("create report file");
    file.write_all(json.as_bytes()).expect("write report");
    println!("{json}");
}
