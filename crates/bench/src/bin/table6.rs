//! Regenerates paper Table 6: optimal circuits for the benchmark suite.
//!
//! ```text
//! cargo run --release -p revsynth-bench --bin table6 -- [--k 7]
//! ```
//!
//! k = 7 (the default) covers all thirteen benchmarks including `oc7`
//! (SOC 13). Every synthesized size must equal the paper's SOC column,
//! and every synthesized circuit must implement its specification.

use std::time::Instant;

use revsynth_bench::{arg_or, env_k, load_or_generate};
use revsynth_core::Synthesizer;
use revsynth_specs::benchmarks;

fn main() {
    let k = arg_or("--k", env_k(7));
    let synth = Synthesizer::new(load_or_generate(4, k));

    println!("# Table 6 — optimal implementations of benchmark functions");
    println!(
        "{:<10} {:>5} {:>4} {:>5} {:>12} {:>12}  circuit",
        "name", "SBKC", "SOC", "ours", "time", "paper time"
    );
    let mut all = true;
    for b in benchmarks() {
        let sbkc = b.best_known_size.map_or("N/A".into(), |s| s.to_string());
        if b.optimal_size > synth.max_size() {
            println!(
                "{:<10} {:>5} {:>4} {:>5} {:>12} {:>12}  (needs k ≥ {})",
                b.name,
                sbkc,
                b.optimal_size,
                "-",
                "-",
                "-",
                b.optimal_size.div_ceil(2)
            );
            all = false;
            continue;
        }
        let start = Instant::now();
        let c = synth.synthesize(b.perm()).expect("within bound");
        let elapsed = start.elapsed();
        let ok = c.len() == b.optimal_size && c.perm(4) == b.perm();
        all &= ok;
        println!(
            "{:<10} {:>5} {:>4} {:>5} {:>11.1?} {:>11.1e}s {} {}",
            b.name,
            sbkc,
            b.optimal_size,
            c.len(),
            elapsed,
            b.paper_runtime_seconds,
            if ok { " " } else { "!" },
            c
        );
    }
    println!(
        "\n{}",
        if all {
            "all benchmarks synthesized at exactly the paper's optimal sizes"
        } else {
            "MISMATCH (or out-of-reach benchmarks at this k)"
        }
    );
}
