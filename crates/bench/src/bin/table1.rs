//! Regenerates paper Table 1: average time to compute minimal circuits of
//! each size.
//!
//! ```text
//! cargo run --release -p revsynth-bench --bin table1 -- [--k 6] [--max-size 12] [--trials 25]
//! ```
//!
//! The paper's numbers (k = 8 on a laptop, k = 8/9 on a server) are printed
//! alongside for shape comparison: times are flat (microseconds) up to
//! size k, then grow by roughly the gate-library branching factor per
//! extra gate — the |A_i| list-scan of Algorithm 1.

use revsynth_analysis::timing::time_by_size;
use revsynth_bench::{arg_or, env_k, load_or_generate};
use revsynth_core::Synthesizer;

/// Paper Table 1, column "8 (CS2)" (seconds), sizes 0..=14.
const PAPER_K8_CS2: [f64; 15] = [
    5.10e-7, 8.70e-7, 1.26e-6, 1.66e-6, 2.07e-6, 2.47e-6, 3.48e-6, 4.22e-6, 4.49e-6, 1.07e-5,
    2.28e-4, 4.27e-3, 6.30e-2, 4.91e-1, 4.38,
];
/// Paper Table 1, column "9 (CS1)" (seconds), sizes 0..=14.
const PAPER_K9_CS1: [f64; 15] = [
    5.15e-7, 8.80e-7, 1.27e-6, 1.68e-6, 2.14e-6, 2.52e-6, 3.96e-6, 4.85e-6, 4.45e-6, 5.65e-6,
    1.79e-5, 2.38e-4, 3.74e-3, 3.18e-2, 3.26e-1,
];

fn main() {
    let k = arg_or("--k", env_k(6));
    let max_size = arg_or("--max-size", (2 * k).min(k + 5));
    let trials: u32 = arg_or("--trials", 25);
    let seed: u64 = arg_or("--seed", 1);

    let synth = Synthesizer::new(load_or_generate(4, k));
    eprintln!("timing sizes 0..={max_size} ({trials} trials per size) ...");
    let rows = time_by_size(&synth, max_size, trials, seed);

    println!("# Table 1 — average synthesis time per optimal size (seconds)");
    println!("# ours: k = {k} on this machine; paper columns for shape comparison");
    println!(
        "{:>4} {:>12} {:>7} {:>14} {:>14}",
        "size", "ours k=", "trials", "paper k=8 CS2", "paper k=9 CS1"
    );
    for row in &rows {
        let secs = row.average.as_secs_f64();
        let p8 = PAPER_K8_CS2.get(row.size).copied();
        let p9 = PAPER_K9_CS1.get(row.size).copied();
        println!(
            "{:>4} {:>12.3e} {:>7} {:>14} {:>14}",
            row.size,
            secs,
            row.trials,
            p8.map_or("-".into(), |v| format!("{v:.2e}")),
            p9.map_or("-".into(), |v| format!("{v:.2e}")),
        );
    }
    println!(
        "# shape check: flat microseconds for sizes ≤ {k}, then ≈ |A_i|-driven growth per gate"
    );
}
