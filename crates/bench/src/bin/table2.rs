//! Regenerates paper Table 2: parameters of the linear-probing hash tables
//! storing the canonical representatives.
//!
//! ```text
//! cargo run --release -p revsynth-bench --bin table2 -- [--min-k 5] [--max-k 7]
//! ```
//!
//! The paper reports k = 7, 8, 9 (256 MB / 2 GB / 32 GB); this machine
//! defaults to k = 5..7. Shape checks: load factors in the same band,
//! maximal chains two orders of magnitude above the average, average
//! chains of a few slots.

use revsynth_bench::{arg_or, load_or_generate};

/// Paper Table 2 rows: (k, log2 slots, memory, load factor, avg chain, max chain).
#[allow(clippy::approx_constant)] // the paper's k = 7 average chain length really is 3.14
const PAPER: [(usize, u32, &str, f64, f64, u64); 3] = [
    (7, 25, "256 MB", 0.58, 3.14, 92),
    (8, 28, "2 GB", 0.84, 9.18, 754),
    (9, 32, "32 GB", 0.51, 2.63, 86),
];

fn main() {
    let min_k = arg_or("--min-k", 5usize);
    let max_k = arg_or("--max-k", 7usize);

    println!("# Table 2 — linear hash tables storing canonical representatives");
    println!(
        "{:>3} {:>9} {:>10} {:>6} {:>10} {:>10}",
        "k", "slots", "memory", "load", "avg chain", "max chain"
    );
    for k in min_k..=max_k {
        let tables = load_or_generate(4, k);
        let s = tables.table_stats();
        println!(
            "{:>3} {:>9} {:>10} {:>6.2} {:>10.2} {:>10}",
            k,
            format!("2^{}", s.capacity.trailing_zeros()),
            s.memory_display(),
            s.load_factor,
            s.avg_cluster_len,
            s.max_cluster_len
        );
    }
    println!("\n# paper (for comparison):");
    println!(
        "{:>3} {:>9} {:>10} {:>6} {:>10} {:>10}",
        "k", "slots", "memory", "load", "avg chain", "max chain"
    );
    for (k, bits, mem, load, avg, max) in PAPER {
        println!(
            "{k:>3} {:>9} {mem:>10} {load:>6.2} {avg:>10.2} {max:>10}",
            format!("2^{bits}")
        );
    }
}
