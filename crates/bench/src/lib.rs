//! Shared infrastructure for the benchmark harness.
//!
//! Each table and figure of the paper's evaluation section has a dedicated
//! regenerator binary in `src/bin/` (`table1` … `table6`, `fig2`,
//! `hard_search`); Criterion micro-benchmarks of the §3.3 kernels live in
//! `benches/`. This library holds the plumbing they share: environment
//! configuration and the precompute-once/load-later table cache (the
//! paper's own workflow — §4.1 loads the k = 9 tables from disk in 1111 s
//! rather than recomputing them for 3 hours).
//!
//! Environment variables:
//!
//! * `REVSYNTH_K` — default search depth k for the table binaries,
//! * `REVSYNTH_DATA` — directory for cached table stores (default
//!   `./data`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Instant;

use revsynth_bfs::SearchTables;

/// Reads `REVSYNTH_K`, falling back to `default`.
///
/// # Panics
///
/// Panics if the variable is set but not a valid depth.
#[must_use]
pub fn env_k(default: usize) -> usize {
    match std::env::var("REVSYNTH_K") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("REVSYNTH_K must be an integer, got `{v}`")),
        Err(_) => default,
    }
}

/// The table-cache directory (`REVSYNTH_DATA` or `./data`).
#[must_use]
pub fn data_dir() -> PathBuf {
    std::env::var_os("REVSYNTH_DATA")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("data"))
}

/// Loads cached tables for `(n, k)` from [`data_dir`], or generates and
/// caches them. Prints progress to stderr.
///
/// # Panics
///
/// Panics on unwritable cache directories or unrecoverable store errors
/// (binaries prefer a loud failure over silently recomputing for minutes).
#[must_use]
pub fn load_or_generate(n: usize, k: usize) -> SearchTables {
    let dir = data_dir();
    let path = dir.join(format!("tables-n{n}-k{k}.bin"));
    if path.exists() {
        eprintln!("loading cached tables from {} ...", path.display());
        let start = Instant::now();
        match SearchTables::load(&path) {
            Ok(tables) if tables.wires() == n && tables.k() == k => {
                eprintln!(
                    "  {} classes in {:.2?}",
                    tables.num_representatives(),
                    start.elapsed()
                );
                return tables;
            }
            Ok(_) => eprintln!("  cache has different parameters; regenerating"),
            Err(e) => eprintln!("  cache unusable ({e}); regenerating"),
        }
    }
    eprintln!("generating tables (n = {n}, k = {k}) ...");
    let start = Instant::now();
    let tables = SearchTables::generate(n, k);
    eprintln!(
        "  {} classes in {:.2?}",
        tables.num_representatives(),
        start.elapsed()
    );
    std::fs::create_dir_all(&dir).expect("create table cache directory");
    let start = Instant::now();
    tables.save(&path).expect("write table cache");
    eprintln!("  cached to {} in {:.2?}", path.display(), start.elapsed());
    tables
}

/// Parses `--flag value` style options from `std::env::args`, with
/// defaults. Shared by the table binaries (tiny on purpose; the real CLI
/// lives in `revsynth-cli`).
#[must_use]
pub fn arg_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_k_default() {
        // The test environment does not set REVSYNTH_K.
        if std::env::var_os("REVSYNTH_K").is_none() {
            assert_eq!(env_k(6), 6);
        }
    }

    #[test]
    fn cache_roundtrip_small() {
        let dir = std::env::temp_dir().join(format!("revsynth-bench-{}", std::process::id()));
        std::env::set_var("REVSYNTH_DATA", &dir);
        let a = load_or_generate(2, 3);
        let b = load_or_generate(2, 3); // second call hits the cache
        assert_eq!(a.reduced_counts(), b.reduced_counts());
        std::fs::remove_dir_all(&dir).ok();
        std::env::remove_var("REVSYNTH_DATA");
    }
}
