//! Exact per-size counts (paper Table 4).

use std::fmt;

use crate::tables::SearchTables;

/// Exact counts of one size level: how many equivalence classes
/// ("reduced functions") and how many functions in total need exactly
/// `size` gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelCount {
    /// The optimal circuit size this row describes.
    pub size: usize,
    /// Number of equivalence classes (paper Table 4 "Reduced Functions").
    pub reduced: u64,
    /// Number of functions (paper Table 4 "Functions"): the sum of class
    /// sizes over the classes of this level.
    pub functions: u64,
}

impl fmt::Display for LevelCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "size {:>2}: {:>15} functions, {:>12} reduced",
            self.size, self.functions, self.reduced
        )
    }
}

/// Computes exact reduced and full counts for every level of `tables`.
pub(crate) fn exact_counts(tables: &SearchTables) -> Vec<LevelCount> {
    let sym = &tables.sym;
    let mut buf = Vec::with_capacity(sym.max_class_size());
    tables
        .levels
        .iter()
        .enumerate()
        .map(|(size, reps)| {
            let mut functions = 0u64;
            for &rep in reps {
                sym.class_members_into(rep, &mut buf);
                functions += buf.len() as u64;
            }
            LevelCount {
                size,
                reduced: reps.len() as u64,
                functions,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 4, sizes 0..=5 (full counts).
    const N4_FULL: [u64; 6] = [1, 32, 784, 16_204, 294_507, 4_807_552];

    #[test]
    fn full_counts_match_paper_table4_to_size5() {
        let t = SearchTables::generate(4, 5);
        let counts = t.counts();
        for (i, &expected) in N4_FULL.iter().enumerate() {
            assert_eq!(counts[i].functions, expected, "full count at size {i}");
        }
    }

    #[test]
    fn reduced_never_exceeds_functions() {
        let t = SearchTables::generate(3, 6);
        for c in t.counts() {
            assert!(c.reduced <= c.functions);
            assert!(c.functions <= c.reduced * t.sym().max_class_size() as u64);
        }
    }

    #[test]
    fn display_is_readable() {
        let c = LevelCount {
            size: 9,
            reduced: 2_208_511_226,
            functions: 105_984_823_653,
        };
        let s = c.to_string();
        assert!(s.contains("105984823653"));
        assert!(s.contains("2208511226"));
    }
}
