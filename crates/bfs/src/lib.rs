//! Breadth-first generation of all optimal reversible functions of size ≤ k
//! (Algorithm 2 of the paper).
//!
//! The output of the search is a [`SearchTables`] value holding, for every
//! equivalence class (see [`revsynth_canon`]) of optimal circuit size
//! `0 ≤ s ≤ k`:
//!
//! * the canonical representative, stored in a linear-probing hash table
//!   ([`revsynth_table::FnTable`]) for the O(1) membership test of the
//!   search-and-lookup algorithm, and
//! * one byte recording either the **last** or the **first** gate of a
//!   minimal circuit for the representative — enough to reconstruct an
//!   entire minimal circuit by repeated peeling (paper §3.2);
//! * per-size lists of representatives (the paper's lists `A_i`), used by
//!   the meet-in-the-middle phase of Algorithm 1 and for the exact counts of
//!   the paper's Table 4.
//!
//! Level `i` is produced by composing every level-`(i−1)` representative
//! *and its inverse* with all 32 gates and canonicalizing; a class not seen
//! before has size exactly `i`. The completeness argument is documented in
//! the `generate` module source.
//!
//! The paper ran this to k = 9 in ~3 hours on a 16-core, 64 GB machine;
//! the defaults here (k = 6 for tests, k = 7 for experiments) run in
//! seconds to a couple of minutes on one laptop core, and the same code
//! scales to k = 8–9 given the paper's hardware (see DESIGN.md §5).
//!
//! # Example
//!
//! ```
//! use revsynth_bfs::SearchTables;
//!
//! // All 3-wire reversible functions of optimal size ≤ 3.
//! let tables = SearchTables::generate(3, 3);
//! let counts = tables.counts();
//! assert_eq!(counts[1].functions, 12); // the 12 gates of the 3-wire library
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counts;
mod generate;
mod info;
mod parallel;
pub mod reference;
mod shard;
mod store;
mod tables;
mod weighted;

pub use counts::LevelCount;
pub use info::{decode_stored, encode_stored, StoredGate, IDENTITY_BYTE};
pub use shard::GenOptions;
pub use store::{file_digest, LevelInfo, StoreError, StoreErrorKind, StoreInfo};
pub use tables::{Levels, LevelsIter, SearchTables};
