//! Whole-space reference search, without symmetry reduction.
//!
//! For 2 and 3 wires the full function space (24 and 40,320 permutations)
//! is small enough to explore directly. This module provides the oracle the
//! test suite uses to validate the symmetry-reduced pipeline *exhaustively*:
//! optimal sizes computed here must match [`SearchTables`] and the
//! search-and-lookup synthesizer for every function.
//!
//! It is also how this repo recomputes the "optimal synthesis of all 3-bit
//! reversible functions" that the paper cites from Shende et al. and uses
//! for its Table 4 extrapolation.
//!
//! [`SearchTables`]: crate::SearchTables

use std::collections::HashMap;

use revsynth_circuit::GateLib;
use revsynth_perm::Perm;

/// Optimal size of every function reachable from the identity over `lib`,
/// by plain breadth-first search with no symmetry reduction.
///
/// # Panics
///
/// Panics if `lib` acts on 4 wires (16! functions is far beyond
/// enumeration; that is the entire point of the paper).
#[must_use]
pub fn full_space_sizes(lib: &GateLib) -> HashMap<Perm, usize> {
    assert!(
        lib.wires() <= 3,
        "full-space enumeration is only feasible for n ≤ 3"
    );
    let mut sizes = HashMap::new();
    sizes.insert(Perm::identity(), 0usize);
    let mut frontier = vec![Perm::identity()];
    let mut depth = 0usize;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &f in &frontier {
            for (_, _, gate_perm) in lib.iter() {
                let h = f.then(gate_perm);
                if let std::collections::hash_map::Entry::Vacant(e) = sizes.entry(h) {
                    e.insert(depth);
                    next.push(h);
                }
            }
        }
        frontier = next;
    }
    sizes
}

/// Histogram of [`full_space_sizes`]: `result[s]` = number of functions of
/// optimal size `s`.
///
/// # Panics
///
/// Panics if `lib` acts on 4 wires.
#[must_use]
pub fn full_space_counts(lib: &GateLib) -> Vec<u64> {
    let sizes = full_space_sizes(lib);
    let max = sizes.values().copied().max().unwrap_or(0);
    let mut hist = vec![0u64; max + 1];
    for &s in sizes.values() {
        hist[s] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchTables;

    #[test]
    fn n2_reaches_all_24_functions() {
        let lib = GateLib::nct(2);
        let sizes = full_space_sizes(&lib);
        assert_eq!(sizes.len(), 24, "NCT(2) generates the whole of S4");
        assert_eq!(sizes[&Perm::identity()], 0);
    }

    #[test]
    fn n3_reaches_all_40320_functions() {
        let lib = GateLib::nct(3);
        let counts = full_space_counts(&lib);
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 40_320, "NCT(3) generates the whole of S8");
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 12);
    }

    #[test]
    fn reduced_bfs_matches_full_space_exhaustively_n2() {
        let lib = GateLib::nct(2);
        let oracle = full_space_sizes(&lib);
        let max = oracle.values().copied().max().unwrap();
        let tables = SearchTables::generate(2, max);
        for (&f, &size) in &oracle {
            assert_eq!(tables.size_of(f), Some(size), "f = {f}");
        }
        // Counts agree per level.
        let counts = tables.counts();
        let full = full_space_counts(&lib);
        for (i, &expected) in full.iter().enumerate() {
            assert_eq!(counts[i].functions, expected, "level {i}");
        }
    }

    #[test]
    fn reduced_bfs_matches_full_space_counts_n3() {
        let lib = GateLib::nct(3);
        let full = full_space_counts(&lib);
        let max = full.len() - 1;
        let tables = SearchTables::generate(3, max);
        let counts = tables.counts();
        assert_eq!(counts.len(), full.len());
        for (i, &expected) in full.iter().enumerate() {
            assert_eq!(counts[i].functions, expected, "level {i}");
        }
        // Spot-check individual sizes across the whole space.
        let oracle = full_space_sizes(&lib);
        for (j, (&f, &size)) in oracle.iter().enumerate() {
            if j % 97 == 0 {
                assert_eq!(tables.size_of(f), Some(size), "f = {f}");
            }
        }
    }
}
