//! Binary persistence of [`SearchTables`] — now checkpointed and
//! extendable in place.
//!
//! The paper computes the k = 9 tables once (~3 h) and thereafter loads
//! them from disk (§4.1: 1111 seconds to load 43 GB into RAM; §5 estimates
//! ~5 minutes at modern transfer rates); the follow-up deep sweeps
//! (arXiv:1103.2686) restart interrupted multi-hour generations instead of
//! recomputing. Format **version 4** supports exactly that workflow: the
//! file is a header plus an append-only sequence of per-level records,
//! with a small fixed-position trailer naming the completed prefix, so a
//! generation interrupted at level `k` loses only the in-flight level and
//! [`SearchTables::resume_checkpointed`] continues from the deepest
//! completed one.
//!
//! ```text
//! magic    8 B  "RVSYNTB4"
//! n        1 B  wire count (2..=4)
//! reserved 1 B  zero
//! lib_len  2 B  number of gates in the library (LE)
//! gates    lib_len B  (controls << 2) | target, bit 7 clear
//! model    4 × 8 B  per-control-count gate costs (LE; 1,1,1,1 = unit)
//! hdr_fnv  8 B  FNV-1a of every preceding byte (LE)
//! trailer  (fixed offset, rewritten in place after every level)
//!   levels       8 B  number of completed level records
//!   payload_end  8 B  file offset one past the last completed record
//!   trailer_fnv  8 B  FNV-1a of the 16 trailer bytes above
//! levels   append-only; for each completed level:
//!   cost    8 B (LE; strictly ascending from 0 — the bucket cost)
//!   count   8 B (LE)
//!   keys    count × 8 B (LE, sorted ascending)
//!   values  count × 1 B
//!   rec_fnv 8 B  FNV-1a of this record's preceding bytes
//! ```
//!
//! The checkpoint protocol is write-level → fsync → rewrite trailer →
//! fsync, so at any instant the bytes before `payload_end` form a valid
//! store and anything after it is an ignorable torn tail. Resuming
//! truncates the tail and appends, which keeps a resumed file
//! **byte-identical** to an uninterrupted run.
//!
//! Version 3 files ("RVSYNTB3", one whole-file checksum, not extendable)
//! are still loaded transparently; [`SearchTables::save_v3`] writes them
//! for downgrade compatibility.
//!
//! Loading validates everything it can cheaply validate: magic, header
//! ranges, gate encodings, permutation keys, key ordering, value records,
//! and the checksums. The hash table is rebuilt by reinsertion.
//!
//! Format **version 5** ("RVSYNTB5") is the mmap-friendly layout: the
//! same header as v4, then a checksummed meta block (level costs/counts,
//! table shapes, a section table), then page-aligned contiguous
//! little-endian sections — concatenated level keys, level values, the
//! hash table's slot arrays, and the invariant index's slot arrays and
//! prefilter bitmap:
//!
//! ```text
//! header   as v4, magic "RVSYNTB5"
//! meta     level_count, total_classes, hash/index shapes and
//!          empty-slot witnesses, per-level (cost, count) pairs,
//!          7 × (offset, byte_len, fnv) section descriptors, meta_fnv
//! S0..S6   4096-aligned: level keys (u64), level values (u8),
//!          fn keys (u64), fn values (u8), inv keys (u64),
//!          inv masks (u32), inv weight bitmap (u64)
//! ```
//!
//! A v5 load maps the file and borrows every array zero-copy
//! (milliseconds at any size; one physical copy shared by every process
//! serving the same store). The fast path eagerly verifies the header
//! and meta checksums, the section layout (recomputed from the counts,
//! so no descriptor can point outside the file or overlap), and the
//! empty-slot witnesses that guarantee probe termination; the bulk
//! section checksums are deferred to [`load_validated`] (`tables
//! verify`) and the upgrade path. The v5 bytes are a deterministic
//! function of the logical tables: the hash table is canonically rebuilt
//! at save time (sorted level-order insertion) and the invariant index
//! compacted, so equal tables always serialize identically.

use std::error::Error;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use revsynth_canon::Symmetries;
use revsynth_circuit::{CostModel, Gate, GateLib};
use revsynth_mmap::{ArcSlice, Region};
use revsynth_perm::Perm;
use revsynth_table::{FnTable, InvariantIndex};

use crate::info::{decode_stored, StoredGate, IDENTITY_BYTE};
use crate::tables::{Levels, SearchTables};
use crate::weighted::MAX_BUCKETS;

const MAGIC_V3: &[u8; 8] = b"RVSYNTB3";
const MAGIC_V4: &[u8; 8] = b"RVSYNTB4";
const MAGIC_V5: &[u8; 8] = b"RVSYNTB5";

/// Section alignment of the v5 layout: one page, so every mapped array
/// starts page- (and thus element-) aligned.
const V5_ALIGN: u64 = 4096;
/// Number of data sections in a v5 file (see the module docs).
const V5_SECTIONS: usize = 7;
/// Fixed u64 fields at the start of the v5 meta block.
const V5_META_FIXED: usize = 10;

/// Buffer size for the load/save/digest paths. The default 8 KiB
/// `BufReader` turned a 190 MB k = 7 load into ~24k syscalls; 1 MiB
/// keeps the sequential scan I/O-bound instead of syscall-bound.
const IO_BUF: usize = 1 << 20;

/// Error returned by [`SearchTables::load`], [`save`](SearchTables::save)
/// and the checkpoint/resume paths. Always names the offending file so a
/// CI failure (or an operator) can tell *which* artifact is bad.
#[derive(Debug)]
pub struct StoreError {
    path: PathBuf,
    kind: StoreErrorKind,
}

/// What went wrong with a table store file (see [`StoreError`]).
#[derive(Debug)]
pub enum StoreErrorKind {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with a known format magic.
    BadMagic,
    /// A header field is out of range.
    BadHeader(String),
    /// The fixed-position checkpoint trailer is truncated or inconsistent.
    BadTrailer(String),
    /// The body is structurally invalid (bad gate, bad key, bad record…).
    Corrupt(String),
    /// An FNV-1a checksum does not match the content it covers.
    ChecksumMismatch,
}

impl StoreError {
    pub(crate) fn new(path: &Path, kind: StoreErrorKind) -> Self {
        StoreError {
            path: path.to_path_buf(),
            kind,
        }
    }

    /// The file the failed operation was reading or writing.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The failure itself, independent of which file it hit.
    #[must_use]
    pub fn kind(&self) -> &StoreErrorKind {
        &self.kind
    }
}

impl fmt::Display for StoreErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreErrorKind::Io(e) => write!(f, "i/o error: {e}"),
            StoreErrorKind::BadMagic => write!(f, "not a revsynth table store (bad magic)"),
            StoreErrorKind::BadHeader(msg) => write!(f, "invalid header: {msg}"),
            StoreErrorKind::BadTrailer(msg) => write!(f, "invalid checkpoint trailer: {msg}"),
            StoreErrorKind::Corrupt(msg) => write!(f, "corrupted store: {msg}"),
            StoreErrorKind::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table store {}: {}", self.path.display(), self.kind)
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            StoreErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreErrorKind {
    fn from(e: io::Error) -> Self {
        StoreErrorKind::Io(e)
    }
}

/// Incremental FNV-1a 64-bit hasher (tiny, dependency-free; collisions are
/// irrelevant here — the checksums only guard against torn/corrupted
/// files, not adversaries).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn fnv1a_of(bytes: &[u8]) -> u64 {
    let mut fnv = Fnv1a::new();
    fnv.update(bytes);
    fnv.finish()
}

/// FNV-1a 64-bit digest of an entire file's bytes — the "store digest"
/// the CI pipeline pins: resumed and uninterrupted generations must agree
/// on it bit for bit.
///
/// # Errors
///
/// Propagates I/O failures (with the path attached).
pub fn file_digest<P: AsRef<Path>>(path: P) -> Result<u64, StoreError> {
    let path = path.as_ref();
    let wrap = |e: io::Error| StoreError::new(path, e.into());
    let mut reader = BufReader::with_capacity(IO_BUF, File::open(path).map_err(wrap)?);
    let mut fnv = Fnv1a::new();
    let mut buf = [0u8; 1 << 16];
    loop {
        let got = reader.read(&mut buf).map_err(wrap)?;
        if got == 0 {
            return Ok(fnv.finish());
        }
        fnv.update(&buf[..got]);
    }
}

struct HashingWriter<W: Write> {
    inner: W,
    fnv: Fnv1a,
}

impl<W: Write> HashingWriter<W> {
    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.fnv.update(bytes);
        self.inner.write_all(bytes)
    }
    fn put_u64(&mut self, v: u64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }
}

struct HashingReader<R: Read> {
    inner: R,
    fnv: Fnv1a,
    /// Bytes consumed through [`take`](Self::take) since construction —
    /// lets the v3 loader bound a level count by the bytes actually left
    /// in the file (checksum reads bypass `take` and are accounted for by
    /// the caller).
    consumed: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            fnv: Fnv1a::new(),
            consumed: 0,
        }
    }
    fn take(&mut self, buf: &mut [u8]) -> Result<(), StoreErrorKind> {
        self.inner.read_exact(buf)?;
        self.fnv.update(buf);
        self.consumed += buf.len() as u64;
        Ok(())
    }
    fn take_u64(&mut self) -> Result<u64, StoreErrorKind> {
        let mut b = [0u8; 8];
        self.take(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn take_u8(&mut self) -> Result<u8, StoreErrorKind> {
        let mut b = [0u8; 1];
        self.take(&mut b)?;
        Ok(b[0])
    }
    /// Restarts the running hash (v4 hashes each record independently).
    fn reset_fnv(&mut self) {
        self.fnv = Fnv1a::new();
    }
    fn fnv_value(&self) -> u64 {
        self.fnv.finish()
    }
}

// ---------------------------------------------------------------------------
// Shared header/level validation
// ---------------------------------------------------------------------------

/// Validates and decodes the gate-library bytes shared by v3 and v4.
fn decode_library(n: usize, bytes: &[u8]) -> Result<GateLib, StoreErrorKind> {
    let mut gates = Vec::with_capacity(bytes.len());
    for (i, &byte) in bytes.iter().enumerate() {
        if byte & 0x80 != 0 {
            return Err(StoreErrorKind::Corrupt(format!(
                "gate byte {i} has bit 7 set"
            )));
        }
        let gate = Gate::new((byte >> 2) & 0x0F, byte & 0x03)
            .map_err(|e| StoreErrorKind::Corrupt(format!("gate byte {i}: {e}")))?;
        if usize::from(gate.max_wire()) >= n {
            return Err(StoreErrorKind::Corrupt(format!(
                "gate {gate} touches a wire outside the {n}-wire domain"
            )));
        }
        gates.push(gate);
    }
    let lib = GateLib::from_gates(n, &gates);
    if lib.len() != bytes.len() {
        return Err(StoreErrorKind::Corrupt("duplicate gates in library".into()));
    }
    Ok(lib)
}

/// Validates a cost-model block: zero would violate `CostModel`'s
/// positivity invariant (and panic in `custom`); any positive cost a
/// writer could produce must round-trip — corruption is caught by the
/// checksums.
fn decode_model(costs: [u64; 4]) -> Result<CostModel, StoreErrorKind> {
    for (controls, &c) in costs.iter().enumerate() {
        if c == 0 {
            return Err(StoreErrorKind::BadHeader(format!(
                "zero gate cost for {controls} controls"
            )));
        }
    }
    Ok(CostModel::custom(costs))
}

/// Structural checks shared by both loaders for one level's keys/values.
fn check_level(i: usize, keys: &[Perm], values: &[u8]) -> Result<(), StoreErrorKind> {
    debug_assert_eq!(keys.len(), values.len());
    for (j, w) in keys.windows(2).enumerate() {
        if w[1] <= w[0] {
            return Err(StoreErrorKind::Corrupt(format!(
                "level {i} keys not strictly ascending at index {}",
                j + 1
            )));
        }
    }
    for (j, &byte) in values.iter().enumerate() {
        match decode_stored(byte) {
            Some(StoredGate::Identity) if i == 0 => {}
            Some(StoredGate::Gate { .. }) if i > 0 => {}
            _ => {
                return Err(StoreErrorKind::Corrupt(format!(
                    "level {i} value {j} (byte {byte:#04x}) is invalid for this level"
                )))
            }
        }
    }
    Ok(())
}

/// Assembles the loaded level pairs into `SearchTables`, rebuilding the
/// hash table by reinsertion (shared final step of both loaders).
fn assemble_loaded(
    lib: GateLib,
    model: CostModel,
    pairs: Vec<(Vec<Perm>, Vec<u8>)>,
    bucket_costs: Vec<u64>,
) -> Result<SearchTables, StoreErrorKind> {
    if pairs.is_empty() || pairs[0].0 != [Perm::identity()] || pairs[0].1 != [IDENTITY_BYTE] {
        return Err(StoreErrorKind::Corrupt(
            "level 0 must be exactly the identity".into(),
        ));
    }
    let n = lib.wires();
    let total: usize = pairs.iter().map(|(keys, _)| keys.len()).sum();
    let mut table = FnTable::for_entries(total);
    let mut levels = Vec::with_capacity(pairs.len());
    for (keys, values) in pairs {
        for (&key, &value) in keys.iter().zip(&values) {
            if !table.insert_if_absent(key, value) {
                return Err(StoreErrorKind::Corrupt(format!(
                    "duplicate representative {key} across levels"
                )));
            }
        }
        levels.push(keys);
    }
    Ok(SearchTables::assemble_weighted(
        lib,
        Symmetries::new(n),
        model,
        table,
        levels,
        bucket_costs,
    ))
}

// ---------------------------------------------------------------------------
// Version 3 (legacy): single whole-file checksum, not extendable
// ---------------------------------------------------------------------------

/// Writes the legacy v3 format (for downgrade compatibility; new code
/// writes v4 via [`save`]).
pub(crate) fn save_v3(tables: &SearchTables, path: &Path) -> Result<(), StoreError> {
    let wrap = |e: io::Error| StoreError::new(path, e.into());
    let file = File::create(path).map_err(wrap)?;
    let mut w = HashingWriter {
        inner: BufWriter::new(file),
        fnv: Fnv1a::new(),
    };
    let mut body = || -> io::Result<()> {
        w.put(MAGIC_V3)?;
        w.put(&[tables.lib.wires() as u8, tables.k as u8])?;
        let lib_len = u16::try_from(tables.lib.len()).expect("library fits u16");
        w.put(&lib_len.to_le_bytes())?;
        for (_, gate, _) in tables.lib.iter() {
            w.put(&[(gate.controls() << 2) | gate.target()])?;
        }
        for controls in 0..4 {
            w.put_u64(tables.model.cost_of_controls(controls))?;
        }
        for (i, level) in tables.levels.iter().enumerate() {
            w.put_u64(tables.bucket_costs[i])?;
            w.put_u64(level.len() as u64)?;
            for &rep in level {
                w.put_u64(rep.packed())?;
            }
            for &rep in level {
                let byte = tables
                    .table
                    .get(rep)
                    .expect("every level member is in the table");
                w.put(&[byte])?;
            }
        }
        let checksum = w.fnv.finish();
        w.inner.write_all(&checksum.to_le_bytes())?;
        w.inner.flush()
    };
    body().map_err(wrap)
}

/// Loads a v3 file; `r` is positioned just past the magic.
fn load_v3(
    mut r: HashingReader<BufReader<File>>,
    file_len: u64,
) -> Result<SearchTables, StoreErrorKind> {
    let n = usize::from(r.take_u8()?);
    let k = usize::from(r.take_u8()?);
    if !(2..=4).contains(&n) {
        return Err(StoreErrorKind::BadHeader(format!("wire count {n}")));
    }
    if k > 16 {
        return Err(StoreErrorKind::BadHeader(format!("depth k = {k}")));
    }
    let mut lib_len_bytes = [0u8; 2];
    r.take(&mut lib_len_bytes)?;
    let lib_len = usize::from(u16::from_le_bytes(lib_len_bytes));
    if lib_len == 0 || lib_len > 127 {
        return Err(StoreErrorKind::BadHeader(format!("library size {lib_len}")));
    }
    let mut gate_bytes = vec![0u8; lib_len];
    r.take(&mut gate_bytes)?;
    let lib = decode_library(n, &gate_bytes)?;
    let mut costs = [0u64; 4];
    for slot in costs.iter_mut() {
        *slot = r.take_u64()?;
    }
    let model = decode_model(costs)?;

    let mut bucket_costs: Vec<u64> = Vec::with_capacity(k + 1);
    let mut pairs: Vec<(Vec<Perm>, Vec<u8>)> = Vec::with_capacity(k + 1);
    for i in 0..=k {
        let bucket_cost = r.take_u64()?;
        let ascending = match bucket_costs.last() {
            None => bucket_cost == 0,
            Some(&prev) => bucket_cost > prev,
        };
        if !ascending {
            return Err(StoreErrorKind::Corrupt(format!(
                "bucket {i} cost {bucket_cost} does not ascend strictly from 0"
            )));
        }
        bucket_costs.push(bucket_cost);
        // Everything after the (unread) count field except the trailing
        // whole-file checksum is level bodies at 9 bytes per entry.
        let body_bytes = file_len.saturating_sub(r.consumed + 8 + 8);
        let count = read_count(&mut r, i, body_bytes)?;
        let (keys, values) = read_level_body(&mut r, i, count)?;
        pairs.push((keys, values));
    }

    let computed = r.fnv_value();
    let mut checksum_bytes = [0u8; 8];
    r.inner.read_exact(&mut checksum_bytes)?;
    if u64::from_le_bytes(checksum_bytes) != computed {
        return Err(StoreErrorKind::ChecksumMismatch);
    }
    let mut trailing = [0u8; 1];
    if r.inner.read(&mut trailing)? != 0 {
        return Err(StoreErrorKind::Corrupt(
            "trailing bytes after checksum".into(),
        ));
    }

    let mut tables = assemble_loaded(lib, model, pairs, bucket_costs)?;
    tables.source_format = Some(3);
    Ok(tables)
}

/// Reads and range-checks a level's count field. `body_bytes` is the
/// number of file bytes that could possibly hold this level's keys and
/// values (9 bytes per entry), so a corrupted count yields a typed error
/// before `Vec::with_capacity` can attempt a multi-terabyte allocation.
fn read_count<R: Read>(
    r: &mut HashingReader<R>,
    i: usize,
    body_bytes: u64,
) -> Result<usize, StoreErrorKind> {
    let count = r.take_u64()?;
    let max = body_bytes / 9;
    if count > max {
        return Err(StoreErrorKind::Corrupt(format!(
            "level {i} count {count} exceeds the {max} entries the remaining file bytes could hold"
        )));
    }
    usize::try_from(count)
        .map_err(|_| StoreErrorKind::Corrupt(format!("level {i} count overflows")))
}

/// Reads one level's keys and values and runs the structural checks.
fn read_level_body<R: Read>(
    r: &mut HashingReader<R>,
    i: usize,
    count: usize,
) -> Result<(Vec<Perm>, Vec<u8>), StoreErrorKind> {
    let mut keys = Vec::with_capacity(count);
    for j in 0..count {
        let packed = r.take_u64()?;
        let perm = Perm::from_packed(packed)
            .map_err(|e| StoreErrorKind::Corrupt(format!("level {i} key {j}: {e}")))?;
        keys.push(perm);
    }
    let mut values = vec![0u8; count];
    if count > 0 {
        r.take(&mut values)?;
    }
    check_level(i, &keys, &values)?;
    Ok((keys, values))
}

// ---------------------------------------------------------------------------
// Version 4: checkpointed, extendable in place
// ---------------------------------------------------------------------------

/// Encodes the header shared by v4 and v5: magic, n, reserved, library
/// size, gate bytes, cost model, header FNV.
fn encode_header(magic: &[u8; 8], lib: &GateLib, model: &CostModel) -> Vec<u8> {
    let mut header = Vec::with_capacity(64 + lib.len());
    header.extend_from_slice(magic);
    header.push(lib.wires() as u8);
    header.push(0); // reserved
    let lib_len = u16::try_from(lib.len()).expect("library fits u16");
    header.extend_from_slice(&lib_len.to_le_bytes());
    for (_, gate, _) in lib.iter() {
        header.push((gate.controls() << 2) | gate.target());
    }
    for controls in 0..4 {
        header.extend_from_slice(&model.cost_of_controls(controls).to_le_bytes());
    }
    let header_fnv = fnv1a_of(&header);
    header.extend_from_slice(&header_fnv.to_le_bytes());
    header
}

/// Size of the fixed trailer: levels (8) + payload_end (8) + fnv (8).
const TRAILER_LEN: u64 = 24;

/// Byte layout of the v4 header for a given library size.
fn trailer_offset(lib_len: usize) -> u64 {
    // magic 8 + n 1 + reserved 1 + lib_len 2 + gates + model 32 + fnv 8
    52 + lib_len as u64
}

fn encode_trailer(levels: u64, payload_end: u64) -> [u8; TRAILER_LEN as usize] {
    let mut out = [0u8; TRAILER_LEN as usize];
    out[..8].copy_from_slice(&levels.to_le_bytes());
    out[8..16].copy_from_slice(&payload_end.to_le_bytes());
    let fnv = fnv1a_of(&out[..16]);
    out[16..].copy_from_slice(&fnv.to_le_bytes());
    out
}

/// v4 metadata carried alongside a loaded `SearchTables` so a resume can
/// pick up writing where the completed prefix ends.
pub(crate) struct V4Meta {
    pub(crate) trailer_offset: u64,
    pub(crate) payload_end: u64,
    pub(crate) levels_complete: u64,
}

/// Incremental writer of the v4 format: create (or resume) a store, then
/// append one record per completed level. With `durable` set, every
/// append is write → fsync → rewrite trailer → fsync, so an interrupt at
/// any instant leaves a loadable store holding every completed level.
pub(crate) struct CheckpointWriter {
    path: PathBuf,
    file: File,
    trailer_offset: u64,
    payload_end: u64,
    levels_complete: u64,
    durable: bool,
}

impl CheckpointWriter {
    /// Creates (truncating) a fresh v4 store holding the header and an
    /// empty-prefix trailer; level records follow via
    /// [`append_level`](Self::append_level).
    pub(crate) fn create(
        path: &Path,
        lib: &GateLib,
        model: &CostModel,
        durable: bool,
    ) -> Result<Self, StoreError> {
        let wrap = |e: io::Error| StoreError::new(path, e.into());
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(wrap)?;
        let mut header = encode_header(MAGIC_V4, lib, model);
        let trailer_offset = trailer_offset(lib.len());
        debug_assert_eq!(header.len() as u64, trailer_offset);
        let payload_end = trailer_offset + TRAILER_LEN;
        header.extend_from_slice(&encode_trailer(0, payload_end));
        let mut w = BufWriter::new(&file);
        w.write_all(&header).map_err(wrap)?;
        w.flush().map_err(wrap)?;
        drop(w);
        if durable {
            file.sync_data().map_err(wrap)?;
        }
        Ok(CheckpointWriter {
            path: path.to_path_buf(),
            file,
            trailer_offset,
            payload_end,
            levels_complete: 0,
            durable,
        })
    }

    /// Reopens an existing v4 store for appending: loads it, drops any
    /// torn tail beyond the trailer's `payload_end`, and positions the
    /// writer after the last completed level.
    pub(crate) fn resume(path: &Path, durable: bool) -> Result<(SearchTables, Self), StoreError> {
        let (tables, meta) = load_v4_with_meta(path)?;
        let wrap = |e: io::Error| StoreError::new(path, e.into());
        let file = OpenOptions::new().write(true).open(path).map_err(wrap)?;
        // Drop the torn in-flight level (if any) so appended levels land
        // exactly where an uninterrupted run would have put them.
        file.set_len(meta.payload_end).map_err(wrap)?;
        if durable {
            file.sync_data().map_err(wrap)?;
        }
        Ok((
            tables,
            CheckpointWriter {
                path: path.to_path_buf(),
                file,
                trailer_offset: meta.trailer_offset,
                payload_end: meta.payload_end,
                levels_complete: meta.levels_complete,
                durable,
            },
        ))
    }

    /// Appends one completed level (cost bucket) and republishes the
    /// trailer. On return (durable mode) the record is on disk and the
    /// store loads with this level included.
    pub(crate) fn append_level(
        &mut self,
        cost: u64,
        level: &[Perm],
        table: &FnTable,
    ) -> Result<(), StoreError> {
        let wrap = |e: io::Error| StoreError::new(&self.path, e.into());
        (&self.file)
            .seek(SeekFrom::Start(self.payload_end))
            .map_err(wrap)?;
        let mut w = HashingWriter {
            inner: BufWriter::new(&self.file),
            fnv: Fnv1a::new(),
        };
        let mut body = || -> io::Result<()> {
            w.put_u64(cost)?;
            w.put_u64(level.len() as u64)?;
            for &rep in level {
                w.put_u64(rep.packed())?;
            }
            for &rep in level {
                let byte = table.get(rep).expect("every level member is in the table");
                w.put(&[byte])?;
            }
            let rec_fnv = w.fnv.finish();
            w.inner.write_all(&rec_fnv.to_le_bytes())?;
            w.inner.flush()
        };
        body().map_err(wrap)?;
        if self.durable {
            self.file.sync_data().map_err(wrap)?;
        }
        self.payload_end += 24 + 9 * level.len() as u64;
        self.levels_complete += 1;
        (&self.file)
            .seek(SeekFrom::Start(self.trailer_offset))
            .map_err(wrap)?;
        (&self.file)
            .write_all(&encode_trailer(self.levels_complete, self.payload_end))
            .map_err(wrap)?;
        if self.durable {
            self.file.sync_data().map_err(wrap)?;
        }
        Ok(())
    }
}

/// One-shot v4 write of fully built tables (same bytes as checkpointed
/// generation of the same tables, minus the fsyncs).
pub(crate) fn save(tables: &SearchTables, path: &Path) -> Result<(), StoreError> {
    let mut w = CheckpointWriter::create(path, &tables.lib, &tables.model, false)?;
    for (i, level) in tables.levels.iter().enumerate() {
        w.append_level(tables.bucket_costs[i], level, &tables.table)?;
    }
    Ok(())
}

/// Reads and validates the v4 header, returning `(lib, model)` and
/// leaving `r` positioned at the trailer.
fn read_v4_header(
    r: &mut HashingReader<impl Read>,
) -> Result<(GateLib, CostModel), StoreErrorKind> {
    let n = usize::from(r.take_u8()?);
    let reserved = r.take_u8()?;
    if !(2..=4).contains(&n) {
        return Err(StoreErrorKind::BadHeader(format!("wire count {n}")));
    }
    if reserved != 0 {
        return Err(StoreErrorKind::BadHeader(format!(
            "reserved byte {reserved:#04x} is nonzero"
        )));
    }
    let mut lib_len_bytes = [0u8; 2];
    r.take(&mut lib_len_bytes)?;
    let lib_len = usize::from(u16::from_le_bytes(lib_len_bytes));
    if lib_len == 0 || lib_len > 127 {
        return Err(StoreErrorKind::BadHeader(format!("library size {lib_len}")));
    }
    let mut gate_bytes = vec![0u8; lib_len];
    r.take(&mut gate_bytes)?;
    let lib = decode_library(n, &gate_bytes)?;
    let mut costs = [0u64; 4];
    for slot in costs.iter_mut() {
        *slot = r.take_u64()?;
    }
    let model = decode_model(costs)?;
    let computed = r.fnv_value();
    let mut fnv_bytes = [0u8; 8];
    r.inner.read_exact(&mut fnv_bytes)?;
    if u64::from_le_bytes(fnv_bytes) != computed {
        return Err(StoreErrorKind::ChecksumMismatch);
    }
    Ok((lib, model))
}

/// Reads and validates the trailer, returning `(levels, payload_end)`.
fn read_trailer(inner: &mut impl Read) -> Result<(u64, u64), StoreErrorKind> {
    let mut trailer = [0u8; TRAILER_LEN as usize];
    inner.read_exact(&mut trailer).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreErrorKind::BadTrailer("file truncated inside the trailer".into())
        } else {
            e.into()
        }
    })?;
    let fnv = u64::from_le_bytes(trailer[16..24].try_into().expect("8 bytes"));
    if fnv != fnv1a_of(&trailer[..16]) {
        return Err(StoreErrorKind::BadTrailer(
            "trailer checksum mismatch (torn or corrupted checkpoint)".into(),
        ));
    }
    let levels = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
    let payload_end = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));
    Ok((levels, payload_end))
}

fn load_v4_with_meta(path: &Path) -> Result<(SearchTables, V4Meta), StoreError> {
    let kind_err = |kind: StoreErrorKind| StoreError::new(path, kind);
    let file = File::open(path).map_err(|e| kind_err(e.into()))?;
    let file_len = file.metadata().map_err(|e| kind_err(e.into()))?.len();
    let mut r = HashingReader::new(BufReader::with_capacity(IO_BUF, file));
    let mut magic = [0u8; 8];
    r.take(&mut magic).map_err(kind_err)?;
    if &magic != MAGIC_V4 {
        // A v3 file is a *valid store* that merely predates checkpointing;
        // say so instead of "bad magic".
        if &magic == MAGIC_V3 {
            return Err(kind_err(StoreErrorKind::BadHeader(
                "version 3 stores cannot be extended in place; \
                 load and re-save to upgrade to v4"
                    .into(),
            )));
        }
        return Err(kind_err(StoreErrorKind::BadMagic));
    }
    load_v4_body(&mut r, file_len).map_err(kind_err)
}

fn load_v4_body(
    r: &mut HashingReader<BufReader<File>>,
    file_len: u64,
) -> Result<(SearchTables, V4Meta), StoreErrorKind> {
    let (lib, model) = read_v4_header(r)?;
    let trailer_offset = trailer_offset(lib.len());
    let (levels_complete, payload_end) = read_trailer(&mut r.inner)?;
    let unit = model == CostModel::unit();
    let max_levels = if unit { 17 } else { MAX_BUCKETS as u64 };
    if levels_complete == 0 || levels_complete > max_levels {
        return Err(StoreErrorKind::BadTrailer(format!(
            "{levels_complete} completed levels is outside 1..={max_levels}"
        )));
    }
    let payload_start = trailer_offset + TRAILER_LEN;
    if payload_end < payload_start || payload_end > file_len {
        return Err(StoreErrorKind::BadTrailer(format!(
            "payload end {payload_end} is outside the file (length {file_len})"
        )));
    }

    let mut offset = payload_start;
    let mut bucket_costs: Vec<u64> = Vec::with_capacity(levels_complete as usize);
    let mut pairs: Vec<(Vec<Perm>, Vec<u8>)> = Vec::with_capacity(levels_complete as usize);
    for i in 0..levels_complete as usize {
        r.reset_fnv();
        let cost = r.take_u64()?;
        let ascending = match bucket_costs.last() {
            None => cost == 0,
            Some(&prev) => cost > prev,
        };
        if !ascending {
            return Err(StoreErrorKind::Corrupt(format!(
                "bucket {i} cost {cost} does not ascend strictly from 0"
            )));
        }
        if unit && cost != i as u64 {
            return Err(StoreErrorKind::Corrupt(format!(
                "unit-model bucket {i} labeled cost {cost}"
            )));
        }
        bucket_costs.push(cost);
        // The record is cost (8, read) + count (8) + bodies + fnv (8):
        // bodies can occupy at most what's left before payload_end.
        let body_bytes = payload_end.saturating_sub(offset + 24);
        let count = read_count(r, i, body_bytes)?;
        let record_len = 24 + 9 * count as u64;
        if offset + record_len > payload_end {
            return Err(StoreErrorKind::Corrupt(format!(
                "level {i} record overruns the checkpointed payload"
            )));
        }
        let (keys, values) = read_level_body(r, i, count)?;
        let computed = r.fnv_value();
        let mut fnv_bytes = [0u8; 8];
        r.inner.read_exact(&mut fnv_bytes)?;
        if u64::from_le_bytes(fnv_bytes) != computed {
            return Err(StoreErrorKind::ChecksumMismatch);
        }
        offset += record_len;
        pairs.push((keys, values));
    }
    if offset != payload_end {
        return Err(StoreErrorKind::BadTrailer(format!(
            "completed records end at {offset}, trailer says {payload_end}"
        )));
    }
    // Bytes beyond payload_end are a torn in-flight level: legal, ignored.

    let mut tables = assemble_loaded(lib, model, pairs, bucket_costs)?;
    tables.source_format = Some(4);
    Ok((
        tables,
        V4Meta {
            trailer_offset,
            payload_end,
            levels_complete,
        },
    ))
}

/// Loads any format, dispatching on the magic: v5 is mapped zero-copy,
/// v3/v4 are scanned and rebuilt.
pub(crate) fn load(path: &Path) -> Result<SearchTables, StoreError> {
    let kind_err = |kind: StoreErrorKind| StoreError::new(path, kind);
    let file = File::open(path).map_err(|e| kind_err(e.into()))?;
    let file_len = file.metadata().map_err(|e| kind_err(e.into()))?.len();
    let mut r = HashingReader::new(BufReader::with_capacity(IO_BUF, file));
    let mut magic = [0u8; 8];
    r.take(&mut magic).map_err(kind_err)?;
    if &magic == MAGIC_V5 {
        drop(r);
        return load_v5(path, false);
    }
    if &magic == MAGIC_V4 {
        return load_v4_body(&mut r, file_len)
            .map(|(tables, _)| tables)
            .map_err(kind_err);
    }
    if &magic == MAGIC_V3 {
        return load_v3(r, file_len).map_err(kind_err);
    }
    Err(kind_err(StoreErrorKind::BadMagic))
}

/// Loads any format with *every* check enabled. For v5 this verifies all
/// section checksums and re-runs the structural validation the fast
/// mapped load defers; for v3/v4 it is the ordinary (always-validating)
/// load. Backs `tables verify` and the upgrade path.
pub(crate) fn load_validated(path: &Path) -> Result<SearchTables, StoreError> {
    let kind_err = |kind: StoreErrorKind| StoreError::new(path, kind);
    let mut magic = [0u8; 8];
    {
        let mut file = File::open(path).map_err(|e| kind_err(e.into()))?;
        file.read_exact(&mut magic)
            .map_err(|e| kind_err(e.into()))?;
    }
    if &magic == MAGIC_V5 {
        load_v5(path, true)
    } else {
        load(path)
    }
}

// ---------------------------------------------------------------------------
// Version 5: mmap-friendly fixed layout, zero-copy load
// ---------------------------------------------------------------------------

/// Rounds `offset` up to the next multiple of `align` (a power of two),
/// with overflow reported as `None`.
fn align_up(offset: u64, align: u64) -> Option<u64> {
    debug_assert!(align.is_power_of_two());
    offset.checked_add(align - 1).map(|v| v & !(align - 1))
}

fn fnv_of_u64_iter(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut fnv = Fnv1a::new();
    for v in words {
        fnv.update(&v.to_le_bytes());
    }
    fnv.finish()
}

fn write_u64s<W: Write>(w: &mut W, words: impl IntoIterator<Item = u64>) -> io::Result<()> {
    const CHUNK: usize = 8 << 12;
    let mut buf = Vec::with_capacity(CHUNK);
    for v in words {
        buf.extend_from_slice(&v.to_le_bytes());
        if buf.len() >= CHUNK {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)
}

fn write_u32s<W: Write>(w: &mut W, words: impl IntoIterator<Item = u32>) -> io::Result<()> {
    const CHUNK: usize = 4 << 12;
    let mut buf = Vec::with_capacity(CHUNK);
    for v in words {
        buf.extend_from_slice(&v.to_le_bytes());
        if buf.len() >= CHUNK {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)
}

fn write_zeros<W: Write>(w: &mut W, n: u64) -> io::Result<()> {
    const ZEROS: [u8; 4096] = [0; 4096];
    let mut left = n;
    while left > 0 {
        let chunk = left.min(ZEROS.len() as u64) as usize;
        w.write_all(&ZEROS[..chunk])?;
        left -= chunk as u64;
    }
    Ok(())
}

/// Byte lengths of the seven v5 sections, in file order, from the table
/// shapes. `None` on (corrupt-meta) overflow.
fn v5_section_lens(
    total: u64,
    fn_cap: u64,
    inv_cap: u64,
    weight_words: u64,
) -> Option<[u64; V5_SECTIONS]> {
    Some([
        total.checked_mul(8)?,
        total,
        fn_cap.checked_mul(8)?,
        fn_cap,
        inv_cap.checked_mul(8)?,
        inv_cap.checked_mul(4)?,
        weight_words.checked_mul(8)?,
    ])
}

/// Section offsets and the exact total file length for the given header
/// length and section lengths. `None` on overflow.
fn v5_layout(
    header_len: u64,
    level_count: u64,
    lens: &[u64; V5_SECTIONS],
) -> Option<([u64; V5_SECTIONS], u64)> {
    let meta_len = 8 * (V5_META_FIXED as u64) + 16 * level_count + 24 * (V5_SECTIONS as u64) + 8;
    let mut offsets = [0u64; V5_SECTIONS];
    let mut end = header_len.checked_add(meta_len)?;
    for (slot, &len) in offsets.iter_mut().zip(lens) {
        *slot = align_up(end, V5_ALIGN)?;
        end = slot.checked_add(len)?;
    }
    Some((offsets, end))
}

/// Writes `tables` in the v5 format. The bytes are a pure function of
/// the logical contents: the hash table is canonically rebuilt (sorted
/// level-order insertion at the canonical capacity) and the invariant
/// index compacted, so any two equal tables — generated, loaded, or
/// upgraded — produce identical files.
pub(crate) fn save_v5(tables: &SearchTables, path: &Path) -> Result<(), StoreError> {
    write_v5(tables, path, false)
}

fn write_v5(tables: &SearchTables, path: &Path, durable: bool) -> Result<(), StoreError> {
    let wrap = |e: io::Error| StoreError::new(path, e.into());

    let total = tables.levels.total();
    let level_values: Vec<Vec<u8>> = tables
        .levels
        .iter()
        .map(|level| {
            level
                .iter()
                .map(|&rep| {
                    tables
                        .table
                        .get(rep)
                        .expect("every level member is in the table")
                })
                .collect()
        })
        .collect();
    let mut fnt = FnTable::for_entries(total);
    for (level, values) in tables.levels.iter().zip(&level_values) {
        for (&rep, &value) in level.iter().zip(values) {
            fnt.insert_if_absent(rep, value);
        }
    }
    debug_assert_eq!(fnt.len(), total, "level lists hold distinct classes");
    let inv = tables.invariants.compact();

    let (fn_keys, fn_values) = fnt.slot_arrays();
    let (inv_keys, inv_masks) = inv.slot_arrays();
    let (weight_bits, weight_bit_mask) = inv.weight_bitmap();

    let header = encode_header(MAGIC_V5, &tables.lib, &tables.model);
    let level_count = tables.levels.len() as u64;
    let lens = v5_section_lens(
        total as u64,
        fn_keys.len() as u64,
        inv_keys.len() as u64,
        weight_bits.len() as u64,
    )
    .expect("in-memory table sizes cannot overflow u64");
    let (offsets, _file_len) = v5_layout(header.len() as u64, level_count, &lens)
        .expect("in-memory table sizes cannot overflow u64");

    // Checksum pass: hash exactly the bytes the write pass will emit.
    let level_keys = || {
        tables
            .levels
            .iter()
            .flat_map(|l| l.iter().map(|r| r.packed()))
    };
    let fnvs: [u64; V5_SECTIONS] = [
        fnv_of_u64_iter(level_keys()),
        {
            let mut fnv = Fnv1a::new();
            for values in &level_values {
                fnv.update(values);
            }
            fnv.finish()
        },
        fnv_of_u64_iter(fn_keys.iter().copied()),
        fnv1a_of(fn_values),
        fnv_of_u64_iter(inv_keys.iter().copied()),
        {
            let mut fnv = Fnv1a::new();
            for &m in inv_masks {
                fnv.update(&m.to_le_bytes());
            }
            fnv.finish()
        },
        fnv_of_u64_iter(weight_bits.iter().copied()),
    ];

    let mut meta = Vec::with_capacity(8 * V5_META_FIXED + 16 * level_count as usize + 176);
    for v in [
        level_count,
        total as u64,
        fnt.len() as u64,
        fn_keys.len() as u64,
        fnt.first_empty_slot() as u64,
        inv.len() as u64,
        inv_keys.len() as u64,
        inv.first_empty_slot() as u64,
        weight_bits.len() as u64,
        weight_bit_mask,
    ] {
        meta.extend_from_slice(&v.to_le_bytes());
    }
    for (i, level) in tables.levels.iter().enumerate() {
        meta.extend_from_slice(&tables.bucket_costs[i].to_le_bytes());
        meta.extend_from_slice(&(level.len() as u64).to_le_bytes());
    }
    for i in 0..V5_SECTIONS {
        meta.extend_from_slice(&offsets[i].to_le_bytes());
        meta.extend_from_slice(&lens[i].to_le_bytes());
        meta.extend_from_slice(&fnvs[i].to_le_bytes());
    }
    let meta_fnv = fnv1a_of(&meta);
    meta.extend_from_slice(&meta_fnv.to_le_bytes());

    let file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)
        .map_err(wrap)?;
    let mut w = BufWriter::with_capacity(IO_BUF, &file);
    let mut body = || -> io::Result<()> {
        w.write_all(&header)?;
        w.write_all(&meta)?;
        let mut pos = (header.len() + meta.len()) as u64;
        write_zeros(&mut w, offsets[0] - pos)?;
        write_u64s(&mut w, level_keys())?;
        pos = offsets[0] + lens[0];
        write_zeros(&mut w, offsets[1] - pos)?;
        for values in &level_values {
            w.write_all(values)?;
        }
        pos = offsets[1] + lens[1];
        write_zeros(&mut w, offsets[2] - pos)?;
        write_u64s(&mut w, fn_keys.iter().copied())?;
        pos = offsets[2] + lens[2];
        write_zeros(&mut w, offsets[3] - pos)?;
        w.write_all(fn_values)?;
        pos = offsets[3] + lens[3];
        write_zeros(&mut w, offsets[4] - pos)?;
        write_u64s(&mut w, inv_keys.iter().copied())?;
        pos = offsets[4] + lens[4];
        write_zeros(&mut w, offsets[5] - pos)?;
        write_u32s(&mut w, inv_masks.iter().copied())?;
        pos = offsets[5] + lens[5];
        write_zeros(&mut w, offsets[6] - pos)?;
        write_u64s(&mut w, weight_bits.iter().copied())?;
        w.flush()
    };
    body().map_err(wrap)?;
    drop(w);
    if durable {
        file.sync_data().map_err(wrap)?;
    }
    Ok(())
}

/// Bounds-checked little-endian field reader over the mapped bytes.
struct ByteCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl ByteCursor<'_> {
    fn u64(&mut self) -> Result<u64, StoreErrorKind> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                StoreErrorKind::Corrupt("file truncated inside the meta block".into())
            })?;
        let v = u64::from_le_bytes(self.bytes[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }
}

/// Loads a v5 store by mapping it and borrowing every array zero-copy.
///
/// The fast path (`validate_all == false`) verifies the header and meta
/// checksums, recomputes the whole section layout from the counts
/// (rejecting any descriptor that disagrees — no offset can point
/// outside the file, overlap another section, or imply an oversized
/// allocation), and checks the empty-slot witnesses and the level-0
/// identity. `validate_all` adds every section checksum plus the full
/// structural validation the v3/v4 loaders perform.
fn load_v5(path: &Path, validate_all: bool) -> Result<SearchTables, StoreError> {
    let kind_err = |kind: StoreErrorKind| StoreError::new(path, kind);
    if cfg!(target_endian = "big") {
        return Err(kind_err(StoreErrorKind::BadHeader(
            "v5 stores are little-endian zero-copy and this host is big-endian; \
             load the store on a little-endian host or use a v4 store"
                .into(),
        )));
    }
    let mut file = File::open(path).map_err(|e| kind_err(e.into()))?;
    let region = Arc::new(Region::map_file(&mut file).map_err(|e| kind_err(e.into()))?);
    drop(file);
    load_v5_mapped(&region, validate_all).map_err(kind_err)
}

#[allow(clippy::too_many_lines)]
fn load_v5_mapped(
    region: &Arc<Region>,
    validate_all: bool,
) -> Result<SearchTables, StoreErrorKind> {
    let bytes = region.bytes();
    if bytes.len() < 8 {
        return Err(StoreErrorKind::BadMagic);
    }
    if &bytes[..8] != MAGIC_V5 {
        return Err(StoreErrorKind::BadMagic);
    }
    let mut r = HashingReader::new(&bytes[8..]);
    r.fnv.update(MAGIC_V5);
    let (lib, model) = read_v4_header(&mut r)?;
    let header_len = 52 + lib.len();

    // --- meta block ---
    let mut c = ByteCursor {
        bytes,
        pos: header_len,
    };
    let level_count = c.u64()?;
    let total_classes = c.u64()?;
    let fn_len = c.u64()?;
    let fn_cap = c.u64()?;
    let fn_empty = c.u64()?;
    let inv_len = c.u64()?;
    let inv_cap = c.u64()?;
    let inv_empty = c.u64()?;
    let weight_words = c.u64()?;
    let weight_bit_mask = c.u64()?;
    let unit = model == CostModel::unit();
    let max_levels = if unit { 17 } else { MAX_BUCKETS as u64 };
    if level_count == 0 || level_count > max_levels {
        return Err(StoreErrorKind::BadHeader(format!(
            "{level_count} levels is outside 1..={max_levels}"
        )));
    }
    let mut bucket_costs: Vec<u64> = Vec::with_capacity(level_count as usize);
    let mut counts: Vec<u64> = Vec::with_capacity(level_count as usize);
    for i in 0..level_count as usize {
        let cost = c.u64()?;
        let count = c.u64()?;
        let ascending = match bucket_costs.last() {
            None => cost == 0,
            Some(&prev) => cost > prev,
        };
        if !ascending {
            return Err(StoreErrorKind::Corrupt(format!(
                "bucket {i} cost {cost} does not ascend strictly from 0"
            )));
        }
        if unit && cost != i as u64 {
            return Err(StoreErrorKind::Corrupt(format!(
                "unit-model bucket {i} labeled cost {cost}"
            )));
        }
        bucket_costs.push(cost);
        counts.push(count);
    }
    let mut descs = [(0u64, 0u64, 0u64); V5_SECTIONS];
    for d in &mut descs {
        *d = (c.u64()?, c.u64()?, c.u64()?);
    }
    let hashed_end = c.pos;
    let stored_meta_fnv = c.u64()?;
    if fnv1a_of(&bytes[header_len..hashed_end]) != stored_meta_fnv {
        return Err(StoreErrorKind::ChecksumMismatch);
    }

    // --- layout: recompute from the counts and require exact agreement ---
    let total = counts.iter().try_fold(0u64, |acc, &c| {
        acc.checked_add(c)
            .ok_or_else(|| StoreErrorKind::Corrupt("level counts overflow".into()))
    })?;
    if total != total_classes {
        return Err(StoreErrorKind::Corrupt(format!(
            "level counts sum to {total}, meta says {total_classes}"
        )));
    }
    if fn_len != total_classes {
        return Err(StoreErrorKind::Corrupt(format!(
            "hash table holds {fn_len} entries for {total_classes} classes"
        )));
    }
    let lens = v5_section_lens(total_classes, fn_cap, inv_cap, weight_words)
        .ok_or_else(|| StoreErrorKind::Corrupt("section lengths overflow".into()))?;
    let (offsets, file_len) = v5_layout(header_len as u64, level_count, &lens)
        .ok_or_else(|| StoreErrorKind::Corrupt("section layout overflows".into()))?;
    if file_len != bytes.len() as u64 {
        return Err(StoreErrorKind::Corrupt(format!(
            "file length {} does not match the {file_len} bytes the layout requires",
            bytes.len()
        )));
    }
    for (i, &(off, len, _fnv)) in descs.iter().enumerate() {
        if (off, len) != (offsets[i], lens[i]) {
            return Err(StoreErrorKind::Corrupt(format!(
                "section {i} descriptor ({off}, {len}) does not match the recomputed \
                 layout ({}, {})",
                offsets[i], lens[i]
            )));
        }
    }

    // --- borrow the sections ---
    fn slice_err(what: &'static str) -> impl FnOnce(revsynth_mmap::SliceError) -> StoreErrorKind {
        move |e| StoreErrorKind::Corrupt(format!("{what}: {e}"))
    }
    let total_us = usize::try_from(total_classes)
        .map_err(|_| StoreErrorKind::Corrupt("class count overflows usize".into()))?;
    let level_keys = ArcSlice::<Perm>::new(Arc::clone(region), offsets[0] as usize, total_us)
        .map_err(slice_err("level keys"))?;
    let level_vals = ArcSlice::<u8>::new(Arc::clone(region), offsets[1] as usize, total_us)
        .map_err(slice_err("level values"))?;
    let fn_keys = ArcSlice::<u64>::new(Arc::clone(region), offsets[2] as usize, fn_cap as usize)
        .map_err(slice_err("hash keys"))?;
    let fn_vals = ArcSlice::<u8>::new(Arc::clone(region), offsets[3] as usize, fn_cap as usize)
        .map_err(slice_err("hash values"))?;
    let inv_keys = ArcSlice::<u64>::new(Arc::clone(region), offsets[4] as usize, inv_cap as usize)
        .map_err(slice_err("invariant keys"))?;
    let inv_masks = ArcSlice::<u32>::new(Arc::clone(region), offsets[5] as usize, inv_cap as usize)
        .map_err(slice_err("invariant masks"))?;
    let weight_bits = ArcSlice::<u64>::new(
        Arc::clone(region),
        offsets[6] as usize,
        weight_words as usize,
    )
    .map_err(slice_err("prefilter bitmap"))?;

    let mut level_slices = Vec::with_capacity(counts.len());
    let mut prefix = 0usize;
    for &count in &counts {
        let count = count as usize;
        level_slices.push(
            level_keys
                .slice(prefix, count)
                .map_err(slice_err("level sub-slice"))?,
        );
        prefix += count;
    }
    if level_slices[0].as_slice() != [Perm::identity()] || level_vals[0] != IDENTITY_BYTE {
        return Err(StoreErrorKind::Corrupt(
            "level 0 must be exactly the identity".into(),
        ));
    }

    let table = FnTable::from_mapped(
        fn_keys,
        fn_vals,
        fn_len as usize,
        usize::try_from(fn_empty)
            .map_err(|_| StoreErrorKind::Corrupt("empty-slot witness overflows".into()))?,
    )
    .map_err(|msg| StoreErrorKind::Corrupt(format!("hash table: {msg}")))?;
    let invariants = InvariantIndex::from_mapped(
        inv_keys,
        inv_masks,
        weight_bits,
        weight_bit_mask,
        inv_len as usize,
        usize::try_from(inv_empty)
            .map_err(|_| StoreErrorKind::Corrupt("empty-slot witness overflows".into()))?,
    )
    .map_err(|msg| StoreErrorKind::Corrupt(format!("invariant index: {msg}")))?;

    if validate_all {
        for &(off, len, fnv) in &descs {
            let section = &bytes[off as usize..(off + len) as usize];
            if fnv1a_of(section) != fnv {
                return Err(StoreErrorKind::ChecksumMismatch);
            }
        }
        // Alignment padding is not covered by any section checksum; it
        // must be all-zero so that every bit of the file is accounted
        // for (a flip anywhere is detected by *some* check here).
        let mut gap_start = hashed_end + 8;
        for i in 0..V5_SECTIONS {
            if bytes[gap_start..offsets[i] as usize]
                .iter()
                .any(|&b| b != 0)
            {
                return Err(StoreErrorKind::Corrupt(format!(
                    "nonzero padding before section {i}"
                )));
            }
            gap_start = (offsets[i] + lens[i]) as usize;
        }
        let mut prefix = 0usize;
        for (i, slice) in level_slices.iter().enumerate() {
            let keys = slice.as_slice();
            for (j, rep) in keys.iter().enumerate() {
                Perm::from_packed(rep.packed())
                    .map_err(|e| StoreErrorKind::Corrupt(format!("level {i} key {j}: {e}")))?;
            }
            let values = &level_vals[prefix..prefix + keys.len()];
            check_level(i, keys, values)?;
            for (&rep, &value) in keys.iter().zip(values) {
                if table.get(rep) != Some(value) {
                    return Err(StoreErrorKind::Corrupt(format!(
                        "level {i} representative {rep} missing from the hash table"
                    )));
                }
                if !invariants.admits(rep, i) {
                    return Err(StoreErrorKind::Corrupt(format!(
                        "level {i} representative {rep} rejected by the invariant index"
                    )));
                }
            }
            prefix += keys.len();
        }
        let (slot_keys, _) = table.slot_arrays();
        let nonempty = slot_keys.iter().filter(|&&k| k != u64::MAX).count() as u64;
        if nonempty != fn_len {
            return Err(StoreErrorKind::Corrupt(format!(
                "hash table holds {nonempty} occupied slots, meta says {fn_len}"
            )));
        }
        let (_, slot_masks) = invariants.slot_arrays();
        let inv_nonempty = slot_masks.iter().filter(|&&m| m != 0).count() as u64;
        if inv_nonempty != inv_len {
            return Err(StoreErrorKind::Corrupt(format!(
                "invariant index holds {inv_nonempty} occupied slots, meta says {inv_len}"
            )));
        }
    }

    let k = bucket_costs.len().saturating_sub(1);
    let sym = Symmetries::new(lib.wires());
    Ok(SearchTables {
        lib,
        sym,
        k,
        table,
        levels: Levels::from_mapped(level_slices),
        invariants,
        model,
        bucket_costs,
        source_format: Some(5),
    })
}

/// Upgrades the store at `path` to v5 in place: fully validates and
/// loads the existing store (any version), writes the canonical v5
/// bytes to a sibling temporary file, fsyncs, and atomically renames it
/// over the original. A crash leaves either the old or the new file
/// intact; open mappings of the old file keep working (the rename
/// unlinks the name, not the inode).
pub(crate) fn upgrade(path: &Path) -> Result<(), StoreError> {
    let tables = load_validated(path)?;
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".v5-tmp");
    let tmp = PathBuf::from(tmp);
    write_v5(&tables, &tmp, true).inspect_err(|_| {
        std::fs::remove_file(&tmp).ok();
    })?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        StoreError::new(path, e.into())
    })
}

/// Format-independent FNV-1a digest of the logical table contents:
/// wires, library, cost model, and every level's cost, keys and gate
/// records. Stores of the same tables in different formats agree on it.
pub(crate) fn content_digest(tables: &SearchTables) -> u64 {
    let mut fnv = Fnv1a::new();
    fnv.update(&[tables.lib.wires() as u8]);
    let lib_len = u16::try_from(tables.lib.len()).expect("library fits u16");
    fnv.update(&lib_len.to_le_bytes());
    for (_, gate, _) in tables.lib.iter() {
        fnv.update(&[(gate.controls() << 2) | gate.target()]);
    }
    for controls in 0..4 {
        fnv.update(&tables.model.cost_of_controls(controls).to_le_bytes());
    }
    for (i, level) in tables.levels.iter().enumerate() {
        fnv.update(&tables.bucket_costs[i].to_le_bytes());
        fnv.update(&(level.len() as u64).to_le_bytes());
        for &rep in level {
            fnv.update(&rep.packed().to_le_bytes());
        }
        for &rep in level {
            let byte = tables
                .table
                .get(rep)
                .expect("every level member is in the table");
            fnv.update(&[byte]);
        }
    }
    fnv.finish()
}

// ---------------------------------------------------------------------------
// Cheap store inspection (no key/value validation)
// ---------------------------------------------------------------------------

/// Summary of one level record as reported by [`SearchTables::peek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelInfo {
    /// The bucket cost labeling this level.
    pub cost: u64,
    /// Number of stored canonical representatives.
    pub classes: u64,
    /// Byte offset of the record in the file.
    pub offset: u64,
}

/// Header-and-trailer summary of a store file, gathered without reading
/// (or validating) the level bodies — cheap enough to poll while a
/// checkpointed generation is writing the same file.
#[derive(Debug, Clone)]
pub struct StoreInfo {
    /// Store format version (3, 4 or 5).
    pub version: u8,
    /// Wire count.
    pub wires: usize,
    /// The cost model the levels were bucketed under.
    pub model: CostModel,
    /// Per-level cost and class count, in file order.
    pub levels: Vec<LevelInfo>,
    /// One past the last completed level record (v4: from the trailer;
    /// v3: the checksum offset).
    pub payload_end: u64,
    /// Total file length; bytes in `payload_end..file_len` are a torn
    /// in-flight level on v4 files.
    pub file_len: u64,
}

impl StoreInfo {
    /// Total stored classes across all completed levels.
    #[must_use]
    pub fn total_classes(&self) -> u64 {
        self.levels.iter().map(|l| l.classes).sum()
    }
}

/// Walks the level records of any format without validating bodies.
pub(crate) fn peek(path: &Path) -> Result<StoreInfo, StoreError> {
    let kind_err = |kind: StoreErrorKind| StoreError::new(path, kind);
    let inner = || -> Result<StoreInfo, StoreErrorKind> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        let (v4, v5) = match &magic {
            m if m == MAGIC_V5 => (false, true),
            m if m == MAGIC_V4 => (true, false),
            m if m == MAGIC_V3 => (false, false),
            _ => return Err(StoreErrorKind::BadMagic),
        };
        let mut head = [0u8; 2];
        file.read_exact(&mut head)?;
        let wires = usize::from(head[0]); // v3: [n, k]; v4/v5: [n, reserved]
        let v3_k = usize::from(head[1]);
        let mut lib_len_bytes = [0u8; 2];
        file.read_exact(&mut lib_len_bytes)?;
        let lib_len = u64::from(u16::from_le_bytes(lib_len_bytes));
        file.seek(SeekFrom::Current(lib_len as i64))?;
        let mut model_bytes = [0u8; 32];
        file.read_exact(&mut model_bytes)?;
        let mut costs = [0u64; 4];
        for (slot, chunk) in costs.iter_mut().zip(model_bytes.chunks_exact(8)) {
            *slot = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
        let model = decode_model(costs)?;
        if v5 {
            file.seek(SeekFrom::Current(8))?; // header fnv
            let mut fixed = [0u8; 8 * V5_META_FIXED];
            file.read_exact(&mut fixed)?;
            let word =
                |i: usize| u64::from_le_bytes(fixed[8 * i..8 * i + 8].try_into().expect("8 bytes"));
            let level_count = word(0);
            let max_levels = if model == CostModel::unit() {
                17
            } else {
                MAX_BUCKETS as u64
            };
            if level_count == 0 || level_count > max_levels {
                return Err(StoreErrorKind::BadHeader(format!(
                    "{level_count} levels is outside 1..={max_levels}"
                )));
            }
            let mut pairs = vec![0u8; 16 * level_count as usize];
            file.read_exact(&mut pairs)?;
            // First section descriptor: offset of the concatenated keys.
            let mut desc = [0u8; 8];
            file.read_exact(&mut desc)?;
            let mut offset = u64::from_le_bytes(desc);
            let mut levels = Vec::with_capacity(level_count as usize);
            for chunk in pairs.chunks_exact(16) {
                let cost = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
                let classes = u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));
                if classes > file_len / 9 {
                    return Err(StoreErrorKind::Corrupt(format!(
                        "level count {classes} exceeds what the file could hold"
                    )));
                }
                levels.push(LevelInfo {
                    cost,
                    classes,
                    offset,
                });
                offset += 8 * classes;
            }
            return Ok(StoreInfo {
                version: 5,
                wires,
                model,
                levels,
                payload_end: file_len,
                file_len,
            });
        }
        let (count, payload_end) = if v4 {
            file.seek(SeekFrom::Current(8))?; // header fnv
            let (levels, payload_end) = read_trailer(&mut file)?;
            if payload_end > file_len {
                return Err(StoreErrorKind::BadTrailer(format!(
                    "payload end {payload_end} is outside the file (length {file_len})"
                )));
            }
            (levels, payload_end)
        } else {
            (v3_k as u64 + 1, file_len.saturating_sub(8))
        };
        let mut levels = Vec::with_capacity(count as usize);
        let per_record_overhead: u64 = if v4 { 24 } else { 16 };
        for i in 0..count {
            let offset = file.stream_position()?;
            if offset >= payload_end {
                return Err(StoreErrorKind::Corrupt(format!(
                    "level {i} record starts past the payload end"
                )));
            }
            let mut rec = [0u8; 16];
            file.read_exact(&mut rec)?;
            let cost = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
            let classes = u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes"));
            // Bound by the bytes actually left before payload_end so a
            // bitflipped count cannot drive downstream allocations.
            let max = payload_end.saturating_sub(offset + per_record_overhead) / 9;
            if classes > max {
                return Err(StoreErrorKind::Corrupt(format!(
                    "level {i} count {classes} exceeds the {max} entries the remaining bytes could hold"
                )));
            }
            file.seek(SeekFrom::Current(
                (9 * classes + per_record_overhead - 16) as i64,
            ))?;
            levels.push(LevelInfo {
                cost,
                classes,
                offset,
            });
        }
        Ok(StoreInfo {
            version: if v4 { 4 } else { 3 },
            wires,
            model,
            levels,
            payload_end,
            file_len,
        })
    };
    inner().map_err(kind_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("revsynth-store-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip() {
        let tables = SearchTables::generate(3, 4);
        let path = temp_path("roundtrip");
        tables.save(&path).unwrap();
        let loaded = SearchTables::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.wires(), 3);
        assert_eq!(loaded.k(), 4);
        assert_eq!(loaded.lib().len(), tables.lib().len());
        for i in 0..=4usize {
            assert_eq!(loaded.level(i), tables.level(i), "level {i}");
        }
        // Values survive too.
        for i in 0..=4usize {
            for &rep in loaded.level(i) {
                assert_eq!(loaded.lookup(rep), tables.lookup(rep));
            }
        }
    }

    #[test]
    fn save_load_rebuilds_identical_invariant_index() {
        // The load path assembles the invariant gate index from the level
        // lists just like the generate path; the rebuilt index must be
        // logically identical — same invariant keys, same distance masks,
        // same prefilter bitmap — or the gate would behave differently on
        // loaded tables than on freshly generated ones.
        for (n, k) in [(2usize, 4usize), (3, 3)] {
            let tables = SearchTables::generate(n, k);
            let path = temp_path(&format!("invindex-n{n}-k{k}"));
            tables.save(&path).unwrap();
            let loaded = SearchTables::load(&path).unwrap();
            std::fs::remove_file(&path).ok();

            assert_eq!(
                loaded.invariants(),
                tables.invariants(),
                "n={n} k={k}: rebuilt index diverged from the generate path"
            );
            // And the gate answers the same question on both: every stored
            // representative is admitted at exactly its own level.
            for (i, level) in tables.levels().iter().enumerate() {
                for &rep in level {
                    assert_eq!(
                        loaded.invariants().admits(rep, i),
                        tables.invariants().admits(rep, i),
                        "n={n} k={k} level {i} rep {rep}"
                    );
                    assert!(loaded.invariants().admits(rep, i));
                }
            }
        }
    }

    #[test]
    fn weighted_tables_roundtrip_with_cost_metadata() {
        use revsynth_circuit::{CostModel, GateLib};
        let tables = SearchTables::generate_weighted(GateLib::nct(3), CostModel::quantum(), 7);
        let path = temp_path("weighted");
        tables.save(&path).unwrap();
        let loaded = SearchTables::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert!(loaded.is_cost_bucketed());
        assert_eq!(loaded.model(), tables.model());
        assert_eq!(loaded.bucket_costs(), tables.bucket_costs());
        assert_eq!(loaded.levels(), tables.levels());
        assert_eq!(loaded.invariants(), tables.invariants());
        assert_eq!(loaded.cost_reach(), tables.cost_reach());
        for i in 0..loaded.levels().len() {
            for &rep in loaded.level(i) {
                assert_eq!(loaded.lookup(rep), tables.lookup(rep));
            }
        }
    }

    #[test]
    fn v3_files_still_load() {
        let tables = SearchTables::generate(3, 3);
        let path = temp_path("v3compat");
        tables.save_v3(&path).unwrap();
        let loaded = SearchTables::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.levels(), tables.levels());
        assert_eq!(loaded.model(), tables.model());
        assert_eq!(loaded.invariants(), tables.invariants());
    }

    #[test]
    fn rejects_bad_magic() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTATABLESTORE__").unwrap();
        let err = SearchTables::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err.kind(), StoreErrorKind::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let tables = SearchTables::generate(2, 3);
        let path = temp_path("trunc");
        tables.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let err = SearchTables::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(
                err.kind(),
                StoreErrorKind::Io(_) | StoreErrorKind::Corrupt(_) | StoreErrorKind::BadTrailer(_)
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn rejects_bitflip() {
        let tables = SearchTables::generate(2, 4);
        let path = temp_path("bitflip");
        tables.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = SearchTables::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        // Either the structural validation or a checksum catches it.
        assert!(
            matches!(
                err.kind(),
                StoreErrorKind::Corrupt(_)
                    | StoreErrorKind::ChecksumMismatch
                    | StoreErrorKind::BadHeader(_)
                    | StoreErrorKind::BadTrailer(_)
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn v3_bitflipped_count_is_typed_error_not_oversized_alloc() {
        let tables = SearchTables::generate(2, 3);
        let path = temp_path("v3-count-flip");
        tables.save_v3(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Level 0's count sits after the header (magic 8 + n/k 2 +
        // lib_len 2 + gates + model 32) and the level-0 cost (8). Flip
        // byte 4 of the count: ~2^40 entries — *under* the old fixed
        // plausibility cap, so the old code would have tried a
        // multi-terabyte `Vec::with_capacity` instead of erroring.
        let count_off = 8 + 2 + 2 + tables.lib().len() + 32 + 8;
        bytes[count_off + 4] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = SearchTables::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err.kind(), StoreErrorKind::Corrupt(_)),
            "unexpected error {err:?}"
        );
        assert!(
            err.to_string().contains("exceeds"),
            "count must be bounded by the remaining file bytes: {err}"
        );
    }

    #[test]
    fn v4_bitflipped_count_is_typed_error_not_oversized_alloc() {
        let tables = SearchTables::generate(2, 3);
        let path = temp_path("v4-count-flip");
        tables.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // v4: header (52 + lib) + trailer 24, then level 0's cost (8)
        // and count.
        let count_off = 52 + tables.lib().len() + 24 + 8;
        bytes[count_off + 4] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = SearchTables::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err.kind(), StoreErrorKind::Corrupt(_)),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn v5_roundtrip_zero_copy() {
        let tables = SearchTables::generate(3, 3);
        let path = temp_path("v5-roundtrip");
        tables.save_v5(&path).unwrap();
        let loaded = SearchTables::load(&path).unwrap();
        assert_eq!(loaded.source_format(), Some(5));
        assert_eq!(loaded.levels(), tables.levels());
        assert_eq!(loaded.model(), tables.model());
        assert_eq!(loaded.invariants(), tables.invariants());
        assert_eq!(loaded.content_digest(), tables.content_digest());
        for i in 0..=3usize {
            for &rep in loaded.level(i) {
                assert_eq!(loaded.lookup(rep), tables.lookup(rep));
            }
        }
        // And the fully validating path agrees.
        let validated = SearchTables::load_validated(&path).unwrap();
        assert_eq!(validated.levels(), tables.levels());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn upgrade_is_atomic_and_byte_deterministic() {
        let tables = SearchTables::generate(3, 3);
        let path = temp_path("v5-upgrade");
        tables.save(&path).unwrap();
        let content_before = SearchTables::load(&path).unwrap().content_digest();
        SearchTables::upgrade(&path).unwrap();
        let first = std::fs::read(&path).unwrap();
        assert_eq!(&first[..8], MAGIC_V5);
        // Upgrading a v5 store is a canonical rewrite: byte-identical.
        SearchTables::upgrade(&path).unwrap();
        let second = std::fs::read(&path).unwrap();
        assert_eq!(first, second, "upgrade must be byte-deterministic");
        // Direct save_v5 of the same tables produces the same bytes too.
        let direct = temp_path("v5-direct");
        tables.save_v5(&direct).unwrap();
        assert_eq!(first, std::fs::read(&direct).unwrap());
        std::fs::remove_file(&direct).ok();
        let after = SearchTables::load(&path).unwrap();
        assert_eq!(after.content_digest(), content_before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn peek_reads_v5_files() {
        let tables = SearchTables::generate(3, 3);
        let path = temp_path("peek-v5");
        tables.save_v5(&path).unwrap();
        let info = SearchTables::peek(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(info.version, 5);
        assert_eq!(info.wires, 3);
        assert_eq!(info.levels.len(), 4);
        for (i, level) in info.levels.iter().enumerate() {
            assert_eq!(level.cost, i as u64);
            assert_eq!(level.classes, tables.level(i).len() as u64);
        }
        assert_eq!(info.total_classes(), tables.num_representatives() as u64);
    }

    #[test]
    fn missing_file_is_io_error_with_path() {
        let path = temp_path("nonexistent");
        let err = SearchTables::load(&path).unwrap_err();
        assert!(matches!(err.kind(), StoreErrorKind::Io(_)));
        assert_eq!(err.path(), path);
        assert!(
            err.to_string().contains("nonexistent"),
            "error must name the file: {err}"
        );
    }

    #[test]
    fn peek_reports_levels_without_full_validation() {
        let tables = SearchTables::generate(3, 3);
        let path = temp_path("peek");
        tables.save(&path).unwrap();
        let info = SearchTables::peek(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(info.version, 4);
        assert_eq!(info.wires, 3);
        assert_eq!(info.levels.len(), 4);
        for (i, level) in info.levels.iter().enumerate() {
            assert_eq!(level.cost, i as u64);
            assert_eq!(level.classes, tables.level(i).len() as u64);
        }
        assert_eq!(info.total_classes(), tables.num_representatives() as u64);
        assert_eq!(info.payload_end, info.file_len);
    }

    #[test]
    fn peek_reads_v3_files_too() {
        let tables = SearchTables::generate(2, 3);
        let path = temp_path("peek-v3");
        tables.save_v3(&path).unwrap();
        let info = SearchTables::peek(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(info.version, 3);
        assert_eq!(info.levels.len(), 4);
        assert_eq!(info.total_classes(), tables.num_representatives() as u64);
    }
}
