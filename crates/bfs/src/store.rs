//! Binary persistence of [`SearchTables`].
//!
//! The paper computes the k = 9 tables once (~3 h) and thereafter loads
//! them from disk (§4.1: 1111 seconds to load 43 GB into RAM; §5 estimates
//! ~5 minutes at modern transfer rates). This module gives the same
//! workflow a self-describing, checksummed little-endian format:
//!
//! ```text
//! magic   8 B  "RVSYNTB3"
//! n       1 B  wire count (2..=4)
//! k       1 B  number of buckets − 1 (= search depth on unit tables)
//! lib_len 2 B  number of gates in the library (LE)
//! gates   lib_len B  (controls << 2) | target, bit 7 clear
//! model   4 × 8 B  per-control-count gate costs (LE; 1,1,1,1 = unit)
//! levels  for i in 0..=k:
//!           cost   8 B (LE; strictly ascending from 0 — the bucket cost)
//!           count  8 B (LE)
//!           keys   count × 8 B (LE, sorted ascending)
//!           values count × 1 B
//! fnv     8 B  FNV-1a of every preceding byte (LE)
//! ```
//!
//! Version 3 adds the cost-model block and per-bucket costs, so
//! weighted (cost-bucketed) tables round-trip with their metadata and
//! a loaded table's engine dispatch (gate-count scan vs cost-bounded
//! scan) can never disagree with the generate path's.
//!
//! Loading validates everything it can cheaply validate: magic, header
//! ranges, gate encodings, permutation keys, key ordering, value records,
//! and the checksum. The hash table is rebuilt by reinsertion.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use revsynth_canon::Symmetries;
use revsynth_circuit::{Gate, GateLib};
use revsynth_perm::Perm;
use revsynth_table::FnTable;

use crate::info::{decode_stored, StoredGate, IDENTITY_BYTE};
use crate::tables::SearchTables;

const MAGIC: &[u8; 8] = b"RVSYNTB3";

/// Error returned by [`SearchTables::load`].
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the format magic.
    BadMagic,
    /// A header field is out of range.
    BadHeader(String),
    /// The body is structurally invalid (bad gate, bad key, bad record…).
    Corrupt(String),
    /// The FNV-1a checksum does not match the content.
    ChecksumMismatch,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a revsynth table store (bad magic)"),
            StoreError::BadHeader(msg) => write!(f, "invalid header: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "corrupted store: {msg}"),
            StoreError::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Incremental FNV-1a 64-bit hasher (tiny, dependency-free; collisions are
/// irrelevant here — the checksum only guards against torn/corrupted
/// files, not adversaries).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

struct HashingWriter<W: Write> {
    inner: W,
    fnv: Fnv1a,
}

impl<W: Write> HashingWriter<W> {
    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.fnv.update(bytes);
        self.inner.write_all(bytes)
    }
    fn put_u64(&mut self, v: u64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }
}

struct HashingReader<R: Read> {
    inner: R,
    fnv: Fnv1a,
}

impl<R: Read> HashingReader<R> {
    fn take(&mut self, buf: &mut [u8]) -> Result<(), StoreError> {
        self.inner.read_exact(buf)?;
        self.fnv.update(buf);
        Ok(())
    }
    fn take_u64(&mut self) -> Result<u64, StoreError> {
        let mut b = [0u8; 8];
        self.take(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn take_u8(&mut self) -> Result<u8, StoreError> {
        let mut b = [0u8; 1];
        self.take(&mut b)?;
        Ok(b[0])
    }
}

pub(crate) fn save(tables: &SearchTables, path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = HashingWriter {
        inner: BufWriter::new(file),
        fnv: Fnv1a::new(),
    };
    w.put(MAGIC)?;
    w.put(&[tables.lib.wires() as u8, tables.k as u8])?;
    let lib_len = u16::try_from(tables.lib.len()).expect("library fits u16");
    w.put(&lib_len.to_le_bytes())?;
    for (_, gate, _) in tables.lib.iter() {
        w.put(&[(gate.controls() << 2) | gate.target()])?;
    }
    for controls in 0..4 {
        w.put_u64(tables.model.cost_of_controls(controls))?;
    }
    for (i, level) in tables.levels.iter().enumerate() {
        w.put_u64(tables.bucket_costs[i])?;
        w.put_u64(level.len() as u64)?;
        for &rep in level {
            w.put_u64(rep.packed())?;
        }
        for &rep in level {
            let byte = tables
                .table
                .get(rep)
                .expect("every level member is in the table");
            w.put(&[byte])?;
        }
    }
    let checksum = w.fnv.finish();
    w.inner.write_all(&checksum.to_le_bytes())?;
    w.inner.flush()
}

pub(crate) fn load(path: &Path) -> Result<SearchTables, StoreError> {
    let file = File::open(path)?;
    let mut r = HashingReader {
        inner: BufReader::new(file),
        fnv: Fnv1a::new(),
    };
    let mut magic = [0u8; 8];
    r.take(&mut magic)?;
    if &magic != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let n = usize::from(r.take_u8()?);
    let k = usize::from(r.take_u8()?);
    if !(2..=4).contains(&n) {
        return Err(StoreError::BadHeader(format!("wire count {n}")));
    }
    if k > 16 {
        return Err(StoreError::BadHeader(format!("depth k = {k}")));
    }
    let mut lib_len_bytes = [0u8; 2];
    r.take(&mut lib_len_bytes)?;
    let lib_len = usize::from(u16::from_le_bytes(lib_len_bytes));
    if lib_len == 0 || lib_len > 127 {
        return Err(StoreError::BadHeader(format!("library size {lib_len}")));
    }
    let mut gates = Vec::with_capacity(lib_len);
    for i in 0..lib_len {
        let byte = r.take_u8()?;
        if byte & 0x80 != 0 {
            return Err(StoreError::Corrupt(format!("gate byte {i} has bit 7 set")));
        }
        let gate = Gate::new((byte >> 2) & 0x0F, byte & 0x03)
            .map_err(|e| StoreError::Corrupt(format!("gate byte {i}: {e}")))?;
        if usize::from(gate.max_wire()) >= n {
            return Err(StoreError::Corrupt(format!(
                "gate {gate} touches a wire outside the {n}-wire domain"
            )));
        }
        gates.push(gate);
    }
    let lib = GateLib::from_gates(n, &gates);
    if lib.len() != lib_len {
        return Err(StoreError::Corrupt("duplicate gates in library".into()));
    }
    let mut costs = [0u64; 4];
    for (controls, slot) in costs.iter_mut().enumerate() {
        let c = r.take_u64()?;
        // Zero would violate CostModel's positivity invariant (and panic
        // in `custom`); any positive cost a writer could produce must
        // round-trip — corruption is caught by the trailing checksum.
        if c == 0 {
            return Err(StoreError::BadHeader(format!(
                "zero gate cost for {controls} controls"
            )));
        }
        *slot = c;
    }
    let model = revsynth_circuit::CostModel::custom(costs);

    let mut levels = Vec::with_capacity(k + 1);
    let mut total = 0usize;
    let mut bucket_costs: Vec<u64> = Vec::with_capacity(k + 1);
    let mut pairs: Vec<(Vec<Perm>, Vec<u8>)> = Vec::with_capacity(k + 1);
    for i in 0..=k {
        let bucket_cost = r.take_u64()?;
        let ascending = match bucket_costs.last() {
            None => bucket_cost == 0,
            Some(&prev) => bucket_cost > prev,
        };
        if !ascending {
            return Err(StoreError::Corrupt(format!(
                "bucket {i} cost {bucket_cost} does not ascend strictly from 0"
            )));
        }
        bucket_costs.push(bucket_cost);
        let count = r.take_u64()?;
        // Cap far above any real table but far below an allocation that
        // could abort: a corrupted count must yield a typed error, not a
        // capacity-overflow panic.
        if count > 1 << 40 {
            return Err(StoreError::Corrupt(format!(
                "level {i} count {count} is implausibly large"
            )));
        }
        let count = usize::try_from(count)
            .map_err(|_| StoreError::Corrupt(format!("level {i} count overflows")))?;
        total = total
            .checked_add(count)
            .ok_or_else(|| StoreError::Corrupt("total count overflows".into()))?;
        let mut keys = Vec::with_capacity(count);
        let mut prev: Option<u64> = None;
        for j in 0..count {
            let packed = r.take_u64()?;
            if let Some(p) = prev {
                if packed <= p {
                    return Err(StoreError::Corrupt(format!(
                        "level {i} keys not strictly ascending at index {j}"
                    )));
                }
            }
            prev = Some(packed);
            let perm = Perm::from_packed(packed)
                .map_err(|e| StoreError::Corrupt(format!("level {i} key {j}: {e}")))?;
            keys.push(perm);
        }
        let mut values = vec![0u8; count];
        if count > 0 {
            r.take(&mut values)?;
        }
        for (j, &byte) in values.iter().enumerate() {
            match decode_stored(byte) {
                Some(StoredGate::Identity) if i == 0 => {}
                Some(StoredGate::Gate { .. }) if i > 0 => {}
                _ => {
                    return Err(StoreError::Corrupt(format!(
                        "level {i} value {j} (byte {byte:#04x}) is invalid for this level"
                    )))
                }
            }
        }
        pairs.push((keys, values));
    }
    if pairs[0].0 != [Perm::identity()] || pairs[0].1 != [IDENTITY_BYTE] {
        return Err(StoreError::Corrupt(
            "level 0 must be exactly the identity".into(),
        ));
    }

    let computed = r.fnv.finish();
    let mut checksum_bytes = [0u8; 8];
    r.inner.read_exact(&mut checksum_bytes)?;
    if u64::from_le_bytes(checksum_bytes) != computed {
        return Err(StoreError::ChecksumMismatch);
    }
    let mut trailing = [0u8; 1];
    if r.inner.read(&mut trailing)? != 0 {
        return Err(StoreError::Corrupt("trailing bytes after checksum".into()));
    }

    let mut table = FnTable::for_entries(total);
    for (keys, values) in &pairs {
        for (&key, &value) in keys.iter().zip(values) {
            if !table.insert_if_absent(key, value) {
                return Err(StoreError::Corrupt(format!(
                    "duplicate representative {key} across levels"
                )));
            }
        }
    }
    for (keys, _) in pairs {
        levels.push(keys);
    }

    Ok(SearchTables::assemble_weighted(
        lib,
        Symmetries::new(n),
        model,
        table,
        levels,
        bucket_costs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("revsynth-store-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip() {
        let tables = SearchTables::generate(3, 4);
        let path = temp_path("roundtrip");
        tables.save(&path).unwrap();
        let loaded = SearchTables::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.wires(), 3);
        assert_eq!(loaded.k(), 4);
        assert_eq!(loaded.lib().len(), tables.lib().len());
        for i in 0..=4usize {
            assert_eq!(loaded.level(i), tables.level(i), "level {i}");
        }
        // Values survive too.
        for i in 0..=4usize {
            for &rep in loaded.level(i) {
                assert_eq!(loaded.lookup(rep), tables.lookup(rep));
            }
        }
    }

    #[test]
    fn save_load_rebuilds_identical_invariant_index() {
        // The load path assembles the invariant gate index from the level
        // lists just like the generate path; the rebuilt index must be
        // logically identical — same invariant keys, same distance masks,
        // same prefilter bitmap — or the gate would behave differently on
        // loaded tables than on freshly generated ones.
        for (n, k) in [(2usize, 4usize), (3, 3)] {
            let tables = SearchTables::generate(n, k);
            let path = temp_path(&format!("invindex-n{n}-k{k}"));
            tables.save(&path).unwrap();
            let loaded = SearchTables::load(&path).unwrap();
            std::fs::remove_file(&path).ok();

            assert_eq!(
                loaded.invariants(),
                tables.invariants(),
                "n={n} k={k}: rebuilt index diverged from the generate path"
            );
            // And the gate answers the same question on both: every stored
            // representative is admitted at exactly its own level.
            for (i, level) in tables.levels().iter().enumerate() {
                for &rep in level {
                    assert_eq!(
                        loaded.invariants().admits(rep, i),
                        tables.invariants().admits(rep, i),
                        "n={n} k={k} level {i} rep {rep}"
                    );
                    assert!(loaded.invariants().admits(rep, i));
                }
            }
        }
    }

    #[test]
    fn weighted_tables_roundtrip_with_cost_metadata() {
        use revsynth_circuit::{CostModel, GateLib};
        let tables = SearchTables::generate_weighted(GateLib::nct(3), CostModel::quantum(), 7);
        let path = temp_path("weighted");
        tables.save(&path).unwrap();
        let loaded = SearchTables::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert!(loaded.is_cost_bucketed());
        assert_eq!(loaded.model(), tables.model());
        assert_eq!(loaded.bucket_costs(), tables.bucket_costs());
        assert_eq!(loaded.levels(), tables.levels());
        assert_eq!(loaded.invariants(), tables.invariants());
        assert_eq!(loaded.cost_reach(), tables.cost_reach());
        for i in 0..loaded.levels().len() {
            for &rep in loaded.level(i) {
                assert_eq!(loaded.lookup(rep), tables.lookup(rep));
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTATABLESTORE__").unwrap();
        let err = SearchTables::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, StoreError::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let tables = SearchTables::generate(2, 3);
        let path = temp_path("trunc");
        tables.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let err = SearchTables::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err, StoreError::Io(_) | StoreError::Corrupt(_)),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn rejects_bitflip() {
        let tables = SearchTables::generate(2, 4);
        let path = temp_path("bitflip");
        tables.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = SearchTables::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        // Either the structural validation or the checksum catches it.
        assert!(
            matches!(
                err,
                StoreError::Corrupt(_) | StoreError::ChecksumMismatch | StoreError::BadHeader(_)
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = SearchTables::load(temp_path("nonexistent")).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }
}
