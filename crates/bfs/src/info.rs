//! One-byte encoding of the per-representative gate record.
//!
//! The hash table stores a single byte per canonical representative: the
//! first or last gate of one minimal circuit (paper §3.2: "we store the
//! last or the first gate of a minimal circuit for each canonical
//! representative ... this information is clearly sufficient to
//! reconstruct the entire circuit").
//!
//! Layout:
//!
//! ```text
//! bit 7      : 1 = a gate is present, 0 = identity marker (byte 0x00)
//! bit 6      : 1 = the gate is the FIRST gate, 0 = the LAST gate
//! bits 5..2  : control wire mask
//! bits 1..0  : target wire
//! ```

use revsynth_circuit::Gate;

/// The byte stored for the identity function (size 0, no gates).
pub const IDENTITY_BYTE: u8 = 0x00;

/// Decoded form of a stored gate record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoredGate {
    /// The representative is the identity (empty circuit).
    Identity,
    /// One boundary gate of a minimal circuit of the representative.
    Gate {
        /// The gate itself (already in the representative's wire frame).
        gate: Gate,
        /// `true` if it is the first gate of the circuit, `false` if the
        /// last.
        is_first: bool,
    },
}

/// Encodes a boundary gate into the table byte.
#[inline]
#[must_use]
pub fn encode_stored(gate: Gate, is_first: bool) -> u8 {
    0x80 | (u8::from(is_first) << 6) | (gate.controls() << 2) | gate.target()
}

/// Decodes a table byte; returns `None` for malformed bytes (anything that
/// is neither the identity marker nor a valid gate — used to detect
/// corrupted store files).
#[must_use]
pub fn decode_stored(byte: u8) -> Option<StoredGate> {
    if byte == IDENTITY_BYTE {
        return Some(StoredGate::Identity);
    }
    if byte & 0x80 == 0 {
        return None;
    }
    let is_first = byte & 0x40 != 0;
    let controls = (byte >> 2) & 0x0F;
    let target = byte & 0x03;
    let gate = Gate::new(controls, target).ok()?;
    Some(StoredGate::Gate { gate, is_first })
}

#[cfg(test)]
mod tests {
    use super::*;
    use revsynth_circuit::GateLib;

    #[test]
    fn roundtrip_every_gate_and_flag() {
        for (_, gate, _) in GateLib::nct(4).iter() {
            for is_first in [false, true] {
                let byte = encode_stored(gate, is_first);
                assert_eq!(
                    decode_stored(byte),
                    Some(StoredGate::Gate { gate, is_first }),
                    "{gate} is_first={is_first}"
                );
            }
        }
    }

    #[test]
    fn identity_roundtrip() {
        assert_eq!(decode_stored(IDENTITY_BYTE), Some(StoredGate::Identity));
    }

    #[test]
    fn encodings_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        seen.insert(IDENTITY_BYTE);
        for (_, gate, _) in GateLib::nct(4).iter() {
            for is_first in [false, true] {
                assert!(seen.insert(encode_stored(gate, is_first)));
            }
        }
        assert_eq!(seen.len(), 1 + 64);
    }

    #[test]
    fn malformed_bytes_rejected() {
        // Bit 7 clear but nonzero.
        assert_eq!(decode_stored(0x01), None);
        // Target listed among controls: target 0, controls containing wire 0.
        let bad = 0x80 | (0b0001 << 2); // target 0 implicit in the low bits
        assert_eq!(decode_stored(bad), None);
    }
}
