//! Breadth-first search driver (paper Algorithm 2), built on the sharded
//! level expander in [`crate::shard`] and extendable level by level —
//! both in RAM ([`SearchTables::extend_to`]) and streamed to a
//! checkpointed store so an interrupted generation resumes from its
//! deepest completed level.
//!
//! # Completeness
//!
//! Claim: every equivalence class of size `i ≥ 1` contains a member of the
//! form `x.then(λ)` where `x` is a size-`(i−1)` canonical representative or
//! the inverse of one, and `λ` is a gate.
//!
//! Proof: take any `h` of size `i` with minimal circuit `h = g.then(μ)`
//! (`g` = all but the last gate, size `i−1`). Let `c = canonical(g)`.
//! Either `c = conj_σ(g)`, and then `conj_σ(h) = c.then(conj_σ(μ))` is an
//! equivalent of `h` of the required form; or `c = conj_σ(g⁻¹)`, i.e.
//! `c⁻¹ = conj_σ(g)`, and then `conj_σ(h) = c⁻¹.then(conj_σ(μ))`. ∎
//!
//! Therefore expanding every representative **and its inverse** by all
//! gates reaches at least one member of every size-`i` class; its canonical
//! form is inserted exactly once (the hash table already holds all classes
//! of size < i by induction, so smaller classes are filtered out).
//!
//! Because level `i` depends only on the table contents and the sorted
//! level-`(i−1)` list, the search is **restartable**: a store holding
//! levels `0..=j` is exactly the state the single-shot search had after
//! level `j`, so resuming from it and extending to `k` reproduces the
//! single-shot run byte for byte.
//!
//! # Stored gate records
//!
//! When a new representative `r = canonical(h)` with `h = x.then(λ)` is
//! inserted (witness `σ`, `inverted`):
//!
//! * not inverted: `r = conj_σ(x).then(conj_σ(λ))` — record
//!   `conj_σ(λ)` as the **last** gate;
//! * inverted: `r = conj_σ(h⁻¹) = conj_σ(λ).then(conj_σ(x⁻¹))` — record
//!   `conj_σ(λ)` as the **first** gate
//!
//! (gates are involutions, so `h⁻¹ = λ.then(x⁻¹)`).

use std::path::Path;

use revsynth_canon::Symmetries;
use revsynth_circuit::{CostModel, GateLib};
use revsynth_perm::Perm;
use revsynth_table::FnTable;

use crate::info::IDENTITY_BYTE;
use crate::shard::{expand_level, GenOptions};
use crate::store::{CheckpointWriter, StoreError};
use crate::tables::SearchTables;

pub(crate) fn run(lib: GateLib, k: usize) -> SearchTables {
    run_opts(lib, k, &GenOptions::new())
}

pub(crate) fn run_opts(lib: GateLib, k: usize, opts: &GenOptions) -> SearchTables {
    let (sym, mut table, mut levels) = seed(&lib, k);
    extend_levels(&lib, &sym, &mut table, &mut levels, k, opts, None)
        .expect("no checkpoint writer: extension performs no I/O");
    SearchTables::assemble(lib, sym, k, table, levels)
}

/// Generates from scratch while streaming every completed level to a v4
/// checkpoint store at `path` (write-level → fsync → update trailer).
pub(crate) fn run_checkpointed(
    lib: GateLib,
    k: usize,
    opts: &GenOptions,
    path: &Path,
) -> Result<SearchTables, StoreError> {
    let (sym, mut table, mut levels) = seed(&lib, k);
    let mut ckpt = CheckpointWriter::create(path, &lib, &CostModel::unit(), true)?;
    ckpt.append_level(0, &levels[0], &table)?;
    extend_levels(
        &lib,
        &sym,
        &mut table,
        &mut levels,
        k,
        opts,
        Some(&mut ckpt),
    )?;
    Ok(SearchTables::assemble(lib, sym, k, table, levels))
}

fn seed(lib: &GateLib, k: usize) -> (Symmetries, FnTable, Vec<Vec<Perm>>) {
    assert!(k <= 16, "k = {k} is far beyond any reachable optimal size");
    let sym = Symmetries::new(lib.wires());
    let mut table = FnTable::for_entries(SearchTables::estimated_total(lib, k));
    table.insert(Perm::identity(), IDENTITY_BYTE);
    (sym, table, vec![vec![Perm::identity()]])
}

/// Extends `levels` (currently complete through `levels.len() - 1`) up
/// to size `k`, appending each completed level to the checkpoint store
/// when one is given. This is the one loop behind fresh generation,
/// in-RAM extension and checkpoint resume; an empty frontier means the
/// group is exhausted and the remaining levels stay empty (still
/// recorded, so a resumed store and a single-shot one agree byte for
/// byte).
pub(crate) fn extend_levels(
    lib: &GateLib,
    sym: &Symmetries,
    table: &mut FnTable,
    levels: &mut Vec<Vec<Perm>>,
    k: usize,
    opts: &GenOptions,
    mut ckpt: Option<&mut CheckpointWriter>,
) -> Result<(), StoreError> {
    assert!(k <= 16, "k = {k} is far beyond any reachable optimal size");
    for i in levels.len()..=k {
        let frontier = &levels[i - 1];
        let level = if frontier.is_empty() {
            Vec::new()
        } else {
            expand_level(lib, sym, table, frontier, opts)
        };
        if let Some(w) = ckpt.as_deref_mut() {
            w.append_level(i as u64, &level, table)?;
        }
        levels.push(level);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::StoredGate;
    use crate::tables::N4_REDUCED_COUNTS;

    #[test]
    fn level0_is_identity_only() {
        let t = SearchTables::generate(4, 1);
        assert_eq!(t.level(0), &[Perm::identity()]);
        assert_eq!(t.lookup(Perm::identity()), Some(StoredGate::Identity));
    }

    #[test]
    fn level1_reduced_count_is_4_for_n4() {
        // The 32 gates form 4 classes: NOT, CNOT, TOF, TOF4 (Table 4).
        let t = SearchTables::generate(4, 1);
        assert_eq!(t.level(1).len(), 4);
        for &rep in t.level(1) {
            assert!(t.sym().is_canonical(rep));
            assert_eq!(t.size_of(rep), Some(1));
        }
    }

    #[test]
    fn reduced_counts_match_paper_table4_to_size5() {
        let t = SearchTables::generate(4, 5);
        for (i, &expected) in N4_REDUCED_COUNTS.iter().take(6).enumerate() {
            assert_eq!(
                t.level(i).len() as u64,
                expected,
                "reduced count at size {i}"
            );
        }
    }

    #[test]
    fn every_gate_has_size_1() {
        let t = SearchTables::generate(4, 2);
        for (_, _, p) in GateLib::nct(4).iter() {
            assert_eq!(t.size_of(p), Some(1));
        }
    }

    #[test]
    fn products_of_two_gates_have_size_at_most_2() {
        let t = SearchTables::generate(4, 2);
        let lib = GateLib::nct(4);
        for (_, _, p) in lib.iter() {
            for (_, _, q) in lib.iter() {
                let size = t.size_of(p.then(q)).expect("size ≤ 2 must be found");
                assert!(size <= 2);
                if p == q {
                    assert_eq!(size, 0);
                }
            }
        }
    }

    #[test]
    fn stored_gate_peels_one_level() {
        // For every size-i representative, composing with the stored gate
        // on the recorded side yields a size-(i-1) function.
        let t = SearchTables::generate(4, 4);
        for i in 1..=4usize {
            for &rep in t.level(i).iter().step_by(7) {
                match t.lookup(rep).expect("level member must be in table") {
                    StoredGate::Identity => panic!("identity record on nonzero level"),
                    StoredGate::Gate { gate, is_first } => {
                        let g = gate.perm(4);
                        let peeled = if is_first { g.then(rep) } else { rep.then(g) };
                        assert_eq!(
                            t.size_of(peeled),
                            Some(i - 1),
                            "size {i} rep {rep} gate {gate} is_first={is_first}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn invariant_index_admits_every_stored_representative() {
        use revsynth_table::InvariantIndex;
        let t = SearchTables::generate(4, 3);
        let index = t.invariants();
        assert!(!index.is_empty());
        for i in 0..=3usize {
            for &rep in t.level(i) {
                let key = InvariantIndex::key_of(rep);
                assert!(index.admits_at(key, i), "size {i} rep {rep}");
                assert!(index.min_distance(key).expect("stored") as usize <= i);
            }
        }
        // The gate must reject invariants no stored function has: a
        // random-looking full-support permutation needs far more than 3
        // gates, and its cycle structure matches nothing of size ≤ 3.
        let generic =
            Perm::from_values(&[15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11]).unwrap();
        assert!(t.size_of(generic).is_none());
        assert_eq!(index.distance_mask(InvariantIndex::key_of(generic)), 0);
    }

    #[test]
    fn small_group_exhausts_and_stops() {
        // n = 2: only 24 functions exist; deep k must terminate with empty
        // tail levels and total classes summing to the whole group.
        let t = SearchTables::generate(2, 12);
        let total: u64 = t.counts().iter().map(|c| c.functions).sum();
        assert_eq!(total, 24);
        assert!(t.levels().iter().any(|l| l.is_empty()));
    }

    #[test]
    fn linear_library_exhausts_the_affine_group_n3() {
        // NOT/CNOT circuits on 3 wires compute exactly the affine group of
        // order 8 · |GL(3,2)| = 8 · 168 = 1344.
        let t = SearchTables::generate_with(GateLib::linear(3), 12);
        let total: u64 = t.counts().iter().map(|c| c.functions).sum();
        assert_eq!(total, 1344);
    }

    #[test]
    fn in_ram_extension_matches_single_shot() {
        // Level-by-level extension is the single-shot search replayed: the
        // level lists AND the recorded boundary bytes must coincide.
        let single = SearchTables::generate(3, 5);
        let mut grown = SearchTables::generate(3, 2);
        grown.extend_to(5, &GenOptions::new());
        assert_eq!(grown.k(), 5);
        assert_eq!(grown.levels(), single.levels());
        assert_eq!(grown.invariants(), single.invariants());
        for level in single.levels() {
            for &rep in level {
                assert_eq!(grown.lookup(rep), single.lookup(rep), "{rep}");
            }
        }
        // Extending to a size already covered is a no-op.
        grown.extend_to(3, &GenOptions::new());
        assert_eq!(grown.k(), 5);
    }
}
