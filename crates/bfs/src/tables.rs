//! The product of the breadth-first search: hash table + per-size lists.

use std::fmt;
use std::path::Path;

use revsynth_canon::Symmetries;
use revsynth_circuit::{CostModel, GateLib};
use revsynth_perm::Perm;
use revsynth_table::{FnTable, InvariantIndex, TableStats};

use crate::counts::LevelCount;
use crate::info::{decode_stored, StoredGate};
use crate::store::StoreError;

/// Known reduced (per-class) counts for the 4-wire NCT library, paper
/// Table 4 — used to pre-size the hash table. Indices are sizes 0..=9.
pub(crate) const N4_REDUCED_COUNTS: [u64; 10] = [
    1,
    4,
    33,
    425,
    6_538,
    101_983,
    1_482_686,
    19_466_575,
    225_242_556,
    2_208_511_226,
];

/// The precomputed optimal-circuit data for all functions of size ≤ k
/// (paper Algorithm 2's output: hash table `H` and lists `A_i`).
///
/// Build with [`SearchTables::generate`] (serial) or
/// [`SearchTables::generate_parallel`], persist with
/// [`save`](SearchTables::save)/[`load`](SearchTables::load) (the paper
/// computes once and re-loads in later runs).
pub struct SearchTables {
    pub(crate) lib: GateLib,
    pub(crate) sym: Symmetries,
    pub(crate) k: usize,
    pub(crate) table: FnTable,
    /// `levels[i]` = sorted canonical representatives of cost bucket `i`
    /// (for the breadth-first paths, bucket `i` = size exactly `i`).
    pub(crate) levels: Vec<Vec<Perm>>,
    /// Class-invariant gate index: combined invariant → bucket bitmask.
    pub(crate) invariants: InvariantIndex,
    /// The additive cost model the buckets were built under (unit for the
    /// breadth-first paths: cost = gate count).
    pub(crate) model: CostModel,
    /// `bucket_costs[i]` = the optimal cost shared by every member of
    /// `levels[i]`; strictly ascending from 0, equal to `0..=k` for the
    /// breadth-first (gate-count) paths.
    pub(crate) bucket_costs: Vec<u64>,
}

impl SearchTables {
    /// Finalizes a gate-count table build: derives the [`InvariantIndex`]
    /// from the level lists (every representative's combined class
    /// invariant, tagged with its optimal size) and stamps the unit cost
    /// metadata (`bucket_costs[i] = i`). All gate-count construction
    /// paths — serial BFS, parallel BFS and store loading — go through
    /// here so the gate index can never be out of sync with the tables.
    pub(crate) fn assemble(
        lib: GateLib,
        sym: Symmetries,
        k: usize,
        table: FnTable,
        levels: Vec<Vec<Perm>>,
    ) -> Self {
        let invariants = crate::weighted::bucket_invariants(&levels);
        let bucket_costs: Vec<u64> = (0..levels.len() as u64).collect();
        SearchTables {
            lib,
            sym,
            k,
            table,
            levels,
            invariants,
            model: CostModel::unit(),
            bucket_costs,
        }
    }

    /// Finalizes a weighted (cost-bucketed) build: same invariant-index
    /// derivation, but levels are cost buckets labeled by
    /// `bucket_costs` (strictly ascending from 0, one entry per level).
    pub(crate) fn assemble_weighted(
        lib: GateLib,
        sym: Symmetries,
        model: CostModel,
        table: FnTable,
        levels: Vec<Vec<Perm>>,
        bucket_costs: Vec<u64>,
    ) -> Self {
        assert_eq!(levels.len(), bucket_costs.len(), "one cost per bucket");
        assert!(
            bucket_costs.first() == Some(&0) && bucket_costs.windows(2).all(|w| w[0] < w[1]),
            "bucket costs must ascend strictly from 0"
        );
        let invariants = crate::weighted::bucket_invariants(&levels);
        let k = levels.len().saturating_sub(1);
        SearchTables {
            lib,
            sym,
            k,
            table,
            levels,
            invariants,
            model,
            bucket_costs,
        }
    }
    /// Runs the breadth-first search over the full NCT library on `n`
    /// wires, up to size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 2, 3 or 4, or if `k > 16`.
    #[must_use]
    pub fn generate(n: usize, k: usize) -> Self {
        Self::generate_with(GateLib::nct(n), k)
    }

    /// Runs the breadth-first search over a custom gate library.
    ///
    /// For libraries **closed under wire relabeling**
    /// ([`GateLib::is_relabeling_closed`]) the computed sizes and circuits
    /// are exact optima. For non-closed libraries (e.g.
    /// [`GateLib::nearest_neighbor`]) the ×48 class reduction conflates
    /// relabeled variants, so results are optimal *up to simultaneous
    /// input/output relabeling* (the regime the paper's §5 calls trivial
    /// for restricted architectures), and reconstructed circuits may use
    /// gates from the library's [`relabeling closure`]
    /// (GateLib::relabeling_closure).
    ///
    /// # Panics
    ///
    /// Panics if `k > 16` (no 4-bit function needs anywhere near 16 gates;
    /// larger k is certainly a bug).
    #[must_use]
    pub fn generate_with(lib: GateLib, k: usize) -> Self {
        crate::generate::run(lib, k)
    }

    /// Parallel variant of [`generate_with`](Self::generate_with) using
    /// `threads` worker threads (std scoped threads; the result is
    /// identical up to which of several equally-minimal boundary gates is
    /// recorded).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `k > 16`.
    #[must_use]
    pub fn generate_parallel(lib: GateLib, k: usize, threads: usize) -> Self {
        crate::parallel::run(lib, k, threads)
    }

    /// Runs the **weighted** uniform-cost search (paper §5's "increasing
    /// cost by one"), settling every equivalence class of optimal cost
    /// ≤ `budget` under `model` into cost-bucketed levels (see the
    /// `weighted` module). With [`CostModel::unit`] the buckets coincide
    /// with the breadth-first levels.
    ///
    /// # Panics
    ///
    /// Panics if `budget > 200` or the model produces more than 32
    /// distinct cost values (the invariant-index mask width).
    #[must_use]
    pub fn generate_weighted(lib: GateLib, model: CostModel, budget: u64) -> Self {
        crate::weighted::run(lib, model, budget)
    }

    /// The wire count.
    #[must_use]
    pub fn wires(&self) -> usize {
        self.lib.wires()
    }

    /// The depth of the search: representatives of size ≤ k are stored.
    #[must_use]
    pub const fn k(&self) -> usize {
        self.k
    }

    /// The gate library the search ran over.
    #[must_use]
    pub fn lib(&self) -> &GateLib {
        &self.lib
    }

    /// The symmetry context (shared with callers so they canonicalize with
    /// the same walk).
    #[must_use]
    pub fn sym(&self) -> &Symmetries {
        &self.sym
    }

    /// Whether `rep` (must already be canonical) has size ≤ k.
    #[inline]
    #[must_use]
    pub fn contains(&self, rep: Perm) -> bool {
        self.table.contains(rep)
    }

    /// The stored boundary-gate record for a canonical representative of
    /// size ≤ k, or `None` if the representative is not in the table.
    ///
    /// # Panics
    ///
    /// Panics if the stored byte is malformed (impossible unless the value
    /// was corrupted after [`load`](Self::load) verification).
    #[must_use]
    pub fn lookup(&self, rep: Perm) -> Option<StoredGate> {
        self.table
            .get(rep)
            .map(|byte| decode_stored(byte).expect("table holds only valid gate records"))
    }

    /// The underlying hash table of canonical representatives, for callers
    /// that pipeline their own probes ([`FnTable::probe_start`] /
    /// [`FnTable::probe_finish`]) instead of going through
    /// [`contains`](Self::contains).
    #[must_use]
    pub fn table(&self) -> &FnTable {
        &self.table
    }

    /// The class-invariant gate index: maps each combined invariant
    /// ([`InvariantIndex::key_of`]) occurring among the stored
    /// representatives to the bitmask of optimal sizes at which it
    /// occurs. The meet-in-the-middle engine uses it to skip candidates
    /// whose invariant proves they cannot be in the table.
    #[must_use]
    pub fn invariants(&self) -> &InvariantIndex {
        &self.invariants
    }

    /// The sorted canonical representatives of size exactly `i`
    /// (the paper's reduced list `A_i`).
    ///
    /// # Panics
    ///
    /// Panics if `i > k`.
    #[must_use]
    pub fn level(&self, i: usize) -> &[Perm] {
        &self.levels[i]
    }

    /// Splits the size-`i` list into at most `shards` contiguous sorted
    /// slices of near-equal length, for fan-out across worker threads
    /// (the level lists are sorted, so each shard covers a disjoint,
    /// ascending key range — a parallel scan that takes the hit from the
    /// lowest shard is deterministic regardless of thread count).
    ///
    /// # Panics
    ///
    /// Panics if `i > k` or `shards == 0`.
    pub fn level_chunks(&self, i: usize, shards: usize) -> std::slice::Chunks<'_, Perm> {
        assert!(shards > 0, "need at least one shard");
        let level = &self.levels[i];
        level.chunks(level.len().div_ceil(shards).max(1))
    }

    /// All levels, `levels()[i]` being the size-`i` representatives.
    #[must_use]
    pub fn levels(&self) -> &[Vec<Perm>] {
        &self.levels
    }

    /// Total number of stored representatives (all sizes).
    #[must_use]
    pub fn num_representatives(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// The optimal size of `f`, if it is ≤ k. Accepts any function (not
    /// just canonical representatives).
    #[must_use]
    pub fn size_of(&self, f: Perm) -> Option<usize> {
        let rep = self.sym.canonical(f);
        if !self.table.contains(rep) {
            return None;
        }
        (0..=self.k).find(|&i| self.levels[i].binary_search(&rep).is_ok())
    }

    /// The additive cost model the level buckets were built under
    /// (unit — cost = gate count — for the breadth-first paths).
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Whether the levels are genuine cost buckets rather than plain
    /// gate-count levels — i.e. the tables were built under a non-unit
    /// model. (The bucket *labels* alone cannot tell: quantum costs on
    /// small libraries happen to be contiguous integers, yet bucket 5
    /// holds the 1-gate Toffoli.) The engine routes non-bucketed tables
    /// through the gate-count scan, keeping its results bit-identical to
    /// the pre-cost-model engine.
    #[must_use]
    pub fn is_cost_bucketed(&self) -> bool {
        self.model != CostModel::unit()
    }

    /// The optimal cost labeling bucket `i` (equal to `i` on gate-count
    /// tables).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a bucket index.
    #[must_use]
    pub fn bucket_cost(&self, i: usize) -> u64 {
        self.bucket_costs[i]
    }

    /// All bucket costs, ascending (index-aligned with [`levels`](Self::levels)).
    #[must_use]
    pub fn bucket_costs(&self) -> &[u64] {
        &self.bucket_costs
    }

    /// The largest stored optimal cost (the generation budget actually
    /// reached; `k` on gate-count tables).
    #[must_use]
    pub fn max_cost(&self) -> u64 {
        *self.bucket_costs.last().expect("bucket 0 always exists")
    }

    /// The costliest single gate in the library under the table's model.
    #[must_use]
    pub fn max_gate_cost(&self) -> u64 {
        self.lib
            .iter()
            .map(|(_, gate, _)| self.model.gate_cost(gate))
            .max()
            .expect("library is non-empty")
    }

    /// The guaranteed meet-in-the-middle reach in cost units: the
    /// largest `r` such that any function of optimal cost ≤ `r` has a
    /// split with both halves ≤ `B =` [`max_cost`](Self::max_cost).
    ///
    /// Argument: a cost-`r` optimal circuit contains no gate costlier
    /// than `r`, so with `g(r)` = the costliest library gate of cost
    /// ≤ `r`, taking the maximal prefix of cost ≤ `B` leaves a suffix of
    /// cost < `r − B + g(r)`; both halves fit whenever `r ≤ 2B − g(r) +
    /// 1` (which also forces `g(r) ≤ B` for `r > B`). `r = B` always
    /// qualifies (the fast path), and the condition is monotone, so the
    /// reach is the largest qualifying `r ≤ 2B`. For unit tables this is
    /// the familiar `2k`; for quantum tables with `B ≥ 13` it is
    /// `2B − 12`.
    #[must_use]
    pub fn cost_reach(&self) -> u64 {
        let b = self.max_cost();
        let gate_costs: Vec<u64> = self
            .lib
            .iter()
            .map(|(_, gate, _)| self.model.gate_cost(gate))
            .collect();
        let mut reach = b;
        for r in b..=2 * b {
            let gmax = gate_costs
                .iter()
                .copied()
                .filter(|&g| g <= r)
                .max()
                .unwrap_or(1);
            if r <= (2 * b).saturating_sub(gmax) + 1 {
                reach = r;
            } else {
                break;
            }
        }
        reach
    }

    /// The bucket index of a **canonical** representative, or `None` if
    /// it is not stored.
    #[must_use]
    pub fn bucket_of(&self, rep: Perm) -> Option<usize> {
        if !self.table.contains(rep) {
            return None;
        }
        (0..self.levels.len()).find(|&i| self.levels[i].binary_search(&rep).is_ok())
    }

    /// The optimal cost of `f` under the table's model, if it is within
    /// the stored budget. Accepts any function (not just canonical
    /// representatives).
    #[must_use]
    pub fn cost_of(&self, f: Perm) -> Option<u64> {
        self.bucket_of(self.sym.canonical(f))
            .map(|i| self.bucket_costs[i])
    }

    /// Statistics of the underlying hash table (paper Table 2).
    #[must_use]
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }

    /// Exact per-size counts: reduced (classes) and full (functions),
    /// the paper's Table 4. Computing full counts enumerates every class
    /// once (≤ 48 conjugations per representative).
    #[must_use]
    pub fn counts(&self) -> Vec<LevelCount> {
        crate::counts::exact_counts(self)
    }

    /// Reduced-only per-size counts (no class-size enumeration; free).
    #[must_use]
    pub fn reduced_counts(&self) -> Vec<u64> {
        self.levels.iter().map(|l| l.len() as u64).collect()
    }

    /// Serializes to `path` (self-describing binary format with an FNV-1a
    /// checksum; see the `store` module).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        crate::store::save(self, path.as_ref())
    }

    /// Loads tables previously written by [`save`](Self::save), rebuilding
    /// the hash table (the paper's "load previously computed optimal
    /// circuits into RAM" step).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure, malformed or corrupted files,
    /// or checksum mismatch.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, StoreError> {
        crate::store::load(path.as_ref())
    }

    /// Pre-sizing hint: expected total representative count for the
    /// standard 4-wire library, or a growth-friendly default otherwise.
    pub(crate) fn estimated_total(lib: &GateLib, k: usize) -> usize {
        if lib.wires() == 4 && lib.len() == 32 {
            N4_REDUCED_COUNTS
                .iter()
                .take(k + 1)
                .sum::<u64>()
                .min(usize::MAX as u64) as usize
        } else {
            1 << 12
        }
    }
}

impl fmt::Debug for SearchTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SearchTables(n={}, k={}, {} classes)",
            self.lib.wires(),
            self.k,
            self.num_representatives()
        )
    }
}
