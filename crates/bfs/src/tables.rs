//! The product of the breadth-first search: hash table + per-size lists.

use std::fmt;
use std::path::Path;

use revsynth_canon::Symmetries;
use revsynth_circuit::{CostModel, GateLib};
use revsynth_mmap::ArcSlice;
use revsynth_perm::Perm;
use revsynth_table::{FnTable, InvariantIndex, TableStats};

use crate::counts::LevelCount;
use crate::info::{decode_stored, StoredGate};
use crate::shard::GenOptions;
use crate::store::{CheckpointWriter, StoreError, StoreInfo};

/// Known reduced (per-class) counts for the 4-wire NCT library, paper
/// Table 4 — used to pre-size the hash table. Indices are sizes 0..=9.
pub(crate) const N4_REDUCED_COUNTS: [u64; 10] = [
    1,
    4,
    33,
    425,
    6_538,
    101_983,
    1_482_686,
    19_466_575,
    225_242_556,
    2_208_511_226,
];

/// The per-size (or per-cost-bucket) lists of sorted canonical
/// representatives — the paper's reduced lists `A_i`.
///
/// Generation and extension paths own the lists as `Vec<Vec<Perm>>`; a
/// v5 store load borrows each level zero-copy from the file mapping
/// instead. Reads are uniform across both representations ([`Levels::iter`],
/// indexing); mutation goes through the crate-private `make_owned`, which
/// copies a mapped representation into owned vectors exactly once.
pub struct Levels(LevelsRepr);

enum LevelsRepr {
    Owned(Vec<Vec<Perm>>),
    Mapped(Vec<ArcSlice<Perm>>),
}

impl Levels {
    pub(crate) fn from_owned(levels: Vec<Vec<Perm>>) -> Self {
        Levels(LevelsRepr::Owned(levels))
    }

    pub(crate) fn from_mapped(levels: Vec<ArcSlice<Perm>>) -> Self {
        Levels(LevelsRepr::Mapped(levels))
    }

    /// Number of levels (cost buckets).
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.0 {
            LevelsRepr::Owned(v) => v.len(),
            LevelsRepr::Mapped(v) => v.len(),
        }
    }

    /// Whether there are no levels at all (never true for valid tables —
    /// level 0 holds the identity).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total representative count across all levels.
    #[must_use]
    pub fn total(&self) -> usize {
        self.iter().map(<[Perm]>::len).sum()
    }

    /// Iterates over the levels as sorted slices.
    pub fn iter(&self) -> LevelsIter<'_> {
        LevelsIter { levels: self, i: 0 }
    }

    /// Whether the levels still borrow from a store mapping.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        matches!(self.0, LevelsRepr::Mapped(_))
    }

    /// Promotes to owned storage (copying mapped levels once) and returns
    /// the mutable level vectors for the extension paths.
    pub(crate) fn make_owned(&mut self) -> &mut Vec<Vec<Perm>> {
        if let LevelsRepr::Mapped(slices) = &self.0 {
            let owned = slices.iter().map(|s| s.to_vec()).collect();
            self.0 = LevelsRepr::Owned(owned);
        }
        match &mut self.0 {
            LevelsRepr::Owned(v) => v,
            LevelsRepr::Mapped(_) => unreachable!("promoted to owned above"),
        }
    }
}

impl std::ops::Index<usize> for Levels {
    type Output = [Perm];

    fn index(&self, i: usize) -> &[Perm] {
        match &self.0 {
            LevelsRepr::Owned(v) => &v[i],
            LevelsRepr::Mapped(v) => &v[i],
        }
    }
}

/// Iterator over [`Levels`], yielding each level as a sorted slice.
pub struct LevelsIter<'a> {
    levels: &'a Levels,
    i: usize,
}

impl<'a> Iterator for LevelsIter<'a> {
    type Item = &'a [Perm];

    fn next(&mut self) -> Option<&'a [Perm]> {
        if self.i < self.levels.len() {
            self.i += 1;
            Some(&self.levels[self.i - 1])
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.levels.len() - self.i;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for LevelsIter<'_> {}

impl<'a> IntoIterator for &'a Levels {
    type Item = &'a [Perm];
    type IntoIter = LevelsIter<'a>;

    fn into_iter(self) -> LevelsIter<'a> {
        self.iter()
    }
}

/// Content equality, regardless of owned/mapped representation.
impl PartialEq for Levels {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for Levels {}

impl fmt::Debug for Levels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Levels({} levels, {} reps, {})",
            self.len(),
            self.total(),
            if self.is_mapped() { "mapped" } else { "owned" }
        )
    }
}

/// The precomputed optimal-circuit data for all functions of size ≤ k
/// (paper Algorithm 2's output: hash table `H` and lists `A_i`).
///
/// Build with [`SearchTables::generate`] (serial) or
/// [`SearchTables::generate_parallel`], persist with
/// [`save`](SearchTables::save)/[`load`](SearchTables::load) (the paper
/// computes once and re-loads in later runs).
pub struct SearchTables {
    pub(crate) lib: GateLib,
    pub(crate) sym: Symmetries,
    pub(crate) k: usize,
    pub(crate) table: FnTable,
    /// `levels[i]` = sorted canonical representatives of cost bucket `i`
    /// (for the breadth-first paths, bucket `i` = size exactly `i`).
    pub(crate) levels: Levels,
    /// Class-invariant gate index: combined invariant → bucket bitmask.
    pub(crate) invariants: InvariantIndex,
    /// The additive cost model the buckets were built under (unit for the
    /// breadth-first paths: cost = gate count).
    pub(crate) model: CostModel,
    /// `bucket_costs[i]` = the optimal cost shared by every member of
    /// `levels[i]`; strictly ascending from 0, equal to `0..=k` for the
    /// breadth-first (gate-count) paths.
    pub(crate) bucket_costs: Vec<u64>,
    /// The store format version these tables were loaded from (3, 4
    /// or 5), or `None` when generated in this process. Used to surface
    /// "a faster format exists — run `tables upgrade`" hints.
    pub(crate) source_format: Option<u8>,
}

impl SearchTables {
    /// Finalizes a gate-count table build: derives the [`InvariantIndex`]
    /// from the level lists (every representative's combined class
    /// invariant, tagged with its optimal size) and stamps the unit cost
    /// metadata (`bucket_costs[i] = i`). All gate-count construction
    /// paths — serial BFS, parallel BFS and store loading — go through
    /// here so the gate index can never be out of sync with the tables.
    pub(crate) fn assemble(
        lib: GateLib,
        sym: Symmetries,
        k: usize,
        table: FnTable,
        levels: Vec<Vec<Perm>>,
    ) -> Self {
        let levels = Levels::from_owned(levels);
        let invariants = crate::weighted::bucket_invariants(&levels);
        let bucket_costs: Vec<u64> = (0..levels.len() as u64).collect();
        SearchTables {
            lib,
            sym,
            k,
            table,
            levels,
            invariants,
            model: CostModel::unit(),
            bucket_costs,
            source_format: None,
        }
    }

    /// Finalizes a weighted (cost-bucketed) build: same invariant-index
    /// derivation, but levels are cost buckets labeled by
    /// `bucket_costs` (strictly ascending from 0, one entry per level).
    pub(crate) fn assemble_weighted(
        lib: GateLib,
        sym: Symmetries,
        model: CostModel,
        table: FnTable,
        levels: Vec<Vec<Perm>>,
        bucket_costs: Vec<u64>,
    ) -> Self {
        assert_eq!(levels.len(), bucket_costs.len(), "one cost per bucket");
        assert!(
            bucket_costs.first() == Some(&0) && bucket_costs.windows(2).all(|w| w[0] < w[1]),
            "bucket costs must ascend strictly from 0"
        );
        let levels = Levels::from_owned(levels);
        let invariants = crate::weighted::bucket_invariants(&levels);
        let k = levels.len().saturating_sub(1);
        SearchTables {
            lib,
            sym,
            k,
            table,
            levels,
            invariants,
            model,
            bucket_costs,
            source_format: None,
        }
    }
    /// Runs the breadth-first search over the full NCT library on `n`
    /// wires, up to size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 2, 3 or 4, or if `k > 16`.
    #[must_use]
    pub fn generate(n: usize, k: usize) -> Self {
        Self::generate_with(GateLib::nct(n), k)
    }

    /// Runs the breadth-first search over a custom gate library.
    ///
    /// For libraries **closed under wire relabeling**
    /// ([`GateLib::is_relabeling_closed`]) the computed sizes and circuits
    /// are exact optima. For non-closed libraries (e.g.
    /// [`GateLib::nearest_neighbor`]) the ×48 class reduction conflates
    /// relabeled variants, so results are optimal *up to simultaneous
    /// input/output relabeling* (the regime the paper's §5 calls trivial
    /// for restricted architectures), and reconstructed circuits may use
    /// gates from the library's [`relabeling closure`]
    /// (GateLib::relabeling_closure).
    ///
    /// # Panics
    ///
    /// Panics if `k > 16` (no 4-bit function needs anywhere near 16 gates;
    /// larger k is certainly a bug).
    #[must_use]
    pub fn generate_with(lib: GateLib, k: usize) -> Self {
        crate::generate::run(lib, k)
    }

    /// Parallel variant of [`generate_with`](Self::generate_with) using
    /// `threads` worker threads (std scoped threads; the result is
    /// identical up to which of several equally-minimal boundary gates is
    /// recorded).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `k > 16`.
    #[must_use]
    pub fn generate_parallel(lib: GateLib, k: usize, threads: usize) -> Self {
        crate::parallel::run(lib, k, threads)
    }

    /// Runs the **weighted** uniform-cost search (paper §5's "increasing
    /// cost by one"), settling every equivalence class of optimal cost
    /// ≤ `budget` under `model` into cost-bucketed levels (see the
    /// `weighted` module). With [`CostModel::unit`] the buckets coincide
    /// with the breadth-first levels.
    ///
    /// # Panics
    ///
    /// Panics if `budget > 200` or the model produces more than 32
    /// distinct cost values (the invariant-index mask width).
    #[must_use]
    pub fn generate_weighted(lib: GateLib, model: CostModel, budget: u64) -> Self {
        crate::weighted::run(lib, model, budget)
    }

    /// Gate-count generation with explicit construction knobs
    /// ([`GenOptions`]: worker threads, candidate shards, memory budget).
    /// The result is **byte-identical** for every knob setting — the
    /// sharded expander routes candidates by canonical key, so the
    /// first-discovered boundary gate wins regardless of spill timing.
    ///
    /// # Panics
    ///
    /// Panics if `k > 16`.
    #[must_use]
    pub fn generate_opts(lib: GateLib, k: usize, opts: &GenOptions) -> Self {
        crate::generate::run_opts(lib, k, opts)
    }

    /// Generates from scratch while **streaming every completed level**
    /// (cost bucket) to a format-v4 store at `path`: each level is
    /// written, fsynced, and published via the store trailer before the
    /// next one starts, so an interrupt at any instant leaves a loadable
    /// store missing only the in-flight level. With a unit `model` this
    /// is the breadth-first search to size `budget`; otherwise the
    /// weighted uniform-cost search to cost `budget` (which is serial —
    /// the [`GenOptions`] knobs tune only the unit-model expander).
    ///
    /// The finished file is byte-identical to [`save`](Self::save) of
    /// the same tables — and to any interrupted-then-
    /// [resumed](Self::resume_checkpointed) run.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on any I/O failure (the checkpoint file is
    /// left in its last published state).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range budgets (unit: `budget > 16`; weighted:
    /// `budget > 200` or more than 32 distinct cost values).
    pub fn generate_checkpointed<P: AsRef<Path>>(
        lib: GateLib,
        model: CostModel,
        budget: u64,
        opts: &GenOptions,
        path: P,
    ) -> Result<Self, StoreError> {
        if model == CostModel::unit() {
            let k = usize::try_from(budget).expect("unit budget is a level count");
            crate::generate::run_checkpointed(lib, k, opts, path.as_ref())
        } else {
            crate::weighted::run_checkpointed(lib, model, budget, path.as_ref())
        }
    }

    /// Resumes an interrupted (or simply shallower) checkpointed
    /// generation: loads the v4 store at `path`, drops any torn
    /// in-flight level, and extends it to `budget` — streaming the new
    /// levels back into the same file. The result (in RAM and on disk)
    /// is byte-identical to an uninterrupted
    /// [`generate_checkpointed`](Self::generate_checkpointed) run with
    /// the same target.
    ///
    /// Unit-model stores resume the breadth-first search from the
    /// deepest completed level; cost-bucketed stores rebuild the
    /// uniform-cost frontier from the settled buckets. A store already
    /// at (or past) `budget` is returned unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the store cannot be loaded (v3 files
    /// are loadable but not extendable in place — re-save as v4 first)
    /// or on I/O failure while appending.
    pub fn resume_checkpointed<P: AsRef<Path>>(
        path: P,
        budget: u64,
        opts: &GenOptions,
    ) -> Result<Self, StoreError> {
        let (mut tables, mut ckpt) = CheckpointWriter::resume(path.as_ref(), true)?;
        tables.extend_impl(budget, opts, Some(&mut ckpt))?;
        Ok(tables)
    }

    /// Extends the tables **in place** until every class of optimal cost
    /// ≤ `budget` is stored (for gate-count tables the budget is the
    /// size `k`). A budget at or below [`max_cost`](Self::max_cost) is a
    /// no-op; the invariant index and cost metadata are rebuilt to cover
    /// the new levels (the rebuild walks every stored level, so growing
    /// one level at a time costs more index work than one big
    /// extension). The extension replays exactly what single-shot
    /// generation at the larger budget would have done, so the extended
    /// tables are indistinguishable from freshly generated ones. On
    /// cost-bucketed tables the [`GenOptions`] knobs are ignored (the
    /// weighted search is serial).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range budgets (unit: `budget > 16`; weighted:
    /// `budget > 200` or more than 32 distinct cost values).
    pub fn extend_to(&mut self, budget: u64, opts: &GenOptions) {
        self.extend_impl(budget, opts, None)
            .expect("in-RAM extension performs no I/O");
    }

    /// The shared extension core behind [`extend_to`](Self::extend_to)
    /// and [`resume_checkpointed`](Self::resume_checkpointed).
    fn extend_impl(
        &mut self,
        budget: u64,
        opts: &GenOptions,
        ckpt: Option<&mut CheckpointWriter>,
    ) -> Result<(), StoreError> {
        if budget <= self.max_cost() {
            return Ok(());
        }
        if self.model == CostModel::unit() {
            let k = usize::try_from(budget).expect("unit budget is a level count");
            crate::generate::extend_levels(
                &self.lib,
                &self.sym,
                &mut self.table,
                self.levels.make_owned(),
                k,
                opts,
                ckpt,
            )?;
            self.bucket_costs = (0..self.levels.len() as u64).collect();
        } else {
            crate::weighted::settle(
                &self.lib,
                &self.model,
                &self.sym,
                &mut self.table,
                self.levels.make_owned(),
                &mut self.bucket_costs,
                budget,
                ckpt,
            )?;
        }
        self.k = self.levels.len().saturating_sub(1);
        self.invariants = crate::weighted::bucket_invariants(&self.levels);
        Ok(())
    }

    /// The wire count.
    #[must_use]
    pub fn wires(&self) -> usize {
        self.lib.wires()
    }

    /// The depth of the search: representatives of size ≤ k are stored.
    #[must_use]
    pub const fn k(&self) -> usize {
        self.k
    }

    /// The gate library the search ran over.
    #[must_use]
    pub fn lib(&self) -> &GateLib {
        &self.lib
    }

    /// The symmetry context (shared with callers so they canonicalize with
    /// the same walk).
    #[must_use]
    pub fn sym(&self) -> &Symmetries {
        &self.sym
    }

    /// Whether `rep` (must already be canonical) has size ≤ k.
    #[inline]
    #[must_use]
    pub fn contains(&self, rep: Perm) -> bool {
        self.table.contains(rep)
    }

    /// The stored boundary-gate record for a canonical representative of
    /// size ≤ k, or `None` if the representative is not in the table.
    ///
    /// # Panics
    ///
    /// Panics if the stored byte is malformed (impossible unless the value
    /// was corrupted after [`load`](Self::load) verification).
    #[must_use]
    pub fn lookup(&self, rep: Perm) -> Option<StoredGate> {
        self.table
            .get(rep)
            .map(|byte| decode_stored(byte).expect("table holds only valid gate records"))
    }

    /// The underlying hash table of canonical representatives, for callers
    /// that pipeline their own probes ([`FnTable::probe_start`] /
    /// [`FnTable::probe_finish`]) instead of going through
    /// [`contains`](Self::contains).
    #[must_use]
    pub fn table(&self) -> &FnTable {
        &self.table
    }

    /// The class-invariant gate index: maps each combined invariant
    /// ([`InvariantIndex::key_of`]) occurring among the stored
    /// representatives to the bitmask of optimal sizes at which it
    /// occurs. The meet-in-the-middle engine uses it to skip candidates
    /// whose invariant proves they cannot be in the table.
    #[must_use]
    pub fn invariants(&self) -> &InvariantIndex {
        &self.invariants
    }

    /// The sorted canonical representatives of size exactly `i`
    /// (the paper's reduced list `A_i`).
    ///
    /// # Panics
    ///
    /// Panics if `i > k`.
    #[must_use]
    pub fn level(&self, i: usize) -> &[Perm] {
        &self.levels[i]
    }

    /// Splits the size-`i` list into at most `shards` contiguous sorted
    /// slices of near-equal length, for fan-out across worker threads
    /// (the level lists are sorted, so each shard covers a disjoint,
    /// ascending key range — a parallel scan that takes the hit from the
    /// lowest shard is deterministic regardless of thread count).
    ///
    /// # Panics
    ///
    /// Panics if `i > k` or `shards == 0`.
    pub fn level_chunks(&self, i: usize, shards: usize) -> std::slice::Chunks<'_, Perm> {
        assert!(shards > 0, "need at least one shard");
        let level = &self.levels[i];
        level.chunks(level.len().div_ceil(shards).max(1))
    }

    /// All levels, `levels()[i]` being the size-`i` representatives
    /// (owned by generation paths, borrowed zero-copy from the file
    /// mapping after a v5 load).
    #[must_use]
    pub fn levels(&self) -> &Levels {
        &self.levels
    }

    /// Total number of stored representatives (all sizes).
    #[must_use]
    pub fn num_representatives(&self) -> usize {
        self.levels.total()
    }

    /// The optimal size of `f`, if it is ≤ k. Accepts any function (not
    /// just canonical representatives).
    #[must_use]
    pub fn size_of(&self, f: Perm) -> Option<usize> {
        let rep = self.sym.canonical(f);
        if !self.table.contains(rep) {
            return None;
        }
        (0..=self.k).find(|&i| self.levels[i].binary_search(&rep).is_ok())
    }

    /// The additive cost model the level buckets were built under
    /// (unit — cost = gate count — for the breadth-first paths).
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Whether the levels are genuine cost buckets rather than plain
    /// gate-count levels — i.e. the tables were built under a non-unit
    /// model. (The bucket *labels* alone cannot tell: quantum costs on
    /// small libraries happen to be contiguous integers, yet bucket 5
    /// holds the 1-gate Toffoli.) The engine routes non-bucketed tables
    /// through the gate-count scan, keeping its results bit-identical to
    /// the pre-cost-model engine.
    #[must_use]
    pub fn is_cost_bucketed(&self) -> bool {
        self.model != CostModel::unit()
    }

    /// The optimal cost labeling bucket `i` (equal to `i` on gate-count
    /// tables).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a bucket index.
    #[must_use]
    pub fn bucket_cost(&self, i: usize) -> u64 {
        self.bucket_costs[i]
    }

    /// All bucket costs, ascending (index-aligned with [`levels`](Self::levels)).
    #[must_use]
    pub fn bucket_costs(&self) -> &[u64] {
        &self.bucket_costs
    }

    /// The largest stored optimal cost (the generation budget actually
    /// reached; `k` on gate-count tables).
    #[must_use]
    pub fn max_cost(&self) -> u64 {
        *self.bucket_costs.last().expect("bucket 0 always exists")
    }

    /// The costliest single gate in the library under the table's model.
    #[must_use]
    pub fn max_gate_cost(&self) -> u64 {
        self.lib
            .iter()
            .map(|(_, gate, _)| self.model.gate_cost(gate))
            .max()
            .expect("library is non-empty")
    }

    /// The guaranteed meet-in-the-middle reach in cost units: the
    /// largest `r` such that any function of optimal cost ≤ `r` has a
    /// split with both halves ≤ `B =` [`max_cost`](Self::max_cost).
    ///
    /// Argument: a cost-`r` optimal circuit contains no gate costlier
    /// than `r`, so with `g(r)` = the costliest library gate of cost
    /// ≤ `r`, taking the maximal prefix of cost ≤ `B` leaves a suffix of
    /// cost < `r − B + g(r)`; both halves fit whenever `r ≤ 2B − g(r) +
    /// 1` (which also forces `g(r) ≤ B` for `r > B`). `r = B` always
    /// qualifies (the fast path), and the condition is monotone, so the
    /// reach is the largest qualifying `r ≤ 2B`. For unit tables this is
    /// the familiar `2k`; for quantum tables with `B ≥ 13` it is
    /// `2B − 12`.
    #[must_use]
    pub fn cost_reach(&self) -> u64 {
        let b = self.max_cost();
        let gate_costs: Vec<u64> = self
            .lib
            .iter()
            .map(|(_, gate, _)| self.model.gate_cost(gate))
            .collect();
        let mut reach = b;
        for r in b..=2 * b {
            let gmax = gate_costs
                .iter()
                .copied()
                .filter(|&g| g <= r)
                .max()
                .unwrap_or(1);
            if r <= (2 * b).saturating_sub(gmax) + 1 {
                reach = r;
            } else {
                break;
            }
        }
        reach
    }

    /// The bucket index of a **canonical** representative, or `None` if
    /// it is not stored.
    #[must_use]
    pub fn bucket_of(&self, rep: Perm) -> Option<usize> {
        if !self.table.contains(rep) {
            return None;
        }
        (0..self.levels.len()).find(|&i| self.levels[i].binary_search(&rep).is_ok())
    }

    /// The optimal cost of `f` under the table's model, if it is within
    /// the stored budget. Accepts any function (not just canonical
    /// representatives).
    #[must_use]
    pub fn cost_of(&self, f: Perm) -> Option<u64> {
        self.bucket_of(self.sym.canonical(f))
            .map(|i| self.bucket_costs[i])
    }

    /// Statistics of the underlying hash table (paper Table 2).
    #[must_use]
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }

    /// Exact per-size counts: reduced (classes) and full (functions),
    /// the paper's Table 4. Computing full counts enumerates every class
    /// once (≤ 48 conjugations per representative).
    #[must_use]
    pub fn counts(&self) -> Vec<LevelCount> {
        crate::counts::exact_counts(self)
    }

    /// Reduced-only per-size counts (no class-size enumeration; free).
    #[must_use]
    pub fn reduced_counts(&self) -> Vec<u64> {
        self.levels.iter().map(|l| l.len() as u64).collect()
    }

    /// The store format version these tables were loaded from (3, 4
    /// or 5), or `None` when they were generated in this process. Lets
    /// callers suggest `tables upgrade` when a faster format exists.
    #[must_use]
    pub fn source_format(&self) -> Option<u8> {
        self.source_format
    }

    /// A format-independent digest of the logical table contents (wires,
    /// library, cost model, and every level's cost, keys and gate
    /// records). Two stores of the same tables — v3, v4 or v5 — agree on
    /// this digest even though their file bytes differ; CI pins it across
    /// the v4→v5 upgrade.
    #[must_use]
    pub fn content_digest(&self) -> u64 {
        crate::store::content_digest(self)
    }

    /// Serializes to `path` in the checkpointable v4 format
    /// (self-describing, per-level FNV-1a checksums; see the `store`
    /// module). The bytes are identical to what a
    /// [checkpointed generation](Self::generate_checkpointed) of the
    /// same tables writes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure (with the path attached).
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), StoreError> {
        crate::store::save(self, path.as_ref())
    }

    /// Serializes to `path` in the mmap-friendly v5 format: page-aligned
    /// contiguous little-endian sections (level keys/values, the hash
    /// table's slot arrays, the invariant index) with per-section FNV-1a
    /// checksums, so a later [`load`](Self::load) borrows everything
    /// zero-copy off the page cache in milliseconds. The bytes are a
    /// deterministic function of the logical tables: saving equal tables
    /// always produces identical files.
    ///
    /// Unlike v4, a v5 file is written in one shot (no mid-generation
    /// checkpointing); checkpointed generation still streams v4 and
    /// upgrades at the end (see [`upgrade`](Self::upgrade)).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure (with the path attached).
    pub fn save_v5<P: AsRef<Path>>(&self, path: P) -> Result<(), StoreError> {
        crate::store::save_v5(self, path.as_ref())
    }

    /// Upgrades the store at `path` to format v5 **in place**: fully
    /// validates and loads the existing store (any version), writes the
    /// v5 bytes to a sibling temporary file, and atomically renames it
    /// over the original. A crash at any instant leaves either the old
    /// or the new store intact, never a torn file; open mappings of the
    /// old file keep working (the rename unlinks the name, not the
    /// inode). Upgrading an already-v5 store rewrites it canonically
    /// (byte-identical for an untampered file).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the existing store fails validation or
    /// on I/O failure.
    pub fn upgrade<P: AsRef<Path>>(path: P) -> Result<(), StoreError> {
        crate::store::upgrade(path.as_ref())
    }

    /// Loads like [`load`](Self::load) but verifies **everything** up
    /// front: on v5 stores every section checksum plus full structural
    /// checks (sorted valid levels, hash-table membership of every
    /// representative, invariant-index admission), where the fast path
    /// defers bulk checksums to first use. v3/v4 stores are already
    /// fully verified by their loaders, so this is the universal
    /// "trust this file" entry point used by `tables verify`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure, malformed or corrupted
    /// files, or checksum mismatch.
    pub fn load_validated<P: AsRef<Path>>(path: P) -> Result<Self, StoreError> {
        crate::store::load_validated(path.as_ref())
    }

    /// Serializes to the legacy v3 format (single whole-file checksum,
    /// not extendable in place) for consumers that predate v4.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure (with the path attached).
    pub fn save_v3<P: AsRef<Path>>(&self, path: P) -> Result<(), StoreError> {
        crate::store::save_v3(self, path.as_ref())
    }

    /// Loads tables previously written by [`save`](Self::save) or
    /// [`save_v5`](Self::save_v5) (any format version). v3/v4 stores are
    /// deserialized and the hash table rebuilt (the paper's "load
    /// previously computed optimal circuits into RAM" step, seconds at
    /// k = 7); v5 stores are mapped and borrowed zero-copy (milliseconds
    /// at any size — bulk section checksums are deferred to
    /// [`load_validated`](Self::load_validated) / `tables verify`, while
    /// header, layout and probe-termination witnesses are always checked
    /// eagerly). Check [`source_format`](Self::source_format) to suggest
    /// an upgrade when the slow path was taken.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure, malformed or corrupted files,
    /// or checksum mismatch — always naming the offending file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, StoreError> {
        crate::store::load(path.as_ref())
    }

    /// Summarizes a store file (version, wires, model, per-level costs
    /// and class counts) **without** reading or validating the level
    /// bodies — cheap enough to poll while a checkpointed generation is
    /// appending to the same file, which is how the CI pipeline decides
    /// when to kill a generation mid-level.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure or a malformed
    /// header/trailer.
    pub fn peek<P: AsRef<Path>>(path: P) -> Result<StoreInfo, StoreError> {
        crate::store::peek(path.as_ref())
    }

    /// Pre-sizing hint: expected total representative count for the
    /// standard 4-wire library, or a growth-friendly default otherwise.
    pub(crate) fn estimated_total(lib: &GateLib, k: usize) -> usize {
        if lib.wires() == 4 && lib.len() == 32 {
            N4_REDUCED_COUNTS
                .iter()
                .take(k + 1)
                .sum::<u64>()
                .min(usize::MAX as u64) as usize
        } else {
            1 << 12
        }
    }
}

impl fmt::Debug for SearchTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SearchTables(n={}, k={}, {} classes)",
            self.lib.wires(),
            self.k,
            self.num_representatives()
        )
    }
}
