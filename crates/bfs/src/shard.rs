//! Sharded, memory-bounded expansion of one breadth-first level — the
//! single expander behind the serial path, the multi-threaded path and
//! checkpointed/resumed generation.
//!
//! Every `(representative, gate)` product of the frontier is produced in
//! **frontier order** (each representative, then its inverse, each by
//! every library gate — multi-threaded production assigns workers
//! contiguous frontier chunks and concatenates their outputs in chunk
//! order, so the candidate stream is the same as the serial one), then
//! routed to one of `shards` candidate buffers by a hash of its canonical
//! key. Routing by key means **every duplicate discovery of one class
//! lands in the same shard, in stream order**, so when a shard is spilled
//! (deduplicated against the table and folded into the level) the
//! first-discovered boundary gate wins — exactly the record the
//! unsharded serial search would have kept. The produced tables are
//! therefore **byte-identical for every `threads` × `shards` ×
//! `max_mem` configuration**, which is what lets the CI pipeline pin one
//! store digest across single-shot, parallel, and kill-and-resumed runs.
//!
//! Shards bound the working set: the frontier is consumed in blocks (so
//! buffers hold at most one block's candidates), and a `max_mem` budget
//! spills the fullest shard early whenever the buffered candidates exceed
//! it — the per-level transient memory is then `O(max_mem)` on top of the
//! tables themselves.

use revsynth_canon::Symmetries;
use revsynth_circuit::GateLib;
use revsynth_perm::Perm;
use revsynth_table::FnTable;

use crate::info::encode_stored;

/// Source representatives per production block (each yields ≤ 2·|lib|
/// candidates; the block bound keeps the "already known" filter fresh
/// and the candidate buffers small even without a `max_mem` budget).
const BLOCK: usize = 1 << 14;

/// In-memory footprint of one buffered candidate.
const CANDIDATE_BYTES: usize = std::mem::size_of::<(Perm, u8)>();

/// Construction knobs for table generation (see
/// [`SearchTables::generate_opts`](crate::SearchTables::generate_opts),
/// [`extend_to`](crate::SearchTables::extend_to) and the checkpointed
/// variants). The produced tables are byte-identical for every setting;
/// the knobs trade wall-clock time against memory and core count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenOptions {
    threads: usize,
    shards: usize,
    max_mem: Option<usize>,
}

impl GenOptions {
    /// Defaults: 1 thread, 8 shards, no explicit memory budget (buffers
    /// are still bounded by the production block size).
    #[must_use]
    pub fn new() -> Self {
        GenOptions {
            threads: 1,
            shards: 8,
            max_mem: None,
        }
    }

    /// Worker threads for candidate production (`0` means all cores).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Number of candidate-buffer shards (clamped to ≥ 1).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Caps the bytes held in candidate buffers; when the cap is hit the
    /// fullest shard is spilled into the tables early. `None` keeps the
    /// block-size bound only.
    #[must_use]
    pub fn max_mem_bytes(mut self, bytes: Option<usize>) -> Self {
        self.max_mem = bytes;
        self
    }

    /// The resolved worker-thread count.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.threads
        }
    }

    /// The shard count.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The memory budget, if one was set.
    #[must_use]
    pub fn max_mem(&self) -> Option<usize> {
        self.max_mem
    }
}

impl Default for GenOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Fibonacci-hash shard routing: a pure function of the canonical key,
/// so duplicates of one class always collide into the same shard.
#[inline]
fn shard_of(rep: Perm, shards: usize) -> usize {
    let h = rep.packed().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((u128::from(h) * shards as u128) >> 64) as usize
}

/// Expands one level: composes every frontier representative (and its
/// inverse) with every library gate, canonicalizes, filters against the
/// table, and returns the sorted list of newly discovered
/// representatives (all inserted into `table` with their boundary-gate
/// bytes).
pub(crate) fn expand_level(
    lib: &GateLib,
    sym: &Symmetries,
    table: &mut FnTable,
    frontier: &[Perm],
    opts: &GenOptions,
) -> Vec<Perm> {
    let shard_count = opts.shard_count();
    let spill_at = opts.max_mem().map(|bytes| (bytes / CANDIDATE_BYTES).max(1));
    let threads = opts.effective_threads();
    let mut buffers: Vec<Vec<(Perm, u8)>> = vec![Vec::new(); shard_count];
    let mut accepted: Vec<Vec<Perm>> = vec![Vec::new(); shard_count];
    let mut buffered = 0usize;
    let mut produced: Vec<(Perm, u8)> = Vec::new();
    for block in frontier.chunks(BLOCK) {
        produce_block(lib, sym, table, block, threads, &mut produced);
        for &(rep, byte) in &produced {
            let s = shard_of(rep, shard_count);
            buffers[s].push((rep, byte));
            buffered += 1;
            if spill_at.is_some_and(|cap| buffered >= cap) {
                spill_fullest(&mut buffers, &mut accepted, table, &mut buffered);
            }
        }
        // End-of-block spill of every shard: keeps the production-side
        // "already known" prefilter fresh for the next block, exactly
        // like the blocked insertion of the original parallel search.
        for (buf, out) in buffers.iter_mut().zip(accepted.iter_mut()) {
            spill(buf, out, table, &mut buffered);
        }
    }
    let mut level: Vec<Perm> = accepted.into_iter().flatten().collect();
    level.sort_unstable();
    level
}

/// Folds one shard's buffered candidates into the table in stream order
/// (first discovery of a class wins) and clears the buffer.
fn spill(
    buf: &mut Vec<(Perm, u8)>,
    out: &mut Vec<Perm>,
    table: &mut FnTable,
    buffered: &mut usize,
) {
    *buffered -= buf.len();
    for &(rep, byte) in buf.iter() {
        if table.insert_if_absent(rep, byte) {
            out.push(rep);
        }
    }
    buf.clear();
}

/// Spills the fullest shard (lowest index on ties — deterministic, not
/// that it matters: per-class winners are shard-local).
fn spill_fullest(
    buffers: &mut [Vec<(Perm, u8)>],
    accepted: &mut [Vec<Perm>],
    table: &mut FnTable,
    buffered: &mut usize,
) {
    let fullest = (0..buffers.len())
        .max_by_key(|&s| (buffers[s].len(), usize::MAX - s))
        .expect("at least one shard");
    spill(
        &mut buffers[fullest],
        &mut accepted[fullest],
        table,
        buffered,
    );
}

/// Produces the candidate stream of one frontier block into `out`
/// (cleared first), preserving frontier order; candidates already in the
/// table are prefiltered (duplicates *within* the stream are kept — the
/// spill resolves them first-wins).
fn produce_block(
    lib: &GateLib,
    sym: &Symmetries,
    table: &FnTable,
    block: &[Perm],
    threads: usize,
    out: &mut Vec<(Perm, u8)>,
) {
    out.clear();
    if threads <= 1 || block.len() < 2 {
        for &f in block {
            collect(lib, sym, table, out, f);
            let inv = f.inverse();
            if inv != f {
                collect(lib, sym, table, out, inv);
            }
        }
        return;
    }
    let per_worker = block.len().div_ceil(threads).max(1);
    let shards: Vec<Vec<(Perm, u8)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = block
            .chunks(per_worker)
            .map(|sub| {
                scope.spawn(move || {
                    let mut part: Vec<(Perm, u8)> = Vec::new();
                    for &f in sub {
                        collect(lib, sym, table, &mut part, f);
                        let inv = f.inverse();
                        if inv != f {
                            collect(lib, sym, table, &mut part, inv);
                        }
                    }
                    part
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread must not panic"))
            .collect()
    });
    for part in shards {
        out.extend(part);
    }
}

#[inline]
fn collect(lib: &GateLib, sym: &Symmetries, table: &FnTable, out: &mut Vec<(Perm, u8)>, f: Perm) {
    for (_, gate, gate_perm) in lib.iter() {
        let h = f.then(gate_perm);
        let w = sym.canonicalize(h);
        if table.contains(w.rep) {
            continue;
        }
        let stored = gate.conjugate_by_wires(w.sigma);
        out.push((w.rep, encode_stored(stored, w.inverted)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::SearchTables;

    #[test]
    fn shard_routing_is_a_pure_function_of_the_key() {
        let t = SearchTables::generate(3, 3);
        for shards in [1usize, 2, 7, 8] {
            for &rep in t.level(2) {
                let s = shard_of(rep, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(rep, shards), "stable");
            }
        }
    }

    #[test]
    fn every_knob_combination_produces_identical_tables() {
        // The whole point of the design: threads × shards × max_mem only
        // changes *when* candidates are spilled, never which class wins
        // or which boundary byte is recorded.
        let baseline = SearchTables::generate_opts(
            revsynth_circuit::GateLib::nct(3),
            4,
            &GenOptions::new().threads(1).shards(1),
        );
        for threads in [1usize, 3] {
            for shards in [1usize, 4, 16] {
                for max_mem in [None, Some(64), Some(4096)] {
                    let opts = GenOptions::new()
                        .threads(threads)
                        .shards(shards)
                        .max_mem_bytes(max_mem);
                    let t =
                        SearchTables::generate_opts(revsynth_circuit::GateLib::nct(3), 4, &opts);
                    assert_eq!(t.levels(), baseline.levels(), "{opts:?}");
                    for level in t.levels() {
                        for &rep in level {
                            assert_eq!(t.lookup(rep), baseline.lookup(rep), "{opts:?} {rep}");
                        }
                    }
                }
            }
        }
    }
}
