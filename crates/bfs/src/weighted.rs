//! Weighted (cost-bucketed) table generation — the paper's §5 sketch,
//! "search for small circuits via increasing cost by one", run all the
//! way into the [`SearchTables`] product so the meet-in-the-middle
//! machinery works over any additive [`CostModel`], not just gate count.
//!
//! # Algorithm
//!
//! A uniform-cost search (Dijkstra with an integer bucket queue) over
//! equivalence classes: expanding a settled class `f` (and its inverse —
//! the same completeness argument as the breadth-first `generate`
//! module, since relabeling and reversal preserve every gate's cost) by
//! every library gate `λ` discovers `canonical(f.then(λ))` at tentative
//! cost `cost(f) + cost(λ)`. Classes settle in nondecreasing cost, so
//! the first settlement is at the optimal cost and the recorded boundary
//! gate peels toward a *strictly cheaper* function — exactly the witness
//! mechanics the gate-count peel uses, so [`SearchTables::lookup`] and
//! the fast-path reconstruction work unchanged.
//!
//! # Restartability
//!
//! Settled buckets are expanded in **sorted representative order**, which
//! makes the whole search a deterministic function of the settled prefix:
//! the pending queue can always be rebuilt by re-expanding the settled
//! buckets that can still reach past the settled frontier (those with
//! `cost > settled_max − max_gate_cost`; anything cheaper only produces
//! candidates that are already settled). [`settle`] therefore serves
//! three callers with byte-identical results: fresh generation,
//! budget extension of in-RAM tables, and resuming a checkpointed store
//! whose generation was interrupted mid-bucket.
//!
//! # The product
//!
//! Levels become **cost buckets**: `levels[i]` holds the sorted
//! representatives of optimal cost exactly `bucket_costs[i]`, with
//! `bucket_costs` strictly ascending from 0 (the identity). The unit
//! model degenerates to `bucket_costs[i] == i` — the same level layout
//! the breadth-first paths produce — which is how the engine recognizes
//! gate-count tables and keeps their scan bit-identical.
//!
//! The [`InvariantIndex`] is keyed by **bucket index** (not raw cost),
//! so the cost-bounded engine's gate asks "does any stored class in
//! residual-cost bucket `b` share this candidate's invariants" — the
//! exact-`k` residue argument of the gate-count gate generalized to
//! exact-residual-cost buckets. Bucket indices must fit the index's
//! 32-bit distance masks, hence the budget assertion below.

use std::collections::BTreeMap;
use std::path::Path;

use revsynth_canon::Symmetries;
use revsynth_circuit::{CostModel, GateLib};
use revsynth_perm::Perm;
use revsynth_table::{FnTable, InvariantIndex};

use crate::info::{encode_stored, IDENTITY_BYTE};
use crate::store::{CheckpointWriter, StoreError};
use crate::tables::SearchTables;

/// Hard ceiling on the number of distinct cost values (= buckets): the
/// invariant index stores per-bucket occurrence masks in a `u32`.
pub(crate) const MAX_BUCKETS: usize = 32;

pub(crate) fn run(lib: GateLib, model: CostModel, budget: u64) -> SearchTables {
    let (sym, mut table, mut levels, mut costs) = seed(lib.wires());
    settle(
        &lib,
        &model,
        &sym,
        &mut table,
        &mut levels,
        &mut costs,
        budget,
        None,
    )
    .expect("no checkpoint writer: settling performs no I/O");
    SearchTables::assemble_weighted(lib, sym, model, table, levels, costs)
}

/// Fresh weighted generation streamed to a v4 checkpoint store: every
/// settled bucket is written (then fsynced) before the next one starts.
pub(crate) fn run_checkpointed(
    lib: GateLib,
    model: CostModel,
    budget: u64,
    path: &Path,
) -> Result<SearchTables, StoreError> {
    let (sym, mut table, mut levels, mut costs) = seed(lib.wires());
    let mut ckpt = CheckpointWriter::create(path, &lib, &model, true)?;
    ckpt.append_level(0, &levels[0], &table)?;
    settle(
        &lib,
        &model,
        &sym,
        &mut table,
        &mut levels,
        &mut costs,
        budget,
        Some(&mut ckpt),
    )?;
    Ok(SearchTables::assemble_weighted(
        lib, sym, model, table, levels, costs,
    ))
}

fn seed(n: usize) -> (Symmetries, FnTable, Vec<Vec<Perm>>, Vec<u64>) {
    let sym = Symmetries::new(n);
    let mut table = FnTable::for_entries(1 << 12);
    table.insert(Perm::identity(), IDENTITY_BYTE);
    (sym, table, vec![vec![Perm::identity()]], vec![0])
}

/// Runs the uniform-cost search from the settled state in
/// `levels`/`bucket_costs` (which must describe a complete prefix: every
/// class of optimal cost ≤ `bucket_costs.last()` settled) until every
/// class of optimal cost ≤ `budget` is settled. The pending queue is
/// rebuilt from the settled frontier, so this is equally a fresh run
/// (state = the identity bucket), an in-RAM budget extension, or a
/// checkpoint resume — all byte-identical.
///
/// # Panics
///
/// Panics if `budget > 200` or the model produces more than
/// [`MAX_BUCKETS`] distinct cost values.
#[allow(clippy::too_many_arguments)]
pub(crate) fn settle(
    lib: &GateLib,
    model: &CostModel,
    sym: &Symmetries,
    table: &mut FnTable,
    levels: &mut Vec<Vec<Perm>>,
    bucket_costs: &mut Vec<u64>,
    budget: u64,
    mut ckpt: Option<&mut CheckpointWriter>,
) -> Result<(), StoreError> {
    assert!(
        budget <= 200,
        "cost budget {budget} looks like a unit mix-up"
    );
    let gmax = lib
        .iter()
        .map(|(_, gate, _)| model.gate_cost(gate))
        .max()
        .expect("library is non-empty");
    let settled_max = *bucket_costs.last().expect("bucket 0 always exists");
    // pending[c] = (representative, stored-gate byte) discovered at
    // tentative cost c; duplicates are filtered at settlement.
    let mut pending: BTreeMap<u64, Vec<(Perm, u8)>> = BTreeMap::new();
    // Rebuild the frontier: only settled buckets within one gate cost of
    // the settled maximum can discover anything new (cheaper buckets'
    // expansions all land at tentative cost ≤ settled_max, i.e. on
    // classes that are already settled and filtered out).
    for (i, level) in levels.iter().enumerate() {
        let cost = bucket_costs[i];
        if cost + gmax <= settled_max {
            continue;
        }
        for &rep in level {
            expand(lib, sym, model, rep, cost, budget, table, &mut pending);
            let inv = rep.inverse();
            if inv != rep {
                expand(lib, sym, model, inv, cost, budget, table, &mut pending);
            }
        }
    }

    while let Some((&cost, _)) = pending.iter().next() {
        let batch = pending.remove(&cost).expect("key just observed");
        let mut newly: Vec<Perm> = Vec::new();
        for (rep, byte) in batch {
            // Settled earlier (at this or a smaller cost) ⇒ skip.
            if table.insert_if_absent(rep, byte) {
                newly.push(rep);
            }
        }
        if newly.is_empty() {
            continue;
        }
        assert!(
            bucket_costs.len() < MAX_BUCKETS,
            "more than {MAX_BUCKETS} cost buckets exceed the 32-bit invariant masks \
             (lower the budget)"
        );
        // Sorted expansion order makes the search restartable: a resumed
        // run re-expands stored (sorted) buckets and must push the same
        // pending stream the uninterrupted run pushed.
        newly.sort_unstable();
        for &rep in &newly {
            expand(lib, sym, model, rep, cost, budget, table, &mut pending);
            let inv = rep.inverse();
            if inv != rep {
                expand(lib, sym, model, inv, cost, budget, table, &mut pending);
            }
        }
        if let Some(w) = ckpt.as_deref_mut() {
            w.append_level(cost, &newly, table)?;
        }
        bucket_costs.push(cost);
        levels.push(newly);
    }
    Ok(())
}

/// Pushes every one-gate expansion of `f` (settled at `cost`) into the
/// pending buckets, recording the boundary-gate byte exactly as the
/// breadth-first expansion does.
#[allow(clippy::too_many_arguments)]
fn expand(
    lib: &GateLib,
    sym: &Symmetries,
    model: &CostModel,
    f: Perm,
    cost: u64,
    budget: u64,
    table: &FnTable,
    pending: &mut BTreeMap<u64, Vec<(Perm, u8)>>,
) {
    for (_, gate, gate_perm) in lib.iter() {
        let next_cost = cost + model.gate_cost(gate);
        if next_cost > budget {
            continue;
        }
        let h = f.then(gate_perm);
        let w = sym.canonicalize(h);
        if table.contains(w.rep) {
            continue;
        }
        let stored = gate.conjugate_by_wires(w.sigma);
        pending
            .entry(next_cost)
            .or_default()
            .push((w.rep, encode_stored(stored, w.inverted)));
    }
}

/// Builds the bucket-indexed invariant index shared by every
/// construction path (the distance recorded per representative is its
/// **bucket index**; for unit buckets that equals the optimal size).
pub(crate) fn bucket_invariants(levels: &crate::tables::Levels) -> InvariantIndex {
    InvariantIndex::build(
        levels
            .iter()
            .enumerate()
            .flat_map(|(i, level)| level.iter().map(move |&rep| (rep, i))),
        levels.total(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_weighted_tables_match_the_breadth_first_levels() {
        // The degenerate case: a unit-cost Dijkstra settles exactly the
        // breadth-first levels (same representative sets per size), so
        // the weighted path is a strict generalization of the BFS.
        for (n, k) in [(3usize, 3u64), (4, 2)] {
            let bfs = SearchTables::generate(n, k as usize);
            let weighted = SearchTables::generate_weighted(GateLib::nct(n), CostModel::unit(), k);
            assert!(!weighted.is_cost_bucketed(), "unit buckets are levels");
            assert_eq!(weighted.levels().len(), bfs.levels().len());
            for (i, (w, b)) in weighted.levels().iter().zip(bfs.levels()).enumerate() {
                assert_eq!(w, b, "n={n} k={k} level {i}");
                assert_eq!(weighted.bucket_cost(i), i as u64);
            }
            assert_eq!(weighted.invariants(), bfs.invariants());
        }
    }

    #[test]
    fn quantum_buckets_are_strictly_ascending_and_start_at_zero() {
        let t = SearchTables::generate_weighted(GateLib::nct(3), CostModel::quantum(), 8);
        assert!(t.is_cost_bucketed());
        assert_eq!(t.bucket_cost(0), 0);
        assert_eq!(t.level(0), &[Perm::identity()]);
        for i in 1..t.levels().len() {
            assert!(t.bucket_cost(i) > t.bucket_cost(i - 1), "bucket {i}");
            assert!(!t.level(i).is_empty(), "settled buckets are non-empty");
        }
        assert_eq!(t.max_cost(), 8);
        // Every single gate lands in the bucket of its own cost.
        for (_, gate, p) in GateLib::nct(3).iter() {
            assert_eq!(t.cost_of(p), Some(CostModel::quantum().gate_cost(gate)));
        }
    }

    #[test]
    fn cost_of_is_class_invariant_and_bounded() {
        let t = SearchTables::generate_weighted(GateLib::nct(3), CostModel::quantum(), 7);
        let sym = t.sym();
        for i in 0..t.levels().len() {
            for &rep in t.level(i).iter().step_by(3) {
                let cost = t.bucket_cost(i);
                assert_eq!(t.cost_of(rep), Some(cost));
                assert_eq!(t.cost_of(rep.inverse()), Some(cost), "inversion");
                for member in sym.class_members(rep).into_iter().step_by(7) {
                    assert_eq!(t.cost_of(member), Some(cost), "member of {rep}");
                }
            }
        }
    }

    #[test]
    fn stored_gate_peels_to_a_cheaper_bucket() {
        // For every settled non-identity representative, composing with
        // the stored boundary gate on the recorded side lands in a
        // strictly cheaper bucket — the invariant the fast-path peel
        // relies on for termination and optimality.
        use crate::info::StoredGate;
        let t = SearchTables::generate_weighted(GateLib::nct(3), CostModel::quantum(), 7);
        for i in 1..t.levels().len() {
            for &rep in t.level(i) {
                match t.lookup(rep).expect("settled") {
                    StoredGate::Identity => panic!("identity record in bucket {i}"),
                    StoredGate::Gate { gate, is_first } => {
                        let g = gate.perm(3);
                        let peeled = if is_first { g.then(rep) } else { rep.then(g) };
                        let peeled_cost = t.cost_of(peeled).expect("cheaper ⇒ settled");
                        assert!(
                            peeled_cost < t.bucket_cost(i),
                            "bucket {i} rep {rep}: {peeled_cost} ≥ {}",
                            t.bucket_cost(i)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cost_reach_formula() {
        let t = SearchTables::generate_weighted(GateLib::nct(3), CostModel::quantum(), 8);
        // n = 3 library: costliest gate is TOF at 5 ⇒ reach 2·8 − 5 + 1.
        assert_eq!(t.cost_reach(), 12);
        let u = SearchTables::generate(4, 2);
        assert_eq!(u.cost_reach(), 4, "unit reach is 2k");
    }

    #[test]
    fn budget_extension_matches_single_shot() {
        // Settle to 5, extend in place to 8: same buckets, same recorded
        // bytes as settling to 8 in one shot — the restartability
        // property the checkpoint/resume path is built on.
        let single = SearchTables::generate_weighted(GateLib::nct(3), CostModel::quantum(), 8);
        let mut grown = SearchTables::generate_weighted(GateLib::nct(3), CostModel::quantum(), 5);
        grown.extend_to(8, &crate::GenOptions::new());
        assert_eq!(grown.bucket_costs(), single.bucket_costs());
        assert_eq!(grown.levels(), single.levels());
        assert_eq!(grown.invariants(), single.invariants());
        for level in single.levels() {
            for &rep in level {
                assert_eq!(grown.lookup(rep), single.lookup(rep), "{rep}");
            }
        }
    }
}
