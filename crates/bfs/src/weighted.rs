//! Weighted (cost-bucketed) table generation — the paper's §5 sketch,
//! "search for small circuits via increasing cost by one", run all the
//! way into the [`SearchTables`] product so the meet-in-the-middle
//! machinery works over any additive [`CostModel`], not just gate count.
//!
//! # Algorithm
//!
//! A uniform-cost search (Dijkstra with an integer bucket queue) over
//! equivalence classes: expanding a settled class `f` (and its inverse —
//! the same completeness argument as the breadth-first `generate`
//! module, since relabeling and reversal preserve every gate's cost) by
//! every library gate `λ` discovers `canonical(f.then(λ))` at tentative
//! cost `cost(f) + cost(λ)`. Classes settle in nondecreasing cost, so
//! the first settlement is at the optimal cost and the recorded boundary
//! gate peels toward a *strictly cheaper* function — exactly the witness
//! mechanics the gate-count peel uses, so [`SearchTables::lookup`] and
//! the fast-path reconstruction work unchanged.
//!
//! # The product
//!
//! Levels become **cost buckets**: `levels[i]` holds the sorted
//! representatives of optimal cost exactly `bucket_costs[i]`, with
//! `bucket_costs` strictly ascending from 0 (the identity). The unit
//! model degenerates to `bucket_costs[i] == i` — the same level layout
//! the breadth-first paths produce — which is how the engine recognizes
//! gate-count tables and keeps their scan bit-identical.
//!
//! The [`InvariantIndex`] is keyed by **bucket index** (not raw cost),
//! so the cost-bounded engine's gate asks "does any stored class in
//! residual-cost bucket `b` share this candidate's invariants" — the
//! exact-`k` residue argument of the gate-count gate generalized to
//! exact-residual-cost buckets. Bucket indices must fit the index's
//! 32-bit distance masks, hence the budget assertion below.

use std::collections::BTreeMap;

use revsynth_canon::Symmetries;
use revsynth_circuit::{CostModel, GateLib};
use revsynth_perm::Perm;
use revsynth_table::{FnTable, InvariantIndex};

use crate::info::{encode_stored, IDENTITY_BYTE};
use crate::tables::SearchTables;

/// Hard ceiling on the number of distinct cost values (= buckets): the
/// invariant index stores per-bucket occurrence masks in a `u32`.
pub(crate) const MAX_BUCKETS: usize = 32;

pub(crate) fn run(lib: GateLib, model: CostModel, budget: u64) -> SearchTables {
    assert!(
        budget <= 200,
        "cost budget {budget} looks like a unit mix-up"
    );
    let sym = Symmetries::new(lib.wires());
    let mut table = FnTable::for_entries(1 << 12);
    table.insert(Perm::identity(), IDENTITY_BYTE);
    let mut by_cost: BTreeMap<u64, Vec<Perm>> = BTreeMap::new();
    by_cost.insert(0, vec![Perm::identity()]);
    // pending[c] = (representative, stored-gate byte) discovered at
    // tentative cost c; duplicates are filtered at settlement.
    let mut pending: BTreeMap<u64, Vec<(Perm, u8)>> = BTreeMap::new();
    expand(
        &lib,
        &sym,
        &model,
        Perm::identity(),
        0,
        budget,
        &table,
        &mut pending,
    );

    while let Some((&cost, _)) = pending.iter().next() {
        let batch = pending.remove(&cost).expect("key just observed");
        let mut newly: Vec<Perm> = Vec::new();
        for (rep, byte) in batch {
            // Settled earlier (at this or a smaller cost) ⇒ skip.
            if table.insert_if_absent(rep, byte) {
                newly.push(rep);
            }
        }
        if newly.is_empty() {
            continue;
        }
        for &rep in &newly {
            expand(&lib, &sym, &model, rep, cost, budget, &table, &mut pending);
            let inv = rep.inverse();
            if inv != rep {
                expand(&lib, &sym, &model, inv, cost, budget, &table, &mut pending);
            }
        }
        newly.sort_unstable();
        by_cost.insert(cost, newly);
    }

    let bucket_costs: Vec<u64> = by_cost.keys().copied().collect();
    assert!(
        bucket_costs.len() <= MAX_BUCKETS,
        "{} cost buckets exceed the {}-bit invariant masks (lower the budget)",
        bucket_costs.len(),
        MAX_BUCKETS
    );
    let levels: Vec<Vec<Perm>> = by_cost.into_values().collect();
    SearchTables::assemble_weighted(lib, sym, model, table, levels, bucket_costs)
}

/// Pushes every one-gate expansion of `f` (settled at `cost`) into the
/// pending buckets, recording the boundary-gate byte exactly as the
/// breadth-first expansion does.
#[allow(clippy::too_many_arguments)]
fn expand(
    lib: &GateLib,
    sym: &Symmetries,
    model: &CostModel,
    f: Perm,
    cost: u64,
    budget: u64,
    table: &FnTable,
    pending: &mut BTreeMap<u64, Vec<(Perm, u8)>>,
) {
    for (_, gate, gate_perm) in lib.iter() {
        let next_cost = cost + model.gate_cost(gate);
        if next_cost > budget {
            continue;
        }
        let h = f.then(gate_perm);
        let w = sym.canonicalize(h);
        if table.contains(w.rep) {
            continue;
        }
        let stored = gate.conjugate_by_wires(w.sigma);
        pending
            .entry(next_cost)
            .or_default()
            .push((w.rep, encode_stored(stored, w.inverted)));
    }
}

/// Builds the bucket-indexed invariant index shared by every
/// construction path (the distance recorded per representative is its
/// **bucket index**; for unit buckets that equals the optimal size).
pub(crate) fn bucket_invariants(levels: &[Vec<Perm>]) -> InvariantIndex {
    let total: usize = levels.iter().map(Vec::len).sum();
    InvariantIndex::build(
        levels
            .iter()
            .enumerate()
            .flat_map(|(i, level)| level.iter().map(move |&rep| (rep, i))),
        total,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_weighted_tables_match_the_breadth_first_levels() {
        // The degenerate case: a unit-cost Dijkstra settles exactly the
        // breadth-first levels (same representative sets per size), so
        // the weighted path is a strict generalization of the BFS.
        for (n, k) in [(3usize, 3u64), (4, 2)] {
            let bfs = SearchTables::generate(n, k as usize);
            let weighted = SearchTables::generate_weighted(GateLib::nct(n), CostModel::unit(), k);
            assert!(!weighted.is_cost_bucketed(), "unit buckets are levels");
            assert_eq!(weighted.levels().len(), bfs.levels().len());
            for (i, (w, b)) in weighted.levels().iter().zip(bfs.levels()).enumerate() {
                assert_eq!(w, b, "n={n} k={k} level {i}");
                assert_eq!(weighted.bucket_cost(i), i as u64);
            }
            assert_eq!(weighted.invariants(), bfs.invariants());
        }
    }

    #[test]
    fn quantum_buckets_are_strictly_ascending_and_start_at_zero() {
        let t = SearchTables::generate_weighted(GateLib::nct(3), CostModel::quantum(), 8);
        assert!(t.is_cost_bucketed());
        assert_eq!(t.bucket_cost(0), 0);
        assert_eq!(t.level(0), &[Perm::identity()]);
        for i in 1..t.levels().len() {
            assert!(t.bucket_cost(i) > t.bucket_cost(i - 1), "bucket {i}");
            assert!(!t.level(i).is_empty(), "settled buckets are non-empty");
        }
        assert_eq!(t.max_cost(), 8);
        // Every single gate lands in the bucket of its own cost.
        for (_, gate, p) in GateLib::nct(3).iter() {
            assert_eq!(t.cost_of(p), Some(CostModel::quantum().gate_cost(gate)));
        }
    }

    #[test]
    fn cost_of_is_class_invariant_and_bounded() {
        let t = SearchTables::generate_weighted(GateLib::nct(3), CostModel::quantum(), 7);
        let sym = t.sym();
        for i in 0..t.levels().len() {
            for &rep in t.level(i).iter().step_by(3) {
                let cost = t.bucket_cost(i);
                assert_eq!(t.cost_of(rep), Some(cost));
                assert_eq!(t.cost_of(rep.inverse()), Some(cost), "inversion");
                for member in sym.class_members(rep).into_iter().step_by(7) {
                    assert_eq!(t.cost_of(member), Some(cost), "member of {rep}");
                }
            }
        }
    }

    #[test]
    fn stored_gate_peels_to_a_cheaper_bucket() {
        // For every settled non-identity representative, composing with
        // the stored boundary gate on the recorded side lands in a
        // strictly cheaper bucket — the invariant the fast-path peel
        // relies on for termination and optimality.
        use crate::info::StoredGate;
        let t = SearchTables::generate_weighted(GateLib::nct(3), CostModel::quantum(), 7);
        for i in 1..t.levels().len() {
            for &rep in t.level(i) {
                match t.lookup(rep).expect("settled") {
                    StoredGate::Identity => panic!("identity record in bucket {i}"),
                    StoredGate::Gate { gate, is_first } => {
                        let g = gate.perm(3);
                        let peeled = if is_first { g.then(rep) } else { rep.then(g) };
                        let peeled_cost = t.cost_of(peeled).expect("cheaper ⇒ settled");
                        assert!(
                            peeled_cost < t.bucket_cost(i),
                            "bucket {i} rep {rep}: {peeled_cost} ≥ {}",
                            t.bucket_cost(i)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cost_reach_formula() {
        let t = SearchTables::generate_weighted(GateLib::nct(3), CostModel::quantum(), 8);
        // n = 3 library: costliest gate is TOF at 5 ⇒ reach 2·8 − 5 + 1.
        assert_eq!(t.cost_reach(), 12);
        let u = SearchTables::generate(4, 2);
        assert_eq!(u.cost_reach(), 4, "unit reach is 2k");
    }
}
