//! Multi-threaded breadth-first search.
//!
//! The expansion of level `i−1` is embarrassingly parallel: each worker
//! canonicalizes its share of the `(representative, gate)` products and
//! filters against the (read-only during the pass) hash table; the main
//! thread then inserts the surviving candidates sequentially, which
//! resolves duplicates discovered concurrently by different workers.
//!
//! Work is processed in bounded blocks so candidate buffers stay small and
//! the "already known" filter stays fresh between blocks. The resulting
//! *key sets and level counts* are identical to the serial search; the
//! recorded boundary gate for a representative reachable through several
//! minimal circuits may legitimately differ (any boundary gate of any
//! minimal circuit is valid — the reconstruction tests accept all of them).

use revsynth_canon::Symmetries;
use revsynth_circuit::GateLib;
use revsynth_perm::Perm;
use revsynth_table::FnTable;

use crate::info::{encode_stored, IDENTITY_BYTE};
use crate::tables::SearchTables;

/// Source representatives per block (each yields ≤ 2·|lib| candidates).
const BLOCK: usize = 1 << 14;

pub(crate) fn run(lib: GateLib, k: usize, threads: usize) -> SearchTables {
    assert!(threads >= 1, "need at least one worker thread");
    assert!(k <= 16, "k = {k} is far beyond any reachable optimal size");
    if threads == 1 {
        return crate::generate::run(lib, k);
    }

    let sym = Symmetries::new(lib.wires());
    let mut table = FnTable::for_entries(SearchTables::estimated_total(&lib, k));
    table.insert(Perm::identity(), IDENTITY_BYTE);
    let mut levels: Vec<Vec<Perm>> = vec![vec![Perm::identity()]];

    for i in 1..=k {
        let mut level: Vec<Perm> = Vec::new();
        let prev = std::mem::take(&mut levels[i - 1]);
        for block in prev.chunks(BLOCK) {
            let per_worker = block.len().div_ceil(threads);
            let shards: Vec<Vec<(Perm, u8)>> = std::thread::scope(|scope| {
                let table = &table;
                let sym = &sym;
                let lib = &lib;
                let handles: Vec<_> = block
                    .chunks(per_worker.max(1))
                    .map(|sub| {
                        scope.spawn(move || {
                            let mut out: Vec<(Perm, u8)> = Vec::new();
                            for &f in sub {
                                collect(lib, sym, table, &mut out, f);
                                let inv = f.inverse();
                                if inv != f {
                                    collect(lib, sym, table, &mut out, inv);
                                }
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker thread must not panic"))
                    .collect()
            });
            for shard in shards {
                for (rep, byte) in shard {
                    if table.insert_if_absent(rep, byte) {
                        level.push(rep);
                    }
                }
            }
        }
        levels[i - 1] = prev;
        level.sort_unstable();
        levels.push(level);
        if levels[i].is_empty() {
            for _ in i + 1..=k {
                levels.push(Vec::new());
            }
            break;
        }
    }

    SearchTables::assemble(lib, sym, k, table, levels)
}

#[inline]
fn collect(lib: &GateLib, sym: &Symmetries, table: &FnTable, out: &mut Vec<(Perm, u8)>, f: Perm) {
    for (_, gate, gate_perm) in lib.iter() {
        let h = f.then(gate_perm);
        let w = sym.canonicalize(h);
        if table.contains(w.rep) {
            continue;
        }
        let stored = gate.conjugate_by_wires(w.sigma);
        out.push((w.rep, encode_stored(stored, w.inverted)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_key_sets() {
        for n in [2usize, 3] {
            let serial = SearchTables::generate(n, 4);
            let parallel = SearchTables::generate_parallel(GateLib::nct(n), 4, 3);
            assert_eq!(serial.k(), parallel.k());
            for i in 0..=4usize {
                assert_eq!(serial.level(i), parallel.level(i), "n={n} level {i}");
            }
        }
    }

    #[test]
    fn parallel_n4_matches_serial_counts() {
        let serial = SearchTables::generate(4, 4);
        let parallel = SearchTables::generate_parallel(GateLib::nct(4), 4, 2);
        assert_eq!(serial.reduced_counts(), parallel.reduced_counts());
        for i in 0..=4usize {
            assert_eq!(serial.level(i), parallel.level(i), "level {i}");
        }
    }

    #[test]
    fn single_thread_delegates_to_serial() {
        let a = SearchTables::generate_parallel(GateLib::nct(2), 6, 1);
        let b = SearchTables::generate(2, 6);
        assert_eq!(a.reduced_counts(), b.reduced_counts());
    }

    #[test]
    fn parallel_records_are_valid_boundary_gates() {
        use crate::info::StoredGate;
        let t = SearchTables::generate_parallel(GateLib::nct(3), 5, 3);
        for i in 1..=5usize {
            for &rep in t.level(i).iter().step_by(11) {
                match t.lookup(rep).expect("present") {
                    StoredGate::Identity => panic!("identity record on level {i}"),
                    StoredGate::Gate { gate, is_first } => {
                        let g = gate.perm(3);
                        let peeled = if is_first { g.then(rep) } else { rep.then(g) };
                        assert_eq!(t.size_of(peeled), Some(i - 1));
                    }
                }
            }
        }
    }
}
