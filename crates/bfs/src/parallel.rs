//! Multi-threaded breadth-first search — a thin wrapper over the shared
//! sharded expander in [`crate::shard`].
//!
//! The expansion of level `i−1` is embarrassingly parallel: each worker
//! canonicalizes its share of the `(representative, gate)` products and
//! filters against the (read-only during the pass) hash table. Workers
//! take contiguous frontier chunks and their outputs are concatenated in
//! chunk order, so the candidate stream — and with it every recorded
//! boundary gate — is **identical to the serial search's**: parallel,
//! serial, sharded and resumed generations all produce byte-identical
//! tables (asserted by the `shard` and checkpoint tests).

use revsynth_circuit::GateLib;

use crate::shard::GenOptions;
use crate::tables::SearchTables;

pub(crate) fn run(lib: GateLib, k: usize, threads: usize) -> SearchTables {
    assert!(threads >= 1, "need at least one worker thread");
    crate::generate::run_opts(lib, k, &GenOptions::new().threads(threads))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_key_sets() {
        for n in [2usize, 3] {
            let serial = SearchTables::generate(n, 4);
            let parallel = SearchTables::generate_parallel(GateLib::nct(n), 4, 3);
            assert_eq!(serial.k(), parallel.k());
            for i in 0..=4usize {
                assert_eq!(serial.level(i), parallel.level(i), "n={n} level {i}");
            }
        }
    }

    #[test]
    fn parallel_n4_matches_serial_counts() {
        let serial = SearchTables::generate(4, 4);
        let parallel = SearchTables::generate_parallel(GateLib::nct(4), 4, 2);
        assert_eq!(serial.reduced_counts(), parallel.reduced_counts());
        for i in 0..=4usize {
            assert_eq!(serial.level(i), parallel.level(i), "level {i}");
        }
    }

    #[test]
    fn single_thread_delegates_to_serial() {
        let a = SearchTables::generate_parallel(GateLib::nct(2), 6, 1);
        let b = SearchTables::generate(2, 6);
        assert_eq!(a.reduced_counts(), b.reduced_counts());
    }

    #[test]
    fn parallel_records_are_valid_boundary_gates() {
        use crate::info::StoredGate;
        let t = SearchTables::generate_parallel(GateLib::nct(3), 5, 3);
        for i in 1..=5usize {
            for &rep in t.level(i).iter().step_by(11) {
                match t.lookup(rep).expect("present") {
                    StoredGate::Identity => panic!("identity record on level {i}"),
                    StoredGate::Gate { gate, is_first } => {
                        let g = gate.perm(3);
                        let peeled = if is_first { g.then(rep) } else { rep.then(g) };
                        assert_eq!(t.size_of(peeled), Some(i - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_records_match_serial_records_exactly() {
        // Stronger than "valid boundary gates": chunk-ordered candidate
        // production makes the recorded bytes identical to the serial
        // search's, which is what keeps store digests thread-count-free.
        let serial = SearchTables::generate(3, 4);
        let parallel = SearchTables::generate_parallel(GateLib::nct(3), 4, 3);
        for level in serial.levels() {
            for &rep in level {
                assert_eq!(parallel.lookup(rep), serial.lookup(rep), "{rep}");
            }
        }
    }
}
