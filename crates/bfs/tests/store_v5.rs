//! Store v5 (zero-copy mmap) integration tests: mapped tables must
//! answer byte-for-byte like rebuilt v4 tables across the whole 3-wire
//! space, the v4 → v5 upgrade must be atomic and byte-deterministic, and
//! any corruption — torn tail, truncated section, a single flipped bit
//! anywhere in the file — must surface as a typed error, never a panic
//! or an oversized allocation. Mirrors `checkpoint.rs` for the v4 side.

use std::path::PathBuf;

use revsynth_bfs::{GenOptions, SearchTables, StoreErrorKind};
use revsynth_circuit::{CostModel, GateLib};

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("revsynth-v5-test-{}-{name}", std::process::id()));
    p
}

/// Structural equality down to every stored boundary byte.
fn assert_tables_identical(a: &SearchTables, b: &SearchTables, what: &str) {
    assert_eq!(a.model(), b.model(), "{what}: model");
    assert_eq!(a.bucket_costs(), b.bucket_costs(), "{what}: bucket costs");
    assert_eq!(a.levels(), b.levels(), "{what}: level lists");
    assert_eq!(a.invariants(), b.invariants(), "{what}: invariant index");
    for level in a.levels() {
        for &rep in level {
            assert_eq!(a.lookup(rep), b.lookup(rep), "{what}: record of {rep}");
        }
    }
}

#[test]
fn mapped_tables_answer_exhaustively_like_v4_loaded_tables() {
    // The acceptance property of the zero-copy path: for every one of
    // the 40,320 3-wire functions, tables served from a borrowed mmap
    // region answer exactly like tables rebuilt from a v4 scan.
    let tables = SearchTables::generate(3, 4);
    let v4 = temp_path("exhaustive-v4");
    let v5 = temp_path("exhaustive-v5");
    tables.save(&v4).unwrap();
    tables.save_v5(&v5).unwrap();
    let from_v4 = SearchTables::load(&v4).unwrap();
    let from_v5 = SearchTables::load(&v5).unwrap();
    std::fs::remove_file(&v4).ok();
    std::fs::remove_file(&v5).ok();

    assert_eq!(from_v4.source_format(), Some(4));
    assert_eq!(from_v5.source_format(), Some(5));
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    assert!(
        from_v5.levels().is_mapped(),
        "v5 load on Linux must actually borrow from the mapping"
    );
    assert_tables_identical(&from_v5, &from_v4, "v5 vs v4");

    let whole_space = revsynth_bfs::reference::full_space_sizes(&GateLib::nct(3));
    assert_eq!(whole_space.len(), 40_320);
    let mut checked = 0u32;
    for &f in whole_space.keys() {
        assert_eq!(from_v5.size_of(f), from_v4.size_of(f), "{f}");
        checked += 1;
    }
    assert_eq!(checked, 40_320);
}

#[test]
fn upgrade_from_checkpointed_v4_preserves_content_and_is_deterministic() {
    let path = temp_path("upgrade");
    let orig = SearchTables::generate_checkpointed(
        GateLib::nct(3),
        CostModel::unit(),
        4,
        &GenOptions::new(),
        &path,
    )
    .unwrap();
    let digest_before = orig.content_digest();

    SearchTables::upgrade(&path).unwrap();
    let once = std::fs::read(&path).unwrap();
    assert_eq!(&once[..8], b"RVSYNTB5");
    let upgraded = SearchTables::load(&path).unwrap();
    assert_eq!(upgraded.source_format(), Some(5));
    assert_eq!(upgraded.content_digest(), digest_before);
    assert_tables_identical(&upgraded, &orig, "v4 → v5 upgrade");

    // Upgrading again is a canonical rewrite: byte-identical.
    SearchTables::upgrade(&path).unwrap();
    let twice = std::fs::read(&path).unwrap();
    assert_eq!(once, twice, "upgrade must be byte-deterministic");

    // And a v3 store upgrades to the very same v5 bytes.
    let v3 = temp_path("upgrade-from-v3");
    orig.save_v3(&v3).unwrap();
    SearchTables::upgrade(&v3).unwrap();
    assert_eq!(
        std::fs::read(&v3).unwrap(),
        once,
        "v3 and v4 origins converge"
    );
    std::fs::remove_file(&v3).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn weighted_tables_roundtrip_through_v5() {
    let tables = SearchTables::generate_weighted(GateLib::nct(3), CostModel::quantum(), 7);
    let path = temp_path("weighted");
    tables.save_v5(&path).unwrap();
    let loaded = SearchTables::load_validated(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(loaded.is_cost_bucketed());
    assert_eq!(loaded.bucket_costs(), tables.bucket_costs());
    assert_eq!(loaded.cost_reach(), tables.cost_reach());
    assert_tables_identical(&loaded, &tables, "weighted v5");
}

#[test]
fn mapped_tables_extend_like_single_shot() {
    // Extending mapped tables thaws the borrowed arrays into owned ones
    // and must land exactly where an uninterrupted generation lands.
    let path = temp_path("extend");
    SearchTables::generate(3, 2).save_v5(&path).unwrap();
    let mut extended = SearchTables::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    extended.extend_to(4, &GenOptions::new());
    let single = SearchTables::generate(3, 4);
    assert_tables_identical(&extended, &single, "mapped then extended");
}

#[test]
fn torn_tail_is_a_typed_error() {
    // v5 files end exactly where the layout says; appended bytes mean
    // the file is not what the writer produced.
    let path = temp_path("torn-tail");
    SearchTables::generate(2, 3).save_v5(&path).unwrap();
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(&[0xAB; 137]).unwrap();
    drop(f);
    let err = SearchTables::load(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(
        matches!(err.kind(), StoreErrorKind::Corrupt(_)),
        "unexpected {err:?}"
    );
    assert!(err.to_string().contains("torn-tail"), "path in {err}");
}

#[test]
fn truncated_sections_are_typed_errors() {
    let path = temp_path("truncate");
    SearchTables::generate(2, 3).save_v5(&path).unwrap();
    let good = std::fs::read(&path).unwrap();
    // Cut the file at a spread of lengths: inside the header, the meta
    // block, each section, and one byte short of complete.
    let cuts: Vec<usize> = (0..8)
        .map(|i| i * good.len() / 8)
        .chain([good.len() - 1])
        .collect();
    for cut in cuts {
        std::fs::write(&path, &good[..cut]).unwrap();
        let err = SearchTables::load(&path).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                StoreErrorKind::BadMagic
                    | StoreErrorKind::BadHeader(_)
                    | StoreErrorKind::Corrupt(_)
                    | StoreErrorKind::ChecksumMismatch
                    | StoreErrorKind::Io(_)
            ),
            "cut at {cut}: unexpected {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_single_bitflip_is_caught_by_full_validation() {
    // Between the header/meta checksums, the recomputed section layout,
    // the per-section checksums and the zero-padding check, *every* bit
    // of a v5 file is covered: flip any one bit and `load_validated`
    // must return a typed error (the fast load may defer the detection
    // but must never panic).
    let path = temp_path("bitflip");
    SearchTables::generate(2, 3).save_v5(&path).unwrap();
    let good = std::fs::read(&path).unwrap();
    SearchTables::load_validated(&path).unwrap();

    let mut flipped = 0u32;
    for byte in (0..good.len()).step_by(61) {
        let mut bytes = good.clone();
        bytes[byte] ^= 1 << (byte % 8);
        std::fs::write(&path, &bytes).unwrap();
        let err = SearchTables::load_validated(&path)
            .err()
            .unwrap_or_else(|| panic!("flip at byte {byte} went undetected"));
        assert!(
            matches!(
                err.kind(),
                StoreErrorKind::BadMagic
                    | StoreErrorKind::BadHeader(_)
                    | StoreErrorKind::Corrupt(_)
                    | StoreErrorKind::ChecksumMismatch
            ),
            "byte {byte}: unexpected {err:?}"
        );
        // The fast path may accept flips in lazily-checked sections, but
        // it must stay panic-free and allocation-bounded.
        let _ = SearchTables::load(&path);
        flipped += 1;
    }
    assert!(flipped > 50, "corpus too small to mean anything");
    std::fs::remove_file(&path).ok();
}
