//! Checkpoint/resume integration tests: the acceptance property of the
//! deep-table subsystem is that a generation interrupted at **any**
//! completed level, then resumed, produces a store byte-identical to an
//! uninterrupted single-shot run — for unit (breadth-first) and weighted
//! (cost-bucketed) tables alike. These tests prove it exhaustively on
//! n = 3 (every stop point, every stored representative compared), plus
//! the format edges: v3 compatibility, torn tails, corrupt trailers.

use std::path::PathBuf;

use revsynth_bfs::{file_digest, GenOptions, SearchTables, StoreErrorKind};
use revsynth_circuit::{CostModel, GateLib};

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("revsynth-ckpt-test-{}-{name}", std::process::id()));
    p
}

/// Structural equality down to every stored boundary byte.
fn assert_tables_identical(a: &SearchTables, b: &SearchTables, what: &str) {
    assert_eq!(a.model(), b.model(), "{what}: model");
    assert_eq!(a.bucket_costs(), b.bucket_costs(), "{what}: bucket costs");
    assert_eq!(a.levels(), b.levels(), "{what}: level lists");
    assert_eq!(a.invariants(), b.invariants(), "{what}: invariant index");
    for level in a.levels() {
        for &rep in level {
            assert_eq!(a.lookup(rep), b.lookup(rep), "{what}: record of {rep}");
        }
    }
}

#[test]
fn unit_resume_from_every_stop_level_is_byte_identical() {
    let k = 5u64;
    let lib = || GateLib::nct(3);
    let opts = GenOptions::new();

    // The uninterrupted reference run, streamed to disk.
    let full_path = temp_path("unit-full");
    let full = SearchTables::generate_checkpointed(lib(), CostModel::unit(), k, &opts, &full_path)
        .unwrap();
    let full_digest = file_digest(&full_path).unwrap();
    let full_bytes = std::fs::read(&full_path).unwrap();

    // save() of the finished tables writes the same bytes.
    let save_path = temp_path("unit-save");
    full.save(&save_path).unwrap();
    assert_eq!(
        file_digest(&save_path).unwrap(),
        full_digest,
        "save() and checkpointed generation must agree byte for byte"
    );
    std::fs::remove_file(&save_path).ok();

    for stop in 0..k {
        let path = temp_path(&format!("unit-stop{stop}"));
        // "Interrupt" after level `stop` completes: generate only that
        // prefix, then append torn garbage simulating the in-flight
        // level that was being written when the process died.
        SearchTables::generate_checkpointed(lib(), CostModel::unit(), stop, &opts, &path).unwrap();
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0xAB; 137]).unwrap();
        drop(f);

        let resumed = SearchTables::resume_checkpointed(&path, k, &opts).unwrap();
        assert_tables_identical(&resumed, &full, &format!("stop {stop}"));
        assert_eq!(
            file_digest(&path).unwrap(),
            full_digest,
            "stop {stop}: resumed store digest diverged"
        );
        assert_eq!(
            std::fs::read(&path).unwrap(),
            full_bytes,
            "stop {stop}: resumed store bytes diverged"
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&full_path).ok();
}

#[test]
fn weighted_resume_from_every_stop_budget_is_byte_identical() {
    let budget = 7u64;
    let lib = || GateLib::nct(3);
    let model = CostModel::quantum();
    let opts = GenOptions::new();

    let full_path = temp_path("quantum-full");
    let full =
        SearchTables::generate_checkpointed(lib(), model, budget, &opts, &full_path).unwrap();
    assert!(full.is_cost_bucketed());
    let full_digest = file_digest(&full_path).unwrap();
    let full_bytes = std::fs::read(&full_path).unwrap();

    for stop in [0u64, 1, 2, 4, 5] {
        let path = temp_path(&format!("quantum-stop{stop}"));
        SearchTables::generate_checkpointed(lib(), model, stop, &opts, &path).unwrap();
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"torn in-flight bucket bytes").unwrap();
        drop(f);

        let resumed = SearchTables::resume_checkpointed(&path, budget, &opts).unwrap();
        assert_tables_identical(&resumed, &full, &format!("budget stop {stop}"));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            full_bytes,
            "budget stop {stop}: resumed store bytes diverged"
        );
        assert_eq!(file_digest(&path).unwrap(), full_digest);
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&full_path).ok();
}

#[test]
fn resumed_tables_answer_exhaustively_like_single_shot() {
    // Beyond structural identity: every one of the 40,320 3-wire
    // functions gets the same optimal-size answer from resumed tables as
    // from single-shot ones (the two agree wherever either answers).
    let single = SearchTables::generate(3, 4);
    let path = temp_path("exhaustive");
    SearchTables::generate_checkpointed(
        GateLib::nct(3),
        CostModel::unit(),
        2,
        &GenOptions::new(),
        &path,
    )
    .unwrap();
    let resumed = SearchTables::resume_checkpointed(&path, 4, &GenOptions::new()).unwrap();
    std::fs::remove_file(&path).ok();

    let whole_space = revsynth_bfs::reference::full_space_sizes(&GateLib::nct(3));
    assert_eq!(whole_space.len(), 40_320);
    let mut checked = 0u32;
    for &f in whole_space.keys() {
        assert_eq!(resumed.size_of(f), single.size_of(f), "{f}");
        checked += 1;
    }
    assert_eq!(checked, 40_320);
}

#[test]
fn resume_at_or_below_stored_budget_is_a_no_op() {
    let path = temp_path("noop");
    let orig = SearchTables::generate_checkpointed(
        GateLib::nct(3),
        CostModel::unit(),
        3,
        &GenOptions::new(),
        &path,
    )
    .unwrap();
    let before = std::fs::read(&path).unwrap();
    let same = SearchTables::resume_checkpointed(&path, 3, &GenOptions::new()).unwrap();
    let shallower = SearchTables::resume_checkpointed(&path, 1, &GenOptions::new()).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), before, "file untouched");
    assert_eq!(same.levels(), orig.levels());
    assert_eq!(shallower.levels(), orig.levels(), "stores never shrink");
    std::fs::remove_file(&path).ok();
}

#[test]
fn v3_stores_load_but_do_not_resume() {
    let tables = SearchTables::generate(3, 3);
    let path = temp_path("v3");
    tables.save_v3(&path).unwrap();
    // Loading is transparent…
    let loaded = SearchTables::load(&path).unwrap();
    assert_eq!(loaded.levels(), tables.levels());
    // …but in-place extension requires the v4 trailer, and the error
    // says so (not "bad magic" — the file is a fine, just older, store).
    let err = SearchTables::resume_checkpointed(&path, 5, &GenOptions::new()).unwrap_err();
    assert!(
        matches!(err.kind(), StoreErrorKind::BadHeader(msg) if msg.contains("upgrade")),
        "v3 resume must fail with the upgrade hint, got {err:?}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn v4_upgrade_of_a_v3_store_roundtrips_checkpoints() {
    // The upgrade path: load v3, save as v4, then the v4 file resumes.
    let tables = SearchTables::generate(3, 2);
    let v3 = temp_path("upgrade-v3");
    let v4 = temp_path("upgrade-v4");
    tables.save_v3(&v3).unwrap();
    SearchTables::load(&v3).unwrap().save(&v4).unwrap();
    std::fs::remove_file(&v3).ok();
    let resumed = SearchTables::resume_checkpointed(&v4, 4, &GenOptions::new()).unwrap();
    std::fs::remove_file(&v4).ok();
    let single = SearchTables::generate(3, 4);
    assert_tables_identical(&resumed, &single, "v3→v4 upgrade then resume");
}

#[test]
fn torn_trailer_is_a_typed_error_not_a_panic() {
    let path = temp_path("torn-trailer");
    SearchTables::generate_checkpointed(
        GateLib::nct(2),
        CostModel::unit(),
        3,
        &GenOptions::new(),
        &path,
    )
    .unwrap();
    let good = std::fs::read(&path).unwrap();

    // Flip a bit inside the 24-byte trailer (offset 52 + lib_len for the
    // 4-gate 2-wire library).
    let trailer_offset = 52 + 4;
    for corrupt_at in [trailer_offset, trailer_offset + 8, trailer_offset + 16] {
        let mut bytes = good.clone();
        bytes[corrupt_at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = SearchTables::load(&path).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                StoreErrorKind::BadTrailer(_) | StoreErrorKind::Corrupt(_)
            ),
            "byte {corrupt_at}: unexpected {err:?}"
        );
        assert!(err.to_string().contains("torn-trailer"), "path in {err}");
    }

    // Truncate *inside* the trailer: same typed rejection.
    std::fs::write(&path, &good[..trailer_offset + 10]).unwrap();
    let err = SearchTables::load(&path).unwrap_err();
    assert!(matches!(err.kind(), StoreErrorKind::BadTrailer(_)));

    // A trailer pointing past the end of the file (truncated payload).
    std::fs::write(&path, &good[..good.len() - 5]).unwrap();
    let err = SearchTables::load(&path).unwrap_err();
    assert!(matches!(err.kind(), StoreErrorKind::BadTrailer(_)));
    std::fs::remove_file(&path).ok();
}

#[test]
fn knobs_do_not_change_store_bytes() {
    // Threads × shards × memory budget must never leak into the store:
    // the CI digest is pinned against *one* baseline however the
    // generating machine was configured.
    let reference = temp_path("knobs-ref");
    SearchTables::generate_checkpointed(
        GateLib::nct(3),
        CostModel::unit(),
        4,
        &GenOptions::new().threads(1).shards(1),
        &reference,
    )
    .unwrap();
    let want = file_digest(&reference).unwrap();
    std::fs::remove_file(&reference).ok();
    for (threads, shards, max_mem) in [
        (2usize, 8usize, None),
        (3, 2, Some(256)),
        (1, 16, Some(1 << 20)),
    ] {
        let path = temp_path(&format!("knobs-{threads}-{shards}"));
        SearchTables::generate_checkpointed(
            GateLib::nct(3),
            CostModel::unit(),
            4,
            &GenOptions::new()
                .threads(threads)
                .shards(shards)
                .max_mem_bytes(max_mem),
            &path,
        )
        .unwrap();
        assert_eq!(
            file_digest(&path).unwrap(),
            want,
            "threads={threads} shards={shards} max_mem={max_mem:?}"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn peek_tracks_a_growing_store() {
    // peek() is the CI poll: it must see exactly the completed levels at
    // every stage of a growing store, and total classes must only grow.
    let path = temp_path("peek-growing");
    SearchTables::generate_checkpointed(
        GateLib::nct(3),
        CostModel::unit(),
        1,
        &GenOptions::new(),
        &path,
    )
    .unwrap();
    let mut last_total = 0;
    for target in 2..=4u64 {
        SearchTables::resume_checkpointed(&path, target, &GenOptions::new()).unwrap();
        let info = SearchTables::peek(&path).unwrap();
        assert_eq!(info.version, 4);
        assert_eq!(info.levels.len() as u64, target + 1);
        assert!(info.total_classes() > last_total);
        last_total = info.total_classes();
        assert_eq!(info.payload_end, info.file_len, "no torn tail");
    }
    std::fs::remove_file(&path).ok();
}
