//! Observability primitives for the revsynth stack.
//!
//! Everything here is `std`-only and lock-free on the hot path:
//!
//! - [`LatencyHistogram`] — the log-linear (HDR-shaped) bucket scheme
//!   behind every latency metric; recording is one relaxed atomic
//!   increment.
//! - [`Registry`] + [`Counter`]/[`Gauge`]/[`Histogram`] — typed metric
//!   handles registered by name with static label sets and rendered in
//!   Prometheus text exposition format. The registry mutex guards
//!   *registration only*; handles are `Arc`-shared atomics, so
//!   incrementing a counter or recording a latency never takes a lock.
//! - [`Stage`] / [`Trace`] / [`SpanIds`] — per-request trace spans: a
//!   seeded span ID carried through the request pipeline with one
//!   microsecond bucket per stage.
//! - [`TraceRing`] — a fixed-capacity lock-free ring of completed
//!   traces (seqlock-style slots over plain atomics, no `unsafe`),
//!   used for the live trace buffer and the slow-query capture ring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod registry;
mod ring;
mod trace;

pub use hist::LatencyHistogram;
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use ring::TraceRing;
pub use trace::{splitmix64, SpanIds, Stage, Trace};
