//! Per-request trace spans: the pipeline [`Stage`] glossary, the
//! [`Trace`] record carried through a request, and the seeded
//! [`SpanIds`] generator.

use std::sync::atomic::{AtomicU64, Ordering};

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mix.
#[must_use]
pub const fn splitmix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stage of the request pipeline, in pipeline order. Stage names are
/// the `stage=` label values of the per-stage latency histograms and
/// the keys of the slow-query JSON `stages` object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Parsing the request frame into a typed request.
    Decode,
    /// Canonicalizing the queried function and probing the class cache.
    CacheProbe,
    /// Scheduler admission: coalesce / recheck / shed decisions under
    /// the queue lock.
    Admission,
    /// Waiting for a scheduler worker to start the batch holding this
    /// request's class.
    QueueWait,
    /// The batched synthesis search itself (shared by every request
    /// coalesced onto the same class).
    BatchSearch,
    /// Replaying the class representative's circuit for this witness.
    Replay,
    /// Encoding the response frame.
    Encode,
    /// Writing the response frame to the socket.
    Write,
}

impl Stage {
    /// Number of pipeline stages.
    pub const COUNT: usize = 8;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Self::COUNT] = [
        Stage::Decode,
        Stage::CacheProbe,
        Stage::Admission,
        Stage::QueueWait,
        Stage::BatchSearch,
        Stage::Replay,
        Stage::Encode,
        Stage::Write,
    ];

    /// The stage's snake_case name (label value / JSON key stem).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::CacheProbe => "cache_probe",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::BatchSearch => "batch_search",
            Stage::Replay => "replay",
            Stage::Encode => "encode",
            Stage::Write => "write",
        }
    }

    /// The stage's index in [`Stage::ALL`] (pipeline order).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One request's trace: a span ID plus microsecond timings per pipeline
/// stage. Plain mutable data — it lives on the handler's stack and is
/// only shared (via [`crate::TraceRing`]) once the request completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Trace {
    /// The request's span ID (seeded pseudo-random, unique per server
    /// process for practical purposes).
    pub span_id: u64,
    /// The cost-model code of the query (0 when not a query).
    pub model: u8,
    /// The packed canonical representative the query resolved to.
    pub rep: u64,
    /// Whether the class cache answered the request.
    pub cache_hit: bool,
    /// End-to-end service time in microseconds.
    pub total_us: u64,
    stage_us: [u64; Stage::COUNT],
}

impl Trace {
    /// Number of `u64` words in the ring encoding.
    pub const WORDS: usize = 5 + Stage::COUNT;

    /// A fresh trace with the given span ID.
    #[must_use]
    pub fn new(span_id: u64) -> Self {
        Trace {
            span_id,
            ..Trace::default()
        }
    }

    /// Adds `us` microseconds to `stage` (stages visited twice — e.g. a
    /// retried write — accumulate).
    pub fn record(&mut self, stage: Stage, us: u64) {
        self.stage_us[stage.index()] += us;
    }

    /// Microseconds attributed to `stage` so far.
    #[must_use]
    pub fn stage_us(&self, stage: Stage) -> u64 {
        self.stage_us[stage.index()]
    }

    /// Fixed-width encoding for the lock-free ring slots.
    #[must_use]
    pub fn to_words(&self) -> [u64; Self::WORDS] {
        let mut words = [0u64; Self::WORDS];
        words[0] = self.span_id;
        words[1] = u64::from(self.model);
        words[2] = self.rep;
        words[3] = u64::from(self.cache_hit);
        words[4] = self.total_us;
        words[5..].copy_from_slice(&self.stage_us);
        words
    }

    /// Inverse of [`to_words`](Self::to_words).
    #[must_use]
    pub fn from_words(words: &[u64; Self::WORDS]) -> Self {
        let mut stage_us = [0u64; Stage::COUNT];
        stage_us.copy_from_slice(&words[5..]);
        Trace {
            span_id: words[0],
            model: words[1] as u8,
            rep: words[2],
            cache_hit: words[3] != 0,
            total_us: words[4],
            stage_us,
        }
    }

    /// Renders the trace as a single-line JSON object. The caller
    /// supplies the human-readable cost-model name (this crate does not
    /// know the model enum).
    #[must_use]
    pub fn to_json(&self, model_name: &str) -> String {
        let stages = Stage::ALL
            .iter()
            .map(|s| format!("\"{}_us\": {}", s.name(), self.stage_us(*s)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"span_id\": \"{:016x}\", \"model\": \"{model_name}\", \"rep\": {}, \
             \"cache_hit\": {}, \"total_us\": {}, \"stages\": {{{stages}}}}}",
            self.span_id, self.rep, self.cache_hit, self.total_us
        )
    }
}

/// A lock-free generator of seeded span IDs: one atomic counter fed
/// through the SplitMix64 finalizer, so IDs are deterministic for a
/// fixed seed yet well-distributed.
#[derive(Debug)]
pub struct SpanIds {
    state: AtomicU64,
}

impl SpanIds {
    /// A generator whose ID stream is a pure function of `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SpanIds {
            state: AtomicU64::new(seed),
        }
    }

    /// The next span ID (relaxed fetch-add + mix; never blocks).
    pub fn next_id(&self) -> u64 {
        let s = self
            .state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        splitmix64(s.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_table_is_consistent() {
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "stage names are unique");
    }

    #[test]
    fn trace_words_roundtrip() {
        let mut t = Trace::new(0xFEED_FACE_CAFE_F00D);
        t.model = 2;
        t.rep = 123_456;
        t.cache_hit = true;
        t.total_us = 999;
        for (i, s) in Stage::ALL.iter().enumerate() {
            t.record(*s, (i as u64 + 1) * 7);
        }
        assert_eq!(Trace::from_words(&t.to_words()), t);
    }

    #[test]
    fn trace_json_has_every_stage() {
        let mut t = Trace::new(1);
        t.record(Stage::Replay, 42);
        let json = t.to_json("gates");
        assert!(json.contains("\"span_id\": \"0000000000000001\""));
        assert!(json.contains("\"model\": \"gates\""));
        assert!(json.contains("\"replay_us\": 42"));
        for s in Stage::ALL {
            assert!(json.contains(&format!("\"{}_us\":", s.name())), "{json}");
        }
    }

    #[test]
    fn span_ids_are_seeded_and_distinct() {
        let a = SpanIds::new(7);
        let b = SpanIds::new(7);
        let first = a.next_id();
        assert_eq!(first, b.next_id(), "same seed, same stream");
        assert_ne!(first, a.next_id());
        assert_ne!(SpanIds::new(8).next_id(), first, "different seed");
    }
}
