//! The typed metrics registry and its Prometheus text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-shared
//! atomics: the registry's mutex is taken at *registration* time only,
//! so the hot path (increment / set / record) is lock-free. Rendering
//! walks the registered entries and emits the standard text format
//! (`# HELP`/`# TYPE` once per family, then one sample line per
//! labeled series; histograms as cumulative `le` buckets plus `_sum`
//! and `_count`).
//!
//! Histogram buckets are stored at full log-linear resolution (see
//! [`LatencyHistogram`]) but *exposed* merged to power-of-two octaves:
//! the exposition stays small and bounded (≤ 62 `le` lines per series
//! instead of 496) while in-process quantiles keep the fine buckets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::LatencyHistogram;

/// A monotonically increasing counter handle. Cloning shares the
/// underlying atomic.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (relaxed; never blocks).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can go up and down (or be set from a
/// fresh measurement at scrape time). Cloning shares the atomic.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value (relaxed; never blocks).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCore {
    hist: LatencyHistogram,
    sum: AtomicU64,
}

/// A histogram handle over the shared log-linear bucket scheme.
/// Recording is two relaxed atomic adds (bucket + sum). Cloning shares
/// the buckets.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    /// Records one observation (e.g. a stage latency in microseconds).
    pub fn record(&self, value: u64) {
        self.0.hist.record(value);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.hist.count()
    }

    /// Sum of all recorded observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` (bucket upper bound; see
    /// [`LatencyHistogram::quantile`]).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        self.0.hist.quantile(q)
    }
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistCore>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    /// Pre-rendered label pairs, e.g. `stage="replay"` (empty for an
    /// unlabeled series).
    labels: String,
    help: String,
    metric: Metric,
}

/// A registry of named metrics with static label sets.
///
/// Registration is idempotent: asking for an existing `(name, labels)`
/// series returns a handle to the same atomics, so independent
/// subsystems can share a series without coordination. Registering the
/// same series as two different *kinds* panics (a startup-time bug).
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",")
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn register<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Metric,
        reuse: impl FnOnce(&Metric) -> Option<T>,
        handle: impl FnOnce(&Metric) -> T,
    ) -> T {
        let labels = render_labels(labels);
        let mut entries = lock(&self.entries);
        if let Some(existing) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return reuse(&existing.metric).unwrap_or_else(|| {
                panic!(
                    "metric `{name}{{{labels}}}` already registered as a {}",
                    existing.metric.type_name()
                )
            });
        }
        let metric = make();
        let out = handle(&metric);
        entries.push(Entry {
            name: name.to_owned(),
            labels,
            help: help.to_owned(),
            metric,
        });
        out
    }

    /// Registers (or retrieves) a counter series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        self.register(
            name,
            labels,
            help,
            || Metric::Counter(Arc::new(AtomicU64::new(0))),
            |m| match m {
                Metric::Counter(a) => Some(Counter(Arc::clone(a))),
                _ => None,
            },
            |m| match m {
                Metric::Counter(a) => Counter(Arc::clone(a)),
                _ => unreachable!(),
            },
        )
    }

    /// Registers (or retrieves) a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        self.register(
            name,
            labels,
            help,
            || Metric::Gauge(Arc::new(AtomicU64::new(0))),
            |m| match m {
                Metric::Gauge(a) => Some(Gauge(Arc::clone(a))),
                _ => None,
            },
            |m| match m {
                Metric::Gauge(a) => Gauge(Arc::clone(a)),
                _ => unreachable!(),
            },
        )
    }

    /// Registers (or retrieves) a histogram series.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        self.register(
            name,
            labels,
            help,
            || {
                Metric::Histogram(Arc::new(HistCore {
                    hist: LatencyHistogram::new(),
                    sum: AtomicU64::new(0),
                }))
            },
            |m| match m {
                Metric::Histogram(h) => Some(Histogram(Arc::clone(h))),
                _ => None,
            },
            |m| match m {
                Metric::Histogram(h) => Histogram(Arc::clone(h)),
                _ => unreachable!(),
            },
        )
    }

    /// Renders every registered series in Prometheus text exposition
    /// format, in registration order, appending to `out`.
    pub fn render_into(&self, out: &mut String) {
        let entries = lock(&self.entries);
        let mut seen: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if !seen.contains(&e.name.as_str()) {
                seen.push(&e.name);
                out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
                out.push_str(&format!("# TYPE {} {}\n", e.name, e.metric.type_name()));
            }
            match &e.metric {
                Metric::Counter(a) | Metric::Gauge(a) => {
                    out.push_str(&sample(&e.name, &e.labels, a.load(Ordering::Relaxed)));
                }
                Metric::Histogram(h) => render_histogram(out, &e.name, &e.labels, h),
            }
        }
    }

    /// Renders the whole registry to a fresh string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders several registries as **one** exposition, appending to
    /// `out`: `# HELP`/`# TYPE` are emitted once per metric family
    /// across *all* parts, so per-core registries whose series differ
    /// only by a `core="N"` label merge into a single well-formed
    /// scrape (duplicate family headers are invalid exposition).
    /// Series order is parts-major, registration order within a part.
    pub fn render_merged(parts: &[&Registry], out: &mut String) {
        let mut seen: Vec<String> = Vec::new();
        for part in parts {
            let entries = lock(&part.entries);
            for e in entries.iter() {
                if !seen.iter().any(|s| s == &e.name) {
                    seen.push(e.name.clone());
                    out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
                    out.push_str(&format!("# TYPE {} {}\n", e.name, e.metric.type_name()));
                }
                match &e.metric {
                    Metric::Counter(a) | Metric::Gauge(a) => {
                        out.push_str(&sample(&e.name, &e.labels, a.load(Ordering::Relaxed)));
                    }
                    Metric::Histogram(h) => render_histogram(out, &e.name, &e.labels, h),
                }
            }
        }
    }
}

/// Poison-tolerant lock (a panicked scraper must not wedge metrics).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn sample(name: &str, labels: &str, value: u64) -> String {
    if labels.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{labels}}} {value}\n")
    }
}

/// The exposition `le` bound for a fine bucket's upper bound: fine
/// buckets merge into their power-of-two octave (direct buckets below
/// 16 merge into `le="15"`).
fn octave_le(upper_bound: u64) -> u64 {
    if upper_bound < 16 {
        return 15;
    }
    match upper_bound.leading_zeros() {
        0 => u64::MAX,
        lz => (1u64 << (64 - lz)) - 1,
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Arc<HistCore>) {
    // Merge the fine (sub-octave) buckets into octave `le` bounds so
    // the exposition stays bounded; counts are cumulative per the text
    // format.
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for (ub, c) in h.hist.nonzero_buckets() {
        let le = octave_le(ub);
        match merged.last_mut() {
            Some((last, n)) if *last == le => *n += c,
            _ => merged.push((le, c)),
        }
    }
    let with_le = |le: &str| {
        if labels.is_empty() {
            format!("le=\"{le}\"")
        } else {
            format!("{labels},le=\"{le}\"")
        }
    };
    let mut cumulative = 0u64;
    for (le, c) in merged {
        cumulative += c;
        out.push_str(&format!(
            "{name}_bucket{{{}}} {cumulative}\n",
            with_le(&le.to_string())
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{{}}} {cumulative}\n",
        with_le("+Inf")
    ));
    out.push_str(&sample(
        &format!("{name}_sum"),
        labels,
        h.sum.load(Ordering::Relaxed),
    ));
    out.push_str(&sample(&format!("{name}_count"), labels, cumulative));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let r = Registry::new();
        let c = r.counter("test_total", &[], "A test counter.");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("test_depth", &[("model", "gates")], "A test gauge.");
        g.set(7);
        assert_eq!(g.get(), 7);
        let text = r.render();
        assert!(text.contains("# HELP test_total A test counter.\n"));
        assert!(text.contains("# TYPE test_total counter\n"));
        assert!(text.contains("test_total 5\n"));
        assert!(text.contains("# TYPE test_depth gauge\n"));
        assert!(text.contains("test_depth{model=\"gates\"} 7\n"));
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("shared_total", &[("shard", "0")], "Shared.");
        let b = r.counter("shared_total", &[("shard", "0")], "Shared.");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "both handles hit the same atomic");
        // A different label set is a different series.
        let other = r.counter("shared_total", &[("shard", "1")], "Shared.");
        assert_eq!(other.get(), 0);
        // HELP/TYPE appear once per family even with two series.
        let text = r.render();
        assert_eq!(text.matches("# TYPE shared_total counter").count(), 1);
        assert!(text.contains("shared_total{shard=\"0\"} 2\n"));
        assert!(text.contains("shared_total{shard=\"1\"} 0\n"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("dual", &[], "first");
        let _ = r.gauge("dual", &[], "second");
    }

    #[test]
    fn histogram_renders_cumulative_octave_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat_us", &[("stage", "replay")], "Latency.");
        for v in [1u64, 2, 3, 20, 25, 100, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1 + 2 + 3 + 20 + 25 + 100 + 5000);
        let text = r.render();
        assert!(text.contains("# TYPE lat_us histogram\n"));
        // 1,2,3 → le=15 (3 cum); 20,25 → le=31 (5); 100 → le=127 (6);
        // 5000 → le=8191 (7).
        assert!(
            text.contains("lat_us_bucket{stage=\"replay\",le=\"15\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_bucket{stage=\"replay\",le=\"31\"} 5\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_bucket{stage=\"replay\",le=\"127\"} 6\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_bucket{stage=\"replay\",le=\"8191\"} 7\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_bucket{stage=\"replay\",le=\"+Inf\"} 7\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_sum{stage=\"replay\"} 5151\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_count{stage=\"replay\"} 7\n"),
            "{text}"
        );
    }

    #[test]
    fn octave_le_merges_correctly() {
        assert_eq!(octave_le(0), 15);
        assert_eq!(octave_le(15), 15);
        assert_eq!(octave_le(17), 31);
        assert_eq!(octave_le(31), 31);
        assert_eq!(octave_le(1535), 2047);
        assert_eq!(octave_le(2047), 2047);
        assert_eq!(octave_le(u64::MAX), u64::MAX);
    }

    #[test]
    fn merged_render_dedups_family_headers_across_registries() {
        let cores: Vec<Registry> = (0..3).map(|_| Registry::new()).collect();
        for (i, r) in cores.iter().enumerate() {
            let idx = i.to_string();
            r.counter(
                "core_requests_total",
                &[("core", &idx)],
                "Per-core requests.",
            )
            .add(10 + i as u64);
            r.histogram("core_lat_us", &[("core", &idx)], "Per-core latency.")
                .record(100);
        }
        // Core 2 also has a family the others lack.
        let only = cores[2].gauge("core_backlog", &[("core", "2")], "Backlog.");
        only.set(9);
        let mut text = String::new();
        Registry::render_merged(&cores.iter().collect::<Vec<_>>(), &mut text);
        // One HELP/TYPE per family across all three parts.
        assert_eq!(
            text.matches("# TYPE core_requests_total counter").count(),
            1,
            "{text}"
        );
        assert_eq!(text.matches("# TYPE core_lat_us histogram").count(), 1);
        assert_eq!(text.matches("# TYPE core_backlog gauge").count(), 1);
        // Every per-core series survives with its own label.
        for i in 0..3u64 {
            assert!(
                text.contains(&format!("core_requests_total{{core=\"{i}\"}} {}", 10 + i)),
                "{text}"
            );
            assert!(text.contains(&format!("core_lat_us_count{{core=\"{i}\"}} 1")));
        }
        assert!(text.contains("core_backlog{core=\"2\"} 9\n"));
        // Merging one part degenerates to render_into.
        let mut alone = String::new();
        Registry::render_merged(&[&cores[0]], &mut alone);
        assert_eq!(alone, cores[0].render());
    }

    #[test]
    fn empty_histogram_renders_inf_only() {
        let r = Registry::new();
        let _ = r.histogram("empty_us", &[], "Empty.");
        let text = r.render();
        assert!(text.contains("empty_us_bucket{le=\"+Inf\"} 0\n"), "{text}");
        assert!(text.contains("empty_us_sum 0\n"));
        assert!(text.contains("empty_us_count 0\n"));
    }
}
