//! A fixed-capacity lock-free ring of completed [`Trace`]s.
//!
//! Writers claim a slot with one atomic fetch-add on the cursor and
//! publish through a per-slot seqlock (version odd = write in
//! progress, even = stable); readers retry a slot whose version moved
//! under them. Everything is plain atomics — no `unsafe`, no locks —
//! so pushing a trace on the request path costs a handful of relaxed
//! stores, and a torn read can only ever be *dropped*, never observed.
//!
//! The relaxed word accesses are ordered by the standard
//! seqlock-with-fences pattern: a writer issues a `Release` fence
//! between the version→odd transition and its word stores, and a
//! reader issues an `Acquire` fence between its word loads and the
//! validating version re-read. The fences pair (fence-fence
//! synchronization through the word cells), so if a reader's word load
//! observed any store of a later write, the validation load is
//! guaranteed to see that writer's odd version and discard the
//! snapshot — without the fences the relaxed loads could be reordered
//! past the validation on weakly-ordered hardware and a mixed-writer
//! record could survive both version checks.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::trace::Trace;

struct Slot {
    /// Seqlock version: 0 = never written, odd = writer in the slot,
    /// even ≥ 2 = stable contents.
    version: AtomicU64,
    words: [AtomicU64; Trace::WORDS],
}

/// A bounded multi-producer ring buffer of traces. Capacity is fixed at
/// construction; the newest `capacity` completed traces survive.
pub struct TraceRing {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
}

impl TraceRing {
    /// A ring holding the most recent `capacity` traces (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity)
                .map(|_| Slot {
                    version: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// The ring's fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever pushed (including ones already overwritten and
    /// the rare contended pushes that were dropped).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records a completed trace. If another writer is mid-publish in
    /// the claimed slot (possible only when writers lap the ring), the
    /// trace is dropped rather than torn.
    pub fn push(&self, trace: &Trace) {
        let idx = (self.cursor.fetch_add(1, Ordering::Relaxed) as usize) % self.slots.len();
        let slot = &self.slots[idx];
        let v = slot.version.load(Ordering::Acquire);
        if v % 2 == 1 {
            return; // another writer owns the slot; drop
        }
        if slot
            .version
            .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        // Pairs with the reader's Acquire fence: any reader that sees
        // one of the word stores below must also see version = v + 1.
        fence(Ordering::Release);
        for (cell, word) in slot.words.iter().zip(trace.to_words()) {
            cell.store(word, Ordering::Relaxed);
        }
        slot.version.store(v + 2, Ordering::Release);
    }

    /// Snapshot of the ring's stable contents, oldest first. Slots a
    /// writer is currently publishing are skipped.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Trace> {
        let cap = self.slots.len();
        let cur = self.cursor.load(Ordering::Relaxed) as usize;
        let mut out = Vec::new();
        for i in 0..cap {
            let slot = &self.slots[(cur + i) % cap];
            // Bounded retry: a slot being rewritten twice in a row is
            // contended enough that skipping it is the right answer.
            for _ in 0..3 {
                let v1 = slot.version.load(Ordering::Acquire);
                if v1 == 0 || v1 % 2 == 1 {
                    break;
                }
                let mut words = [0u64; Trace::WORDS];
                for (w, cell) in words.iter_mut().zip(slot.words.iter()) {
                    *w = cell.load(Ordering::Relaxed);
                }
                // Keeps the word loads above from being reordered past
                // the validation re-read (pairs with the writer's
                // Release fence); the re-read itself then needs no
                // ordering of its own.
                fence(Ordering::Acquire);
                if slot.version.load(Ordering::Relaxed) == v1 {
                    out.push(Trace::from_words(&words));
                    break;
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TraceRing(capacity {}, {} pushed)",
            self.capacity(),
            self.pushed()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(span: u64) -> Trace {
        let mut t = Trace::new(span);
        t.total_us = span * 10;
        t
    }

    #[test]
    fn keeps_the_newest_capacity_traces() {
        let ring = TraceRing::new(4);
        assert!(ring.snapshot().is_empty());
        for span in 1..=10u64 {
            ring.push(&trace(span));
        }
        assert_eq!(ring.pushed(), 10);
        let spans: Vec<u64> = ring.snapshot().iter().map(|t| t.span_id).collect();
        assert_eq!(spans, vec![7, 8, 9, 10], "oldest first, newest kept");
    }

    #[test]
    fn partially_filled_ring_skips_unwritten_slots() {
        let ring = TraceRing::new(8);
        ring.push(&trace(1));
        ring.push(&trace(2));
        let spans: Vec<u64> = ring.snapshot().iter().map(|t| t.span_id).collect();
        assert_eq!(spans, vec![1, 2]);
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 5_000;
        let ring = std::sync::Arc::new(TraceRing::new(16));
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for _ in 0..PER_WRITER {
                        // Every field of writer w's traces carries w, so
                        // a torn (mixed-writer) record is detectable.
                        let mut t = Trace::new(w);
                        t.rep = w;
                        t.total_us = w;
                        t.model = w as u8;
                        for s in crate::Stage::ALL {
                            t.record(s, w);
                        }
                        ring.push(&t);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().expect("writer thread");
        }
        for t in ring.snapshot() {
            let w = t.span_id;
            assert!(w < WRITERS);
            assert_eq!(t.rep, w);
            assert_eq!(t.total_us, w);
            assert_eq!(u64::from(t.model), w);
            for s in crate::Stage::ALL {
                assert_eq!(t.stage_us(s), w, "stage {} torn", s.name());
            }
        }
    }
}
