//! The log-linear latency histogram shared by every latency metric.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of sub-buckets per power-of-two octave: values within an
/// octave are resolved to 1/8 of the octave, bounding the quantile
/// error at ~12.5%.
const SUBS: u64 = 8;

/// Values below this are direct-indexed (exact, one bucket per value).
const DIRECT: u64 = 16;

/// First octave handled log-linearly (`2^FIRST_OCTAVE == DIRECT`).
const FIRST_OCTAVE: u64 = 4;

/// Bucket count: 16 direct + 60 octaves × 8 sub-buckets covers u64.
const BUCKETS: usize = (DIRECT + (64 - FIRST_OCTAVE) * SUBS) as usize;

/// A lock-free log-linear histogram of microsecond latencies
/// (HDR-histogram-shaped: power-of-two octaves split into `SUBS`
/// linear sub-buckets).
///
/// Recording is one atomic increment; quantiles scan the 496 buckets.
/// Quantile values are bucket **upper bounds**, so reported p50/p99
/// never understate the true quantile by more than one sub-bucket.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }

    fn bucket_of(value_us: u64) -> usize {
        if value_us < DIRECT {
            return value_us as usize;
        }
        let octave = 63 - u64::from(value_us.leading_zeros());
        let sub = (value_us >> (octave - 3)) & (SUBS - 1);
        (DIRECT + (octave - FIRST_OCTAVE) * SUBS + sub) as usize
    }

    /// The largest value mapping to `bucket` (what quantiles report).
    fn bucket_upper_bound(bucket: usize) -> u64 {
        let bucket = bucket as u64;
        if bucket < DIRECT {
            return bucket;
        }
        let rel = bucket - DIRECT;
        let octave = rel / SUBS + FIRST_OCTAVE;
        let sub = rel % SUBS;
        // Sub-bucket `sub` of octave `o` covers
        // [(8+sub)·2^(o−3), (9+sub)·2^(o−3)); widen to u128 because the
        // top octave's bound brushes against 2^64.
        let bound = (u128::from(SUBS + sub + 1) << (octave - 3)) - 1;
        u64::try_from(bound).unwrap_or(u64::MAX)
    }

    /// Records one latency observation.
    pub fn record(&self, value_us: u64) {
        self.buckets[Self::bucket_of(value_us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The value at quantile `q` (0.0..=1.0), or 0 when empty. Reported
    /// as the containing bucket's upper bound.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, clamped into range.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(BUCKETS - 1)
    }

    /// The 99.9th-percentile observation, or 0 when empty.
    ///
    /// Like every quantile here, the value reported is the containing
    /// bucket's **upper bound**: below 16 µs buckets are exact (one per
    /// microsecond); from 16 µs up, each power-of-two octave is split
    /// into 8 linear sub-buckets, so the bound overstates the true
    /// rank-⌈0.999·n⌉ observation by at most one eighth of its octave
    /// (~12.5%) and never understates it.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Snapshot of the non-empty buckets as ascending
    /// `(upper_bound, count)` pairs — the raw material for a text
    /// exposition (cumulative `le` buckets) without exporting the
    /// bucket scheme itself.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (Self::bucket_upper_bound(i), c))
            })
            .collect()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LatencyHistogram({} observations, p50 {} µs, p99 {} µs)",
            self.count(),
            self.quantile(0.5),
            self.quantile(0.99)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitmix64;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev_bound = 0;
        for b in 1..BUCKETS {
            let bound = LatencyHistogram::bucket_upper_bound(b);
            assert!(bound > prev_bound, "bucket {b}");
            prev_bound = bound;
        }
        for v in [0u64, 1, 7, 8, 9, 100, 1_000, 1_000_000, u64::MAX] {
            let b = LatencyHistogram::bucket_of(v);
            assert!(b < BUCKETS, "value {v}");
            assert!(LatencyHistogram::bucket_upper_bound(b) >= v, "value {v}");
        }
    }

    #[test]
    fn quantiles_bracket_the_true_value() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        // True p50 is 500; log-linear resolution is 1/8 of the octave.
        assert!((500..=575).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1151).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(0.0) >= 1);
        assert!(h.quantile(1.0) >= 1000);
        // p999 of 1..=1000 is 999; its bucket's upper bound may round up
        // by at most one sub-bucket (1/8 of the 512..1023 octave = 64).
        let p999 = h.p999();
        assert!((999..=1151).contains(&p999), "p999 = {p999}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.p999(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    /// Seeded property test: for any recorded multiset, the quantile
    /// function is monotone in `q` and every reported value is an upper
    /// bound on the true rank statistic.
    #[test]
    fn quantiles_are_monotone_and_upper_bound_seeded() {
        for seed in [1u64, 0x5EED, 0xDEAD_BEEF] {
            let h = LatencyHistogram::new();
            let mut state = seed;
            let mut values = Vec::with_capacity(4096);
            for _ in 0..4096 {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                // Mix, then skew toward small values (latencies are
                // log-distributed): shift by a mixed-in octave choice.
                let r = splitmix64(state);
                let v = r >> (r % 48);
                h.record(v);
                values.push(v);
            }
            values.sort_unstable();
            let mut prev = 0u64;
            for step in 0..=100u32 {
                let q = f64::from(step) / 100.0;
                let reported = h.quantile(q);
                assert!(
                    reported >= prev,
                    "seed {seed:#x}: quantile({q}) = {reported} < quantile(prev) = {prev}"
                );
                prev = reported;
                // True rank statistic (same rank rule as `quantile`).
                let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
                let truth = values[rank - 1];
                assert!(
                    reported >= truth,
                    "seed {seed:#x}: quantile({q}) = {reported} understates true {truth}"
                );
            }
        }
    }

    /// Concurrent recording loses nothing: N threads × M records each
    /// must produce exactly N·M observations with every per-value count
    /// intact (each thread records a disjoint, recognizable value).
    #[test]
    fn concurrent_records_are_all_counted() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 10_000;
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    // Thread t hammers one exact (direct-indexed) bucket
                    // value plus a shared high bucket, interleaved.
                    for i in 0..PER_THREAD {
                        h.record(t); // direct bucket t
                        if i % 2 == 0 {
                            h.record(1 << 20);
                        }
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().expect("recorder thread");
        }
        let expected = THREADS * PER_THREAD + THREADS * PER_THREAD / 2;
        assert_eq!(h.count(), expected);
        let buckets = h.nonzero_buckets();
        // Direct buckets 0..THREADS hold exactly PER_THREAD each.
        for t in 0..THREADS {
            let (_, c) = buckets[t as usize];
            assert_eq!(c, PER_THREAD, "direct bucket {t}");
        }
        // The shared 2^20 bucket holds the other half.
        let high: u64 = buckets
            .iter()
            .filter(|(ub, _)| *ub >= 1 << 20)
            .map(|(_, c)| c)
            .sum();
        assert_eq!(high, THREADS * PER_THREAD / 2);
    }
}
